"""Command-line interface: ``python -m repro`` / ``repro-pow``.

Subcommands map one-to-one onto the experiment harness plus two
interactive modes:

* ``figure2``   — regenerate the paper's Figure 2 (table + ASCII chart);
* ``calibrate`` — the 31 ms calibration table and this machine's hash rate;
* ``accuracy``  — the DAbR 80 % accuracy experiment;
* ``throttle``  — the three-setup throttling comparison;
* ``ablations`` — the policy/epsilon/economics ablation tables;
* ``demo``      — one full challenge/solve/verify exchange, verbosely;
* ``serve``     — run the live TCP server in the foreground (one
  process, or ``--workers N`` gateway worker processes sharded by
  client-IP hash; SIGTERM drains gracefully either way);
* ``state``     — admission-state tooling: merge a serve
  ``--state-dir`` into one snapshot file, re-split a snapshot for a
  different worker count, inspect either, host a store over the
  network (``state serve``) or reshape a multi-node store live
  (``state topology``);
* ``record``    — capture a campaign workload's admission decisions as
  a replayable v2 trace (simulator, live gateway, or live cluster);
* ``replay``    — feed a recorded trace back through any serving
  configuration and diff the decision streams;
* ``campaign``  — run a named adversarial scenario spec (optionally
  recording its golden trace; large-scale scenarios run on the
  vectorized engine — or, with ``--procs N``, hash-sharded across N
  worker processes — and record no trace);
* ``trace``     — render a sampled-span dump (from ``serve --trace-out``
  or ``campaign --trace-out``) as a per-stage waterfall;
* ``kernels``   — microbench the residual per-cohort array kernels on
  every available backend (numpy always; numba when importable);
* ``profile``   — run any registered experiment under cProfile and
  print the top cumulative hotspots (multi-process experiments fold
  their workers' profiles in);
* ``all``       — every experiment, in DESIGN.md order.
"""

from __future__ import annotations

import argparse
import os
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-pow",
        description=(
            "Reproduction of 'A Policy Driven AI-Assisted PoW Framework' "
            "(DSN 2022)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig2 = sub.add_parser("figure2", help="regenerate Figure 2")
    fig2.add_argument("--trials", type=int, default=30)
    fig2.add_argument("--epsilon", type=float, default=2.5)
    fig2.add_argument("--seed", type=int, default=0xF162)
    fig2.add_argument(
        "--mode", choices=("modeled", "grind"), default="modeled",
        help="modeled: calibrated sampling; grind: real hashing",
    )
    fig2.add_argument("--chart", action="store_true", help="ASCII chart too")

    cal = sub.add_parser("calibrate", help="31 ms calibration experiment")
    cal.add_argument("--trials", type=int, default=200)
    cal.add_argument(
        "--measure-hash-rate", action="store_true",
        help="also grind real puzzles to measure this machine's hash rate",
    )

    acc = sub.add_parser("accuracy", help="DAbR 80%% accuracy experiment")
    acc.add_argument("--corpus-size", type=int, default=6000)
    acc.add_argument("--seed", type=int, default=7)

    thr = sub.add_parser("throttle", help="throttling comparison")
    thr.add_argument("--duration", type=float, default=30.0)
    thr.add_argument("--benign", type=int, default=25)
    thr.add_argument("--bots", type=int, default=15)

    sub.add_parser("ablations", help="policy/epsilon/economics ablations")

    demo = sub.add_parser("demo", help="one verbose end-to-end exchange")
    demo.add_argument("--score", type=float, default=None,
                      help="force this reputation score instead of DAbR")
    demo.add_argument("--policy", default="policy-2",
                      help="policy registry name (policy-1/2/3, ...)")

    serve = sub.add_parser("serve", help="run the live TCP server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8377)
    serve.add_argument("--policy", default="policy-2")
    serve.add_argument(
        "--gateway", action="store_true",
        help="serve through the async micro-batching admission gateway "
             "instead of one thread per connection",
    )
    serve.add_argument(
        "--batch-window", type=float, default=0.002, metavar="SECONDS",
        help="gateway: max time a batch waits for company (default 2 ms)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=64,
        help="gateway: flush as soon as this many requests queue",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=256,
        help="gateway: bound on queued admissions before shedding",
    )
    serve.add_argument(
        "--shed-policy",
        choices=(
            "drop-newest", "drop-reputation", "drop-global-reputation"
        ),
        default="drop-newest",
        help="gateway: victim selection when the queue is full "
             "(drop-global-reputation needs --state-server)",
    )
    serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="gateway worker processes, each owning one admission-state "
             "shard routed by client-IP hash (N > 1 implies --gateway)",
    )
    serve.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="restore admission state from DIR's shard snapshots at boot "
             "and rewrite them at graceful shutdown (gateway modes only)",
    )
    serve.add_argument(
        "--state-server", default=None, metavar="ADDR[,ADDR...]",
        help="keep admission state on running `repro state serve` "
             "node(s) (host:port or unix:/path; several addresses form "
             "a consistent-hash multi-node store) instead of in-process "
             "dicts; workers survive restarts statefully and may share "
             "reputation (cluster mode only, excludes --state-dir)",
    )
    serve.add_argument(
        "--replicas", type=int, default=64, metavar="N",
        help="virtual nodes per shard on the consistent-hash ring "
             "(must match the ring the state was written under)",
    )
    serve.add_argument(
        "--record", default=None, metavar="FILE",
        help="capture every admission decision into a replayable v2 "
             "trace, written to FILE at graceful shutdown",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve /metrics (Prometheus text), /healthz and /summary "
             "on this port (0 picks a free port; any serve mode)",
    )
    serve.add_argument(
        "--metrics-snapshots", default=None, metavar="FILE",
        help="append a timestamped registry snapshot to FILE (JSONL) "
             "every second while serving",
    )
    serve.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="sample request spans and dump them to FILE (JSONL) at "
             "graceful shutdown; render with `repro trace FILE`",
    )
    serve.add_argument(
        "--trace-every", type=int, default=100, metavar="N",
        help="with --trace-out: sample every Nth request (default 100)",
    )

    state = sub.add_parser(
        "state", help="admission-state snapshot and network tooling"
    )
    state_sub = state.add_subparsers(dest="state_command", required=True)
    snap = state_sub.add_parser(
        "snapshot",
        help="merge a serve --state-dir into one snapshot file",
    )
    snap.add_argument("--state-dir", required=True, metavar="DIR")
    snap.add_argument("--out", required=True, metavar="FILE")
    restore = state_sub.add_parser(
        "restore",
        help="split a snapshot file into per-shard state for --workers N",
    )
    restore.add_argument("--snapshot", required=True, metavar="FILE",
                         help="merged snapshot produced by `state snapshot`")
    restore.add_argument("--state-dir", required=True, metavar="DIR")
    restore.add_argument("--workers", type=int, default=1, metavar="N")
    restore.add_argument(
        "--replicas", type=int, default=64, metavar="N",
        help="virtual nodes per shard on the split ring (recorded in "
             "the shard files; must match at `serve --state-dir` time)",
    )
    show = state_sub.add_parser(
        "show", help="summarise a snapshot file or a state directory"
    )
    show.add_argument("path", help="snapshot file or state directory")
    state_serve = state_sub.add_parser(
        "serve",
        help="host an admission state store over TCP/AF_UNIX for "
             "`serve --state-server` workers",
    )
    state_serve.add_argument(
        "--bind", default="127.0.0.1:0", metavar="ADDR",
        help="listen address: host:port (port 0 picks a free port) or "
             "unix:/path (default 127.0.0.1:0)",
    )
    state_serve.add_argument(
        "--snapshot", default=None, metavar="FILE",
        help="restore the store from FILE at boot (if it exists) and "
             "rewrite it at graceful shutdown",
    )
    state_serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve /metrics, /healthz and /summary on this port "
             "(0 picks a free port)",
    )
    topo = state_sub.add_parser(
        "topology",
        help="inspect or reshape a multi-node state cluster live "
             "(hands off only the moved keyspace slice)",
    )
    topo.add_argument(
        "--nodes", required=True, metavar="ADDR[,ADDR...]",
        help="current cluster membership, in ring order",
    )
    topo.add_argument(
        "--add", default=None, metavar="ADDR",
        help="grow: reshard onto the cluster plus this node",
    )
    topo.add_argument(
        "--remove", default=None, metavar="ADDR",
        help="shrink: drain this node's keyspace onto the rest",
    )
    topo.add_argument(
        "--replicas", type=int, default=64, metavar="N",
        help="virtual nodes per shard on the consistent-hash ring",
    )

    analyze = sub.add_parser(
        "analyze", help="closed-form policy comparison and synthesis"
    )
    analyze.add_argument(
        "--targets", type=float, nargs="*", default=None,
        help="per-score latency budgets (seconds) to synthesize a policy for",
    )

    scenario = sub.add_parser(
        "scenario", help="run a JSON scenario document through the simulator"
    )
    scenario.add_argument("file", help="path to the scenario JSON")

    record = sub.add_parser(
        "record",
        help="capture a campaign workload's admission decisions as a "
             "replayable trace",
    )
    record.add_argument("--out", required=True, metavar="FILE",
                        help="trace file to write (v2 JSONL)")
    record.add_argument(
        "--scenario", default="benign-baseline", metavar="NAME",
        help="campaign spec to drive (see `repro campaign --list`)",
    )
    record.add_argument(
        "--target", default="sim",
        help="serving path to record: sim (simulator, default), "
             "gateway (live TCP), or cluster:N (live multi-worker)",
    )

    replay = sub.add_parser(
        "replay",
        help="feed a recorded trace through a serving configuration "
             "and compare decision streams",
    )
    replay.add_argument("--trace", required=True, metavar="FILE",
                        help="v2 trace produced by record/campaign/serve")
    replay.add_argument(
        "--target", default="inproc",
        help="replay path: inproc (default), gateway, or cluster:N",
    )
    replay.add_argument(
        "--live", action="store_true",
        help="replay over real TCP through a gateway instead of "
             "in-process (decisions then diff by position)",
    )
    replay.add_argument(
        "--speed", type=float, default=0.0, metavar="X",
        help="pace requests at recorded gaps / X; 0 (default) replays "
             "as fast as the pipeline admits",
    )
    replay.add_argument("--out", default=None, metavar="FILE",
                        help="write the replayed decision trace here")
    replay.add_argument(
        "--diff", action="store_true",
        help="diff replayed decisions against the trace's recorded ones "
             "(exit 1 on divergence)",
    )
    replay.add_argument(
        "--diff-report", default=None, metavar="FILE",
        help="with --diff: also write the structured diff report (JSON)",
    )

    campaign = sub.add_parser(
        "campaign", help="run a named adversarial scenario spec"
    )
    campaign.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="campaign name (omit with --list to enumerate)",
    )
    campaign.add_argument(
        "--record", default=None, metavar="FILE",
        help="also write the recorded golden trace here",
    )
    campaign.add_argument(
        "--list", action="store_true", help="list available campaigns"
    )
    campaign.add_argument(
        "--link", action="append", default=None, metavar="POP=PROFILE",
        help="override a scale campaign's link assignment (repeatable), "
        "e.g. --link benign=lossy-mobile; POP=none removes a link",
    )
    campaign.add_argument(
        "--list-links", action="store_true",
        help="list available link profiles and exit",
    )
    campaign.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="sample request spans during the run and dump them to "
             "FILE (callback campaigns only; render with `repro trace`)",
    )
    campaign.add_argument(
        "--trace-every", type=int, default=1, metavar="N",
        help="with --trace-out: sample every Nth request (default 1)",
    )
    campaign.add_argument(
        "--metrics-snapshots", default=None, metavar="FILE",
        help="write periodic registry snapshots (phase timings, link "
             "counters) to FILE during a large-scale campaign",
    )
    campaign.add_argument(
        "--procs", type=int, default=None, metavar="N",
        help="override a scale campaign's worker-process count: 1 runs "
             "the in-process engine, N>1 hash-shards agents across N "
             "processes (see DESIGN.md §1.8)",
    )

    trace = sub.add_parser(
        "trace",
        help="render a sampled-span dump as a per-stage waterfall",
    )
    trace.add_argument(
        "file", help="spans JSONL written by --trace-out"
    )
    trace.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="spans to render before summarising the rest (default 20)",
    )

    kernels = sub.add_parser(
        "kernels",
        help="microbench the per-cohort array kernels on every "
             "available backend",
    )
    kernels.add_argument(
        "--size", type=int, default=100_000, metavar="N",
        help="elements per kernel invocation (default 100000)",
    )
    kernels.add_argument(
        "--repeats", type=int, default=30, metavar="N",
        help="timed repeats per kernel/backend; the minimum is "
             "reported (default 30)",
    )

    profile = sub.add_parser(
        "profile",
        help="run an experiment under cProfile and print hotspots",
    )
    profile.add_argument(
        "experiment", metavar="EXPERIMENT-ID",
        help="registered experiment id (fig2, thr-batch, megasim, ...)",
    )
    profile.add_argument(
        "--top", type=int, default=20,
        help="number of cumulative-time rows to print (default 20)",
    )
    profile.add_argument(
        "--out", default=None, metavar="FILE",
        help="also dump raw pstats data here (snakeviz/pstats readable)",
    )

    export = sub.add_parser(
        "export", help="run every experiment and write JSON results"
    )
    export.add_argument("--out", default="results", help="output directory")

    sub.add_parser("all", help="run every experiment")
    return parser


def _cmd_figure2(args: argparse.Namespace) -> int:
    from repro.bench.figure2 import Figure2Config, check_shape, run_figure2

    config = Figure2Config(
        trials=args.trials, epsilon=args.epsilon,
        seed=args.seed, mode=args.mode,
    )
    result = run_figure2(config)
    print(result.to_experiment_result().render())
    if args.chart:
        print()
        print(result.render_chart())
    problems = check_shape(result)
    if problems:
        print("\nSHAPE CHECK FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("\nshape check: OK (P1 slow, P2 steep, P3 in between)")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.bench.calibration import (
        CalibrationConfig,
        measure_hash_rate,
        run_calibration,
    )

    print(run_calibration(CalibrationConfig(trials=args.trials)).render())
    if args.measure_hash_rate:
        rate = measure_hash_rate()
        print(f"\nmeasured hash rate: {rate:,.0f} evaluations/s "
              f"({1e6 / rate:.2f} us/attempt)")
    return 0


def _cmd_accuracy(args: argparse.Namespace) -> int:
    from repro.bench.accuracy import AccuracyConfig, run_accuracy

    config = AccuracyConfig(corpus_size=args.corpus_size, seed=args.seed)
    print(run_accuracy(config).render())
    return 0


def _cmd_throttle(args: argparse.Namespace) -> int:
    from repro.bench.throttling import ThrottlingConfig, run_throttling

    config = ThrottlingConfig(
        benign_clients=args.benign,
        attacker_bots=args.bots,
        duration=args.duration,
    )
    print(run_throttling(config).render())
    return 0


def _cmd_ablations(_args: argparse.Namespace) -> int:
    from repro.bench.ablations import (
        run_attacker_economics,
        run_base_offset_ablation,
        run_epsilon_ablation,
    )

    for result in (
        run_base_offset_ablation(),
        run_epsilon_ablation(),
        run_attacker_economics(),
    ):
        print(result.render())
        print()
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    import time

    from repro.core.framework import AIPoWFramework
    from repro.core.records import ClientRequest
    from repro.policies import POLICY_REGISTRY
    from repro.pow.solver import HashSolver
    from repro.reputation.dabr import DAbRModel
    from repro.reputation.dataset import generate_corpus
    from repro.reputation.ensemble import ConstantModel

    policy = POLICY_REGISTRY.create(args.policy)
    corpus = generate_corpus(size=2000, seed=7)
    train, test = corpus.split()
    if args.score is not None:
        model = ConstantModel(args.score)
        example = test[0]
        print(f"model: constant score {args.score:g}")
    else:
        model = DAbRModel().fit(train)
        example = max(test, key=lambda e: e.true_score)
        print("model: DAbR fitted on the synthetic corpus")

    framework = AIPoWFramework(model, policy)
    request = ClientRequest(
        client_ip=example.ip,
        resource="/index.html",
        timestamp=time.time(),
        features=example.features,
    )
    print(f"client {example.ip}: true score {example.true_score:.2f}")

    challenge = framework.challenge(request)
    decision = challenge.decision
    print(f"scored {decision.reputation_score:.2f} -> "
          f"{decision.policy_name} -> difficulty {decision.difficulty}")
    print(f"puzzle: {challenge.puzzle.to_wire()}")

    solution = HashSolver().solve(challenge.puzzle, example.ip)
    print(f"solved in {solution.attempts} attempts "
          f"({solution.elapsed * 1000:.1f} ms)")

    response = framework.redeem(challenge, solution)
    print(f"verdict: {response.status.value}, "
          f"latency {response.latency_ms:.1f} ms, body {response.body!r}")
    return 0 if response.served else 1


def _install_shutdown_signals() -> "threading.Event":
    """SIGTERM/SIGINT → one shutdown event, for graceful drains."""
    import signal
    import threading

    shutdown = threading.Event()

    def _handler(_signum, _frame):
        shutdown.set()

    signal.signal(signal.SIGINT, _handler)
    signal.signal(signal.SIGTERM, _handler)
    return shutdown


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.core.spec import FrameworkSpec

    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}")
        return 2
    if args.state_dir and args.workers == 1 and not args.gateway:
        print("--state-dir requires --gateway or --workers > 1")
        return 2
    if args.state_server and args.workers == 1:
        print("--state-server requires --workers > 1 (cluster mode)")
        return 2
    if args.state_server and args.state_dir:
        print("--state-server and --state-dir are exclusive: state "
              "lives on the server(s), not in local shard files")
        return 2
    if (
        args.shed_policy == "drop-global-reputation"
        and not args.state_server
    ):
        print("--shed-policy drop-global-reputation needs "
              "--state-server (the global view lives there)")
        return 2
    if args.replicas < 1:
        print(f"--replicas must be >= 1, got {args.replicas}")
        return 2
    if args.trace_every < 1:
        print(f"--trace-every must be >= 1, got {args.trace_every}")
        return 2
    if (
        args.metrics_snapshots
        and args.workers > 1
        and args.metrics_port is None
    ):
        # Workers only publish registry snapshots to the parent when an
        # endpoint consumes them; the writer rides the same stream.
        print("--metrics-snapshots with --workers > 1 requires "
              "--metrics-port")
        return 2
    spec = FrameworkSpec(policy=args.policy)
    recorder = None
    if args.record:
        if spec.feedback:
            # Feedback reacts to solve *outcomes*; a challenge-only
            # replay cannot reproduce those, so scores will drift.
            # Recording stays useful (the diff harness will show the
            # drift), but bit-identical replay needs a feedback-free
            # recipe — which campaigns use by construction.
            print(
                "note: behavioural feedback is enabled; challenge-only "
                "replays of this trace will show score drift "
                "(`repro record`/`repro campaign` traces replay "
                "bit-identically)",
                flush=True,
            )
        if args.workers == 1:
            from repro.replay import TraceRecorder

            recorder = TraceRecorder()

    registry = None
    tracer = None
    if args.workers > 1:
        from repro.net.gateway.cluster import GatewayCluster

        server = GatewayCluster(
            spec,
            workers=args.workers,
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            batch_window=args.batch_window,
            queue_limit=args.queue_limit,
            shed_policy=args.shed_policy,
            state_dir=args.state_dir,
            state_server=args.state_server,
            replicas=args.replicas,
            record_path=args.record,
            metrics_port=args.metrics_port,
            trace_every=args.trace_every if args.trace_out else 0,
            trace_path=args.trace_out,
        )
        mode = (
            f"{args.workers} gateway workers sharded by client-IP hash "
            f"(batch<={args.max_batch}, "
            f"window {args.batch_window * 1000:g} ms, "
            f"queue<={args.queue_limit}, {args.shed_policy}"
            + (f", state {args.state_dir}" if args.state_dir else "")
            + (
                f", state-server {args.state_server}"
                if args.state_server else ""
            )
            + ")"
        )
        metrics = None
    elif args.gateway:
        from repro.metrics.collector import GatewayMetrics
        from repro.net.gateway.cluster import make_shed_policy
        from repro.net.gateway.server import GatewayServer
        from repro.state import read_shard_file, write_shard_file

        framework = spec.build()
        if args.state_dir:
            try:
                snapshot = read_shard_file(args.state_dir, 0, 1)
            except ValueError as exc:
                print(exc)
                return 2
            if snapshot is not None:
                framework.restore(snapshot)
        metrics = GatewayMetrics()
        registry = metrics.registry
        if args.trace_out:
            from repro.obs.tracing import RequestTracer

            tracer = RequestTracer(
                sample_every=args.trace_every, registry=registry
            )
        server = GatewayServer(
            framework,
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            batch_window=args.batch_window,
            queue_limit=args.queue_limit,
            shed_policy=make_shed_policy(args.shed_policy),
            metrics=metrics,
            recorder=recorder,
            tracer=tracer,
        )
        mode = (
            f"gateway (batch<={args.max_batch}, "
            f"window {args.batch_window * 1000:g} ms, "
            f"queue<={args.queue_limit}, {args.shed_policy})"
        )
    else:
        from repro.core.events import EventKind
        from repro.net.live.server import LiveServer
        from repro.obs.registry import METRIC_CATALOG, MetricsRegistry

        metrics = None
        framework = spec.build()
        if recorder is not None:
            recorder.attach(framework.events)
        registry = MetricsRegistry()
        responses = registry.counter(
            "pipeline_responses_total",
            METRIC_CATALOG["pipeline_responses_total"],
            labels=("status",),
        )

        def _count_response(event) -> None:
            response = event.payload.get("response")
            if response is not None:
                responses.inc(status=response.status.value)

        framework.events.subscribe(
            _count_response, kinds=[EventKind.RESPONSE_SERVED]
        )
        if args.trace_out:
            from repro.obs.tracing import RequestTracer

            tracer = RequestTracer(
                sample_every=args.trace_every, registry=registry
            ).attach(framework.events)
        server = LiveServer(framework, host=args.host, port=args.port)
        mode = "thread-per-connection"

    shutdown = _install_shutdown_signals()
    try:
        server.start()
    except ValueError as exc:
        # e.g. a state directory split for a different worker count.
        print(exc)
        return 2
    metrics_server = None
    snapshot_writer = None
    try:
        host, port = server.address
        print(f"serving AI-assisted PoW on {host}:{port} "
              f"(policy {args.policy}, {mode}); Ctrl-C or SIGTERM to stop",
              flush=True)
        metrics_url = None
        if args.workers > 1:
            metrics_url = server.metrics_url
        elif args.metrics_port is not None:
            from repro.obs.http import MetricsHTTPServer

            metrics_server = MetricsHTTPServer(
                registry.snapshot, host=args.host, port=args.metrics_port
            ).start()
            metrics_url = metrics_server.url
        if metrics_url is not None:
            print(f"metrics on {metrics_url}/metrics", flush=True)
        if args.metrics_snapshots:
            from repro.obs.http import SnapshotWriter

            provider = (
                server.metrics_snapshot
                if args.workers > 1
                else registry.snapshot
            )
            snapshot_writer = SnapshotWriter(
                args.metrics_snapshots, provider
            ).start()
        shutdown.wait()
        print("\nshutting down")
    finally:
        server.stop()
        if metrics_server is not None:
            metrics_server.close()
        if snapshot_writer is not None:
            snapshot_writer.close()
            print(
                f"{snapshot_writer.lines} metric snapshots -> "
                f"{args.metrics_snapshots}"
            )
    # The stop drained the server: queued admissions resolved as shed,
    # in-flight exchanges got their grace, workers exited 0.
    if args.workers > 1:
        summary = server.metrics_summary
        print(
            f"workers {summary.get('workers', 0)}: "
            f"admitted {summary.get('admitted', 0)} in "
            f"{summary.get('flushes', 0)} batches "
            f"(mean size {summary.get('mean_batch_size', 0.0):.1f}), "
            f"shed {summary.get('shed', 0)}"
        )
        if args.record and server.recorded_trace is not None:
            print(
                f"recorded {len(server.recorded_trace)} decisions "
                f"-> {args.record}"
            )
        if args.trace_out:
            print(
                f"{len(server.trace_spans)} sampled spans "
                f"-> {args.trace_out}"
            )
        if any(code not in (0, None) for code in server.exit_codes):
            print(f"worker exit codes: {server.exit_codes}")
            return 1
    elif metrics is not None:
        print(
            f"admitted {metrics.admitted_count} in "
            f"{len(metrics.batch_sizes)} batches "
            f"(mean size {metrics.mean_batch_size:.1f}), "
            f"shed {metrics.shed_count}"
        )
        if args.gateway and args.state_dir:
            write_shard_file(
                args.state_dir, 0, 1, server.framework.snapshot()
            )
            print(f"state written to {args.state_dir}")
    if recorder is not None:
        import dataclasses

        from repro.replay import spec_hash

        recorder.dump(
            args.record,
            config_hash=spec_hash(spec),
            meta={
                "recorder": "serve",
                "spec": dataclasses.asdict(spec),
            },
        )
        print(f"recorded {len(recorder)} decisions -> {args.record}")
    if tracer is not None and args.workers == 1:
        tracer.dump(
            args.trace_out,
            meta={"recorder": "serve", "sample_every": args.trace_every},
        )
        print(f"{len(tracer)} sampled spans -> {args.trace_out}")
    return 0


def _cmd_state(args: argparse.Namespace) -> int:
    from repro.state import (
        load_snapshot,
        merge_snapshots,
        read_shard_files,
        save_snapshot,
        split_snapshot,
        write_shard_files,
    )

    if args.state_command == "serve":
        from repro.obs.registry import MetricsRegistry
        from repro.state.net import StateServer

        registry = MetricsRegistry()
        server = StateServer(
            address=args.bind,
            snapshot_path=args.snapshot,
            registry=registry,
        )
        shutdown = _install_shutdown_signals()
        try:
            server.start()
        except (ValueError, OSError) as exc:
            print(exc)
            return 2
        metrics_server = None
        try:
            print(
                f"serving admission state on {server.address}"
                + (f" (snapshot {args.snapshot})" if args.snapshot else "")
                + "; Ctrl-C or SIGTERM to stop",
                flush=True,
            )
            if args.metrics_port is not None:
                from repro.obs.http import MetricsHTTPServer

                host = server.address.split(":", 1)[0]
                if host.startswith("unix"):
                    host = "127.0.0.1"
                metrics_server = MetricsHTTPServer(
                    registry.snapshot, host=host, port=args.metrics_port
                ).start()
                print(f"metrics on {metrics_server.url}/metrics",
                      flush=True)
            shutdown.wait()
            print("\nshutting down")
        finally:
            server.stop()
            if metrics_server is not None:
                metrics_server.close()
        if args.snapshot:
            print(f"state written to {args.snapshot}")
        return 0

    if args.state_command == "topology":
        from repro.state.net import MultiNodeStateStore

        nodes = [
            part.strip() for part in args.nodes.split(",") if part.strip()
        ]
        if not nodes:
            print(f"no addresses in --nodes {args.nodes!r}")
            return 2
        if args.add and args.remove:
            print("--add and --remove are exclusive; apply one change "
                  "at a time")
            return 2
        try:
            store = MultiNodeStateStore(nodes, replicas=args.replicas)
        except ValueError as exc:
            print(exc)
            return 2
        try:
            if args.add is None and args.remove is None:
                for node in store.nodes:
                    topology = node.topology()
                    print(
                        f"{node.address}: epoch "
                        f"{topology.get('epoch', 0)}, "
                        f"{len(node)} entries"
                    )
                return 0
            if args.add is not None:
                if args.add in nodes:
                    print(f"{args.add} is already a member")
                    return 2
                target = nodes + [args.add]
            else:
                if args.remove not in nodes:
                    print(f"{args.remove} is not a member of {nodes}")
                    return 2
                target = [n for n in nodes if n != args.remove]
                if not target:
                    print("cannot remove the last node")
                    return 2
            report = store.apply_topology(target)
        except (ConnectionError, OSError, ValueError) as exc:
            print(exc)
            return 2
        finally:
            store.close()
        print(report.summary())
        for address, moved in report.per_node:
            print(f"  -> {address}: {moved} entries received")
        return 0

    if args.state_command == "snapshot":
        try:
            shards = read_shard_files(args.state_dir)
        except (ValueError, OSError) as exc:
            print(exc)
            return 2
        if not shards:
            print(f"no shard snapshots in {args.state_dir}")
            return 1
        merged = merge_snapshots(shards)
        save_snapshot(merged, args.out)
        entries = sum(
            len(e) for e in merged.get("namespaces", {}).values()
        )
        print(
            f"merged {len(shards)} shard(s) -> {args.out} "
            f"({entries} entries)"
        )
        return 0

    if args.state_command == "restore":
        if args.workers < 1:
            print(f"--workers must be >= 1, got {args.workers}")
            return 2
        if args.replicas < 1:
            print(f"--replicas must be >= 1, got {args.replicas}")
            return 2
        try:
            merged = load_snapshot(args.snapshot)
            parts = split_snapshot(merged, args.workers, args.replicas)
            paths = write_shard_files(
                args.state_dir, parts, replicas=args.replicas
            )
        except (ValueError, OSError) as exc:
            print(exc)
            return 2
        for path in paths:
            print(f"wrote {path}")
        return 0

    # show
    import pathlib

    path = pathlib.Path(args.path)
    try:
        if path.is_dir():
            shards = read_shard_files(path)
            if not shards:
                print(f"no shard snapshots in {path}")
                return 1
            documents = [
                (f"shard {i}", doc) for i, doc in enumerate(shards)
            ]
        else:
            document = load_snapshot(path)
            kind = document.get("kind")
            if kind == "shard-file":
                documents = [(
                    f"shard {document['shard']} of {document['shards']}",
                    document["state"],
                )]
            elif kind == "sharded":
                documents = [
                    (f"shard {i}", doc)
                    for i, doc in enumerate(document.get("shards", []))
                ]
            else:
                documents = [("snapshot", document)]
    except (ValueError, OSError) as exc:
        print(exc)
        return 2
    for label, document in documents:
        print(f"{label}:")
        namespaces = document.get("namespaces", {})
        if not namespaces:
            print("  (empty)")
        for name, entries in namespaces.items():
            print(f"  {name}: {len(entries)} entries")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    import random

    from repro.analysis.comparison import compare_policies
    from repro.analysis.synthesis import synthesize_table_policy
    from repro.policies import paper_policies

    print(compare_policies(paper_policies()).render())
    if args.targets:
        policy = synthesize_table_policy(args.targets)
        rng = random.Random(0)
        print(f"\nsynthesized policy for {len(args.targets)} budgets:")
        print(f"  {policy.describe()}")
        for score in range(len(args.targets)):
            print(
                f"  score {score}: difficulty "
                f"{policy.difficulty_for(float(score), rng)} "
                f"(budget {args.targets[score]:g}s)"
            )
    return 0


def _cmd_record(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.replay import (
        CAMPAIGNS,
        feed_live,
        parse_target,
        run_campaign,
        spec_hash,
    )

    if args.scenario not in CAMPAIGNS:
        print(f"unknown campaign {args.scenario!r}; "
              f"available: {', '.join(sorted(CAMPAIGNS))}")
        return 2
    campaign = CAMPAIGNS[args.scenario]
    if campaign.scale is not None:
        print(f"campaign {args.scenario!r} is large-scale: it aggregates "
              "outcomes and records no per-decision trace")
        return 2

    if args.target == "sim":
        run = run_campaign(campaign, record_path=args.out)
        print(run.result.render())
        print(f"\nrecorded {len(run.trace)} decisions -> {args.out}")
        return 0

    try:
        kind, workers = parse_target(args.target)
    except ValueError as exc:
        print(exc)
        return 2
    if kind == "inproc":
        print("record targets: sim, gateway, cluster:N "
              "(inproc is a replay target)")
        return 2

    # Live capture: generate the campaign's open-loop workload, then
    # drive it sequentially through a real server with recording on.
    from repro.replay.campaign import _PROFILES
    from repro.traffic.generator import WorkloadGenerator

    generator = WorkloadGenerator(seed=campaign.seed)
    workload, _clients = generator.mixed_trace(
        [(_PROFILES[name], count) for name, count in campaign.populations],
        duration=campaign.duration,
    )
    entries = list(workload)
    if kind == "gateway":
        from repro.net.gateway.server import GatewayServer
        from repro.replay import TraceRecorder

        framework = campaign.spec.build()
        recorder = TraceRecorder()
        with GatewayServer(framework, recorder=recorder) as server:
            feed_live(server.address, entries)
        recorder.dump(
            args.out,
            config_hash=spec_hash(campaign.spec),
            seed=campaign.seed,
            meta={
                "campaign": campaign.name,
                "recorder": "gateway-live",
                "spec": dataclasses.asdict(campaign.spec),
            },
        )
        recorded = len(recorder)
    else:
        from repro.net.gateway.cluster import GatewayCluster

        cluster = GatewayCluster(
            campaign.spec, workers=workers, record_path=args.out
        )
        with cluster:
            feed_live(cluster.address, entries)
        recorded = (
            len(cluster.recorded_trace)
            if cluster.recorded_trace is not None
            else 0
        )
    print(f"fed {len(entries)} live requests through {args.target}; "
          f"recorded {recorded} decisions -> {args.out}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.core.errors import TraceFormatError
    from repro.replay import (
        TraceReplayer,
        diff_decisions,
        replay_live_gateway,
    )
    from repro.traffic.trace import Trace

    try:
        trace = Trace.load_jsonl(args.trace)
    except TraceFormatError as exc:
        print(f"{args.trace}: {exc}")
        return 2
    if args.live:
        if args.target not in ("inproc", "gateway"):
            print("--live replays through a gateway; cluster targets "
                  "are in-process only")
            return 2
        if args.speed:
            print("--speed only paces in-process replays; live replay "
                  "feeds sequentially at full speed")
            return 2
        result = replay_live_gateway(trace)
    else:
        try:
            result = TraceReplayer(
                trace, target=args.target, speed=args.speed
            ).run()
        except ValueError as exc:
            print(exc)
            return 2
    print(
        f"replayed {result.requests} requests through {result.target}: "
        f"{len(result.decisions)} decisions in {result.elapsed:.3f}s "
        f"({result.throughput:,.0f}/s)"
    )
    if args.out:
        result.trace.dump_jsonl(args.out)
        print(f"decision trace written to {args.out}")
    if not args.diff:
        return 0

    recorded = trace.decisions()
    if not recorded:
        print("trace carries no recorded decisions to diff against")
        return 2
    # Live replays match by position (the server assigned fresh request
    # ids) and ignore client_ip (recorded clients are remapped onto
    # loopback source addresses; see repro.replay.loopback_plan).
    report = diff_decisions(
        recorded,
        result.decisions,
        match_by="position" if args.live else "request_id",
        ignore={"client_ip"} if args.live else (),
    )
    print()
    print(report.render())
    if args.diff_report:
        with open(args.diff_report, "w", encoding="utf-8") as handle:
            handle.write(report.to_json() + "\n")
        print(f"diff report written to {args.diff_report}")
    return 0 if report.identical else 1


def _cmd_campaign(args: argparse.Namespace) -> int:
    import dataclasses as _dc

    from repro.net.sim.links import LINK_PROFILES
    from repro.replay import CAMPAIGNS, run_campaign

    if args.list_links:
        for name in sorted(LINK_PROFILES):
            profile = LINK_PROFILES[name]
            print(f"{name}: {profile.note}")
        return 0
    if args.list or args.scenario is None:
        for name in sorted(CAMPAIGNS):
            campaign = CAMPAIGNS[name]
            tag = (
                f" [scale: {campaign.agents:,} agents]"
                if campaign.scale is not None
                else ""
            )
            print(f"{name}: {campaign.description}{tag}")
        return 0 if args.list else 2
    if args.scenario not in CAMPAIGNS:
        print(f"unknown campaign {args.scenario!r}; "
              f"available: {', '.join(sorted(CAMPAIGNS))}")
        return 2
    campaign = CAMPAIGNS[args.scenario]
    if args.link:
        if campaign.scale is None:
            print(f"campaign {args.scenario!r} is not large-scale; "
                  "--link applies only to scale campaigns (the link "
                  "substrate lives in the vectorized engine)")
            return 2
        links = dict(campaign.scale.links)
        for override in args.link:
            pop, sep, profile = override.partition("=")
            if not sep or not pop or not profile:
                print(f"--link expects POP=PROFILE, got {override!r}")
                return 2
            if profile == "none":
                links.pop(pop, None)
            else:
                links[pop] = profile
        try:
            campaign = _dc.replace(
                campaign,
                scale=_dc.replace(campaign.scale, links=links),
            )
        except ValueError as exc:
            # Unknown profile / population — the specs validate loudly.
            print(exc)
            return 2
    if args.procs is not None:
        if campaign.scale is None:
            print(f"campaign {args.scenario!r} is not large-scale; "
                  "--procs applies only to scale campaigns (the "
                  "parallel driver shards the vectorized engine)")
            return 2
        try:
            campaign = _dc.replace(
                campaign,
                scale=_dc.replace(campaign.scale, procs=args.procs),
            )
        except ValueError as exc:
            print(exc)
            return 2
    tracer = None
    if args.trace_out:
        from repro.obs.tracing import RequestTracer

        if args.trace_every < 1:
            print(f"--trace-every must be >= 1, got {args.trace_every}")
            return 2
        tracer = RequestTracer(sample_every=args.trace_every)
    try:
        run = run_campaign(
            campaign,
            record_path=args.record,
            tracer=tracer,
            snapshot_path=args.metrics_snapshots,
        )
    except ValueError as exc:
        # e.g. --record of a large-scale campaign (they aggregate
        # outcomes; the library owns that rule).
        print(exc)
        return 2
    print(run.result.render())
    if args.record:
        print(f"\ngolden trace written to {args.record}")
    if tracer is not None:
        tracer.dump(
            args.trace_out,
            meta={
                "recorder": "campaign",
                "campaign": campaign.name,
                "sample_every": args.trace_every,
            },
        )
        print(f"{len(tracer)} sampled spans -> {args.trace_out}")
    if args.metrics_snapshots and campaign.scale is not None:
        print(f"metric snapshots -> {args.metrics_snapshots}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.tracing import load_spans, render_spans

    try:
        meta, spans = load_spans(args.file)
    except OSError as exc:
        print(exc)
        return 2
    except ValueError as exc:
        print(exc)
        return 2
    if not spans:
        print(f"{args.file}: no spans recorded")
        return 1
    outcomes: dict[str, int] = {}
    for span in spans:
        outcome = span.get("outcome", "?")
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
    breakdown = ", ".join(
        f"{count} {outcome}" for outcome, count in sorted(outcomes.items())
    )
    source = meta.get("recorder") or meta.get("campaign")
    origin = f" from {source}" if source else ""
    print(f"{len(spans)} sampled spans{origin} ({breakdown})")
    print()
    print(render_spans(spans, limit=args.limit))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import glob
    import pstats
    import tempfile

    from repro.bench.runner import EXPERIMENTS, run_experiment
    from repro.core.errors import ComponentNotFoundError
    from repro.net.sim.parsim import PROFILE_DIR_ENV

    if args.top < 1:
        print(f"--top must be >= 1, got {args.top}")
        return 2
    profiler = cProfile.Profile()
    # Parallel experiments spend their time in worker processes, which
    # the parent's profiler cannot see; the env hook makes each worker
    # dump its own pstats here so the report covers the actual work.
    with tempfile.TemporaryDirectory(prefix="repro-profile-") as tmp:
        os.environ[PROFILE_DIR_ENV] = tmp
        profiler.enable()
        try:
            result = run_experiment(args.experiment)
        except ComponentNotFoundError:
            print(f"unknown experiment {args.experiment!r}; "
                  f"available: {', '.join(sorted(EXPERIMENTS))}")
            return 2
        finally:
            profiler.disable()
            os.environ.pop(PROFILE_DIR_ENV, None)
        print(result.render())
        print()
        stats = pstats.Stats(profiler)
        worker_dumps = sorted(
            glob.glob(os.path.join(tmp, "parsim-worker-*.pstats"))
        )
        for dump in worker_dumps:
            stats.add(dump)
    if worker_dumps:
        print(f"aggregated {len(worker_dumps)} worker profiles into "
              "the parent's (multi-process experiment)")
    stats.sort_stats(pstats.SortKey.CUMULATIVE)
    print(f"top {args.top} hotspots by cumulative time:")
    stats.print_stats(args.top)
    if args.out:
        stats.dump_stats(args.out)
        print(f"raw profile written to {args.out}")
    return 0


def _cmd_kernels(args: argparse.Namespace) -> int:
    from repro.bench.kernels import KernelBenchConfig, run_kernel_microbench

    if args.size < 1:
        print(f"--size must be >= 1, got {args.size}")
        return 2
    if args.repeats < 1:
        print(f"--repeats must be >= 1, got {args.repeats}")
        return 2
    result = run_kernel_microbench(
        KernelBenchConfig(size=args.size, repeats=args.repeats)
    )
    print(result.render())
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.bench.scenario import run_scenario_json

    with open(args.file, encoding="utf-8") as handle:
        result = run_scenario_json(handle.read())
    print(result.render())
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    import pathlib

    from repro.bench.runner import EXPERIMENTS

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    for experiment_id, harness in EXPERIMENTS.items():
        result = harness()
        path = out_dir / f"{experiment_id}.json"
        path.write_text(result.to_json(), encoding="utf-8")
        print(f"wrote {path}")
    return 0


def _cmd_all(_args: argparse.Namespace) -> int:
    from repro.bench.runner import run_all

    for result in run_all():
        print(result.render())
        print()
    return 0


_COMMANDS = {
    "figure2": _cmd_figure2,
    "calibrate": _cmd_calibrate,
    "accuracy": _cmd_accuracy,
    "throttle": _cmd_throttle,
    "ablations": _cmd_ablations,
    "demo": _cmd_demo,
    "serve": _cmd_serve,
    "state": _cmd_state,
    "analyze": _cmd_analyze,
    "record": _cmd_record,
    "replay": _cmd_replay,
    "campaign": _cmd_campaign,
    "trace": _cmd_trace,
    "kernels": _cmd_kernels,
    "profile": _cmd_profile,
    "scenario": _cmd_scenario,
    "export": _cmd_export,
    "all": _cmd_all,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
