"""A state store partitioned over N child stores by consistent hash.

:class:`ShardedStateStore` is the single-process twin of the
multi-worker gateway: the same :class:`~repro.state.sharding.HashRing`
that routes a connection to a worker routes a key to a child store
here.  Components are oblivious — they hold a
:class:`ShardedNamespace`, which forwards each keyed operation to the
owning shard's namespace.

Semantics under partitioning
----------------------------
Keyed operations (``get``/``put``/``delete``/``move_to_end``) behave
exactly like the in-memory store: a key lives wholly in one shard, so
per-client state never crosses a shard boundary and per-key behaviour
is bit-identical.  *Aggregate* operations are where partitioning shows:

* ``len``/iteration/``items`` span shards (shard order, insertion
  order within a shard) — not the global insertion order;
* ``popitem(last=False)`` evicts the oldest entry of the *fullest*
  shard, because "globally oldest" is exactly the cross-shard
  coordination a sharded deployment avoids.

Capacity-pressure eviction is therefore approximate under sharding —
the documented trade: parity holds whenever capacity limits are not
hit, which is the operating regime the limits are sized for.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.state.sharding import HashRing
from repro.state.snapshot import check_snapshot
from repro.state.store import (
    SNAPSHOT_FORMAT,
    AdmissionStateStore,
    InMemoryStateStore,
    StateNamespace,
)

__all__ = ["ShardedStateStore", "ShardedNamespace"]


class ShardedNamespace:
    """Namespace view routing each key to its owning shard."""

    __slots__ = ("name", "_ring", "_tables")

    def __init__(
        self, name: str, ring: HashRing, stores: list[AdmissionStateStore]
    ) -> None:
        self.name = name
        self._ring = ring
        self._tables: list[StateNamespace] = [
            store.namespace(name) for store in stores
        ]

    def _table(self, key: str) -> StateNamespace:
        return self._tables[self._ring.shard_for(key)]

    # -- keyed operations (shard-local, parity-exact) ------------------
    def get(self, key: str, default: Any = None) -> Any:
        return self._table(key).get(key, default)

    def __getitem__(self, key: str) -> Any:
        return self._table(key)[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self._table(key)[key] = value

    def __delitem__(self, key: str) -> None:
        del self._table(key)[key]

    def __contains__(self, key: str) -> bool:
        return key in self._table(key)

    def pop(self, key: str, *default: Any) -> Any:
        return self._table(key).pop(key, *default)

    def setdefault(self, key: str, default: Any) -> Any:
        return self._table(key).setdefault(key, default)

    def move_to_end(self, key: str) -> None:
        self._table(key).move_to_end(key)

    # -- aggregate operations (span shards) ----------------------------
    def __len__(self) -> int:
        return sum(len(table) for table in self._tables)

    def __iter__(self) -> Iterator[str]:
        for table in self._tables:
            yield from table

    def keys(self):
        return iter(self)

    def items(self):
        for table in self._tables:
            yield from table.items()

    def clear(self) -> None:
        for table in self._tables:
            table.clear()

    def popitem(self, last: bool = True) -> tuple[str, Any]:
        candidates = [table for table in self._tables if len(table)]
        if not candidates:
            raise KeyError("popitem(): namespace is empty")
        victim = max(candidates, key=len)
        return victim.popitem(last=last)


class ShardedStateStore(AdmissionStateStore):
    """Partitions every namespace over ``shards`` child stores.

    Parameters
    ----------
    shards:
        Number of partitions, or an explicit list of child stores
        (defaults to fresh :class:`InMemoryStateStore` children).
    replicas:
        Virtual nodes per shard on the routing ring; must match the
        gateway cluster's ring for store/worker routing to agree
        (both default to 64).
    """

    def __init__(
        self,
        shards: int | list[AdmissionStateStore],
        replicas: int = 64,
    ) -> None:
        if isinstance(shards, int):
            self.stores: list[AdmissionStateStore] = [
                InMemoryStateStore() for _ in range(shards)
            ]
        else:
            if not shards:
                raise ValueError("need at least one child store")
            self.stores = list(shards)
        self.ring = HashRing(len(self.stores), replicas=replicas)
        self._namespaces: dict[str, ShardedNamespace] = {}

    @property
    def shard_count(self) -> int:
        return len(self.stores)

    def shard_for(self, key: str) -> int:
        """The shard index owning ``key`` (exposed for routing tests)."""
        return self.ring.shard_for(key)

    def namespace(self, name: str) -> ShardedNamespace:
        table = self._namespaces.get(name)
        if table is None:
            table = self._namespaces[name] = ShardedNamespace(
                name, self.ring, self.stores
            )
        return table

    def namespaces(self) -> tuple[str, ...]:
        names: dict[str, None] = {}
        for store in self.stores:
            for name in store.namespaces():
                names.setdefault(name)
        return tuple(names)

    def snapshot(self) -> dict:
        return {
            "format": SNAPSHOT_FORMAT,
            "kind": "sharded",
            "replicas": self.ring.replicas,
            "shards": [store.snapshot() for store in self.stores],
        }

    def restore(self, snapshot: dict) -> None:
        check_snapshot(snapshot, kind="sharded")
        recorded = snapshot.get("replicas")
        if recorded is not None and int(recorded) != self.ring.replicas:
            # Loading positionally into a differently-shaped ring would
            # park keys on shards where lookups never find them.
            raise ValueError(
                f"snapshot was split with replicas={recorded}, store ring "
                f"has replicas={self.ring.replicas}; re-split it with "
                "repro.state.snapshot.split_snapshot / `repro state restore`"
            )
        shards = snapshot.get("shards", [])
        if len(shards) != len(self.stores):
            raise ValueError(
                f"snapshot has {len(shards)} shards, store has "
                f"{len(self.stores)}; re-split it with "
                "repro.state.snapshot.split_snapshot / `repro state restore`"
            )
        for store, shard_snapshot in zip(self.stores, shards):
            store.restore(shard_snapshot)

    def clear(self) -> None:
        for store in self.stores:
            store.clear()
