"""Deterministic keyspace partitioning shared by store and gateway.

Both the single-process :class:`~repro.state.sharded.ShardedStateStore`
and the multi-worker gateway router must send a given client IP to the
same shard — in different processes, on different days.  Python's
built-in ``hash()`` is salted per process, so routing is built on a
keyed-nothing BLAKE2b digest instead.

:class:`HashRing` is a classic consistent-hash ring with virtual nodes:
each shard owns ``replicas`` points on a 64-bit ring and a key belongs
to the first shard point clockwise from the key's hash.  For a fixed
shard count this is simply a stable partition; the ring shape is what
keeps future PRs cheap — adding a shard moves only ``~1/(n+1)`` of the
keyspace instead of reshuffling everything, which is the property
replication and live resharding will build on.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from collections import OrderedDict

__all__ = ["stable_hash", "HashRing", "shard_for"]


def stable_hash(key: str) -> int:
    """A process-independent 64-bit hash of ``key``."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring mapping string keys to shard indices.

    Parameters
    ----------
    shards:
        Number of shards (>= 1).
    replicas:
        Virtual nodes per shard; more replicas smooth the partition at
        the cost of a larger (still tiny) ring.
    """

    __slots__ = ("shards", "replicas", "_points", "_owners")

    def __init__(self, shards: int, replicas: int = 64) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.shards = shards
        self.replicas = replicas
        points: list[tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(replicas):
                points.append(
                    (stable_hash(f"shard:{shard}:vnode:{replica}"), shard)
                )
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    def shard_for(self, key: str) -> int:
        """The shard index owning ``key``."""
        if self.shards == 1:
            return 0
        index = bisect.bisect_right(self._points, stable_hash(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]


#: Ring cache: the gateway router and every worker build the same ring.
#: Bounded LRU — the networked store builds a ring per topology change,
#: so an unbounded cache would leak one ring per epoch forever.
_RING_CACHE: OrderedDict[tuple[int, int], HashRing] = OrderedDict()
_RING_CACHE_LIMIT = 32
_RING_CACHE_LOCK = threading.Lock()


def _ring_for(shards: int, replicas: int) -> HashRing:
    """Get-or-create a memoised ring, race-safe and LRU-bounded."""
    shape = (shards, replicas)
    with _RING_CACHE_LOCK:
        ring = _RING_CACHE.get(shape)
        if ring is not None:
            _RING_CACHE.move_to_end(shape)
            return ring
    # Build outside the lock: ring construction is the expensive part
    # and two racing builders produce identical rings anyway.
    ring = HashRing(shards, replicas)
    with _RING_CACHE_LOCK:
        ring = _RING_CACHE.setdefault(shape, ring)
        _RING_CACHE.move_to_end(shape)
        while len(_RING_CACHE) > _RING_CACHE_LIMIT:
            _RING_CACHE.popitem(last=False)
    return ring


def shard_for(key: str, shards: int, replicas: int = 64) -> int:
    """Module-level routing helper with a memoised ring per shape."""
    return _ring_for(shards, replicas).shard_for(key)
