"""The admission state layer: every mutable per-client byte, made explicit.

The paper's adaptive issuer is stateful per client — behavioural
reputation offsets, cached scores, load estimates, replay protection.
Historically each component kept that state in a private dict, which
meant the serving tier could neither shard it across workers nor carry
it across a restart.  This package turns the state layer into a
first-class subsystem:

* :class:`StateNamespace` — one ordered keyed table (e.g. the feedback
  offsets), with the dict-ish operations the components need;
* :class:`AdmissionStateStore` — the interface every backend satisfies:
  ``namespace()`` access plus whole-store ``snapshot()``/``restore()``;
* :class:`InMemoryStateStore` — the process-local implementation every
  framework owns by default;
* :class:`ShardedStateStore` — partitions the keyspace over N child
  stores by consistent hash, the single-process twin of the
  multi-worker gateway's routing;
* :class:`HashRing` / :func:`stable_hash` — the deterministic routing
  shared by the sharded store and the gateway cluster (never Python's
  salted ``hash()``);
* :mod:`repro.state.snapshot` — JSON snapshot files, plus the
  merge/split helpers behind ``repro state snapshot``/``restore``;
* :mod:`repro.state.net` — the networked backend: a
  :class:`StateServer` hosting any store over TCP/AF_UNIX, the
  :class:`RemoteStateStore` client, and the multi-node
  :class:`MultiNodeStateStore` with live resharding
  (``repro state serve`` / ``repro state topology``).

Values stored in a namespace must be JSON-safe (numbers, strings,
booleans, lists of those) so any snapshot round-trips losslessly.
"""

from repro.state.net import (
    HandoffReport,
    MultiNodeStateStore,
    RemoteStateStore,
    StateServer,
)
from repro.state.sharded import ShardedStateStore
from repro.state.sharding import HashRing, shard_for, stable_hash
from repro.state.snapshot import (
    load_snapshot,
    merge_snapshots,
    read_shard_file,
    read_shard_files,
    save_snapshot,
    shard_file_name,
    split_snapshot,
    state_dir_topology,
    write_shard_file,
    write_shard_files,
)
from repro.state.store import (
    AdmissionStateStore,
    InMemoryStateStore,
    StateNamespace,
)

__all__ = [
    "AdmissionStateStore",
    "InMemoryStateStore",
    "StateNamespace",
    "ShardedStateStore",
    "StateServer",
    "RemoteStateStore",
    "MultiNodeStateStore",
    "HandoffReport",
    "HashRing",
    "shard_for",
    "stable_hash",
    "load_snapshot",
    "save_snapshot",
    "merge_snapshots",
    "split_snapshot",
    "shard_file_name",
    "state_dir_topology",
    "read_shard_file",
    "read_shard_files",
    "write_shard_file",
    "write_shard_files",
]
