"""The admission state store interface and its in-memory backend.

A store is a set of named :class:`StateNamespace` tables.  Components
hold the namespace object directly (one attribute lookup away from the
raw dict they used to own), so the hot path pays nothing for the
indirection — what the store adds is the cold path: the whole mutable
surface of a framework can be snapshotted, restored, partitioned and
inspected through one object.

Contract
--------
* Keys are strings (client IPs, puzzle seeds, well-known singletons).
* Values are JSON-safe: numbers, strings, booleans, or (nested) lists
  of those.  Components that used to store dataclasses store small
  lists instead (e.g. ``[offset, updated_at]``) and mutate them in
  place — a snapshot deep-copies, so later mutation never corrupts it.
* Namespaces preserve insertion order and support the LRU primitives
  (``move_to_end``, ``popitem``) the caching components rely on.
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from typing import Any, Iterator

__all__ = ["StateNamespace", "AdmissionStateStore", "InMemoryStateStore"]

#: Snapshot document version; bump when the layout changes.
SNAPSHOT_FORMAT = 1


class StateNamespace:
    """One ordered keyed table inside a store (e.g. ``feedback``).

    Deliberately duck-typed like :class:`collections.OrderedDict` so
    porting a component is a constructor change, not a rewrite.
    """

    __slots__ = ("name", "_entries")

    def __init__(self, name: str) -> None:
        self.name = name
        self._entries: OrderedDict[str, Any] = OrderedDict()

    # -- mapping surface ----------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        return self._entries.get(key, default)

    def __getitem__(self, key: str) -> Any:
        return self._entries[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self._entries[key] = value

    def __delitem__(self, key: str) -> None:
        del self._entries[key]

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def keys(self):
        return self._entries.keys()

    def items(self):
        return self._entries.items()

    def pop(self, key: str, *default: Any) -> Any:
        return self._entries.pop(key, *default)

    def setdefault(self, key: str, default: Any) -> Any:
        return self._entries.setdefault(key, default)

    def clear(self) -> None:
        self._entries.clear()

    # -- LRU primitives -----------------------------------------------
    def move_to_end(self, key: str) -> None:
        self._entries.move_to_end(key)

    def popitem(self, last: bool = True) -> tuple[str, Any]:
        return self._entries.popitem(last=last)

    # -- snapshot plumbing --------------------------------------------
    def dump(self) -> list[list[Any]]:
        """Entries as an order-preserving, JSON-safe list of pairs."""
        return [[key, copy.deepcopy(value)] for key, value in self._entries.items()]

    def load(self, entries) -> None:
        """Replace the table's content with :meth:`dump` output."""
        self._entries.clear()
        for key, value in entries:
            self._entries[str(key)] = copy.deepcopy(value)


class AdmissionStateStore:
    """Interface of the state layer; also the shared base class.

    Backends must provide :meth:`namespace` (creating on first use),
    :meth:`namespaces`, :meth:`snapshot`, :meth:`restore`, and
    :meth:`clear`.  ``get``/``put``/``mutate`` convenience wrappers are
    provided here in terms of :meth:`namespace` for callers that do not
    want to hold a namespace object.
    """

    def namespace(self, name: str) -> StateNamespace:
        raise NotImplementedError

    def namespaces(self) -> tuple[str, ...]:
        raise NotImplementedError

    def snapshot(self) -> dict:
        """The whole store as one JSON-safe document."""
        raise NotImplementedError

    def restore(self, snapshot: dict) -> None:
        """Replace the store's content with :meth:`snapshot` output."""
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    # -- convenience keyed access -------------------------------------
    def get(self, namespace: str, key: str, default: Any = None) -> Any:
        return self.namespace(namespace).get(key, default)

    def put(self, namespace: str, key: str, value: Any) -> None:
        self.namespace(namespace)[key] = value

    def mutate(self, namespace: str, key: str, fn, default: Any = None) -> Any:
        """Apply ``fn(current_value_or_default)`` and store the result."""
        table = self.namespace(namespace)
        value = fn(table.get(key, default))
        table[key] = value
        return value


class InMemoryStateStore(AdmissionStateStore):
    """Process-local backend: namespaces over ordered dicts."""

    def __init__(self) -> None:
        self._namespaces: dict[str, StateNamespace] = {}

    def namespace(self, name: str) -> StateNamespace:
        table = self._namespaces.get(name)
        if table is None:
            table = self._namespaces[name] = StateNamespace(name)
        return table

    def namespaces(self) -> tuple[str, ...]:
        return tuple(self._namespaces)

    def __len__(self) -> int:
        return sum(len(table) for table in self._namespaces.values())

    def snapshot(self) -> dict:
        # Empty tables are omitted: ``clear()`` keeps namespaces
        # registered (components hold them by reference), so including
        # them would make snapshot -> restore -> snapshot non-idempotent
        # — a cleared store and a fresh restore target would disagree.
        return {
            "format": SNAPSHOT_FORMAT,
            "kind": "memory",
            "namespaces": {
                name: table.dump()
                for name, table in self._namespaces.items()
                if len(table)
            },
        }

    def restore(self, snapshot: dict) -> None:
        from repro.state.snapshot import check_snapshot

        check_snapshot(snapshot, kind="memory")
        self.clear()
        for name, entries in snapshot.get("namespaces", {}).items():
            self.namespace(name).load(entries)

    def clear(self) -> None:
        # Clear in place: components hold namespace objects by
        # reference, so dropping the tables would silently detach them.
        for table in self._namespaces.values():
            table.clear()
