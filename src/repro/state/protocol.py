"""Wire protocol of the networked admission state store.

One frame = a 4-byte big-endian unsigned length prefix followed by
that many bytes of UTF-8 JSON.  Requests and responses are single
JSON objects; there is no pipelining — each connection carries one
request/response exchange at a time, which keeps both ends a loop
over :func:`read_frame`/:func:`write_frame`.

Request shape::

    {"op": "get", "ns": "feedback", "key": "10.0.0.9", ...}

Response shape::

    {"ok": true, "epoch": 3, ...}                  # success
    {"ok": false, "error": "...", "kind": "key"}   # logical failure

``epoch`` piggybacks the server's current topology epoch on every
response so clients learn about a reshard without polling; ``kind``
maps a logical failure back to the Python exception the in-process
store would have raised (``key`` -> :class:`KeyError`, ``value`` ->
:class:`ValueError`) — logical failures are *answers*, never retried.

Addresses are strings: ``host:port`` for TCP, ``unix:/path/sock``
for AF_UNIX (see :func:`parse_address`).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "FrameTooLarge",
    "read_frame",
    "write_frame",
    "encode_frame",
    "parse_address",
    "format_address",
    "connect",
    "IDEMPOTENT_OPS",
    "NON_IDEMPOTENT_OPS",
]

#: Bumped when the frame layout or op envelope changes incompatibly.
PROTOCOL_VERSION = 1

#: Upper bound on one frame; a full-store snapshot is the largest
#: legitimate payload, and 256 MiB is far beyond any configured store.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_LENGTH = struct.Struct(">I")

#: Ops safe to retry after a lost response: re-applying them cannot
#: change the outcome the caller observes (reads, absolute writes,
#: deletes, and ``pop`` *with* a default — the caller tolerates
#: "already gone").
IDEMPOTENT_OPS = frozenset(
    {
        "ping",
        "get",
        "contains",
        "put",
        "delete",
        "pop_default",
        "setdefault",
        "move_to_end",
        "len_ns",
        "len",
        "iter_batch",
        "load_ns",
        "namespaces",
        "snapshot",
        "restore",
        "clear",
        "clear_ns",
        "topology_get",
        "topology_set",
    }
)

#: Ops whose retry could observe or cause a different outcome than the
#: lost first attempt (``pop`` without default raising KeyError on the
#: retry of a success, ``popitem`` evicting a second entry, ``mutate``
#: applying a read-modify-write twice).  The client fails these loudly.
NON_IDEMPOTENT_OPS = frozenset({"pop", "popitem", "mutate", "split_off"})


class ProtocolError(ConnectionError):
    """A malformed frame or an unparseable payload."""


class FrameTooLarge(ProtocolError):
    """A frame length prefix above :data:`MAX_FRAME_BYTES`."""


def encode_frame(message: dict[str, Any]) -> bytes:
    """One message as length-prefixed wire bytes."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameTooLarge(
            f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return _LENGTH.pack(len(payload)) + payload


def write_frame(sock: socket.socket, message: dict[str, Any]) -> int:
    """Send one message; returns the bytes written."""
    data = encode_frame(message)
    sock.sendall(data)
    return len(data)


def _read_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError(
                f"peer closed mid-frame ({count - remaining}/{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Read one message; ``None`` on a clean close between frames."""
    try:
        prefix = _read_exact(sock, _LENGTH.size)
    except ConnectionError as exc:
        if "0/" in str(exc):
            return None  # clean close at a frame boundary
        raise
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise FrameTooLarge(
            f"frame announces {length} bytes, limit {MAX_FRAME_BYTES}"
        )
    payload = _read_exact(sock, length)
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"unparseable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return message


def parse_address(address: str) -> tuple[int, Any]:
    """``host:port`` or ``unix:/path`` -> ``(family, sockaddr)``."""
    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise ValueError("unix: address needs a socket path")
        return socket.AF_UNIX, path
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"state-server address {address!r} must be host:port or "
            "unix:/path"
        )
    try:
        return socket.AF_INET, (host, int(port))
    except ValueError:
        raise ValueError(f"invalid port in state-server address {address!r}")


def format_address(family: int, sockaddr: Any) -> str:
    """The canonical string form of a bound socket address."""
    if family == socket.AF_UNIX:
        return f"unix:{sockaddr}"
    host, port = sockaddr[:2]
    return f"{host}:{port}"


def connect(address: str, timeout: float | None = None) -> socket.socket:
    """Open a connected socket to a state-server address."""
    family, sockaddr = parse_address(address)
    sock = socket.socket(family, socket.SOCK_STREAM)
    try:
        sock.settimeout(timeout)
        sock.connect(sockaddr)
        if family == socket.AF_INET:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except BaseException:
        sock.close()
        raise
    return sock
