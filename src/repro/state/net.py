"""The networked admission state store: server, client, multi-node ring.

Three layers, all speaking :mod:`repro.state.protocol` frames:

* :class:`StateServer` hosts any :class:`~repro.state.AdmissionStateStore`
  behind a threaded TCP/AF_UNIX accept loop.  One lock serializes store
  operations, so each wire op is atomic exactly like its in-process
  counterpart; every response piggybacks the server's topology epoch.
* :class:`RemoteStateStore` implements the full store/namespace surface
  over one server connection: connect/request timeouts, bounded
  exponential-backoff retries on idempotent ops, loud
  :class:`ConnectionError` on non-idempotent ones (a retried ``popitem``
  could evict a second entry — the client refuses to guess).
* :class:`MultiNodeStateStore` places keys over N servers with the same
  :class:`~repro.state.sharding.HashRing` the one-box
  :class:`~repro.state.sharded.ShardedStateStore` uses, and implements
  *live resharding*: :meth:`MultiNodeStateStore.apply_topology` asks
  each server to split its own content under the new ring server-side
  (``split_off``), ships only the moved slice to its new owners, and
  bumps the topology epoch everywhere — no worker restarts.

Consistency envelope
--------------------
A single server is linearizable per op (one lock).  Across nodes there
are no cross-key transactions — exactly the envelope admission state
needs, since every consumer keys by client IP or puzzle seed.  During a
resharding handoff a reader may briefly miss a key that is mid-flight
between nodes; no key is ever lost or left on a node where the new
ring would not find it once :meth:`apply_topology` returns.
"""

from __future__ import annotations

import dataclasses
import pathlib
import socket
import threading
import time
from typing import Any, Callable, Iterator

from repro.state import protocol
from repro.state.sharding import HashRing
from repro.state.snapshot import (
    load_snapshot,
    merge_snapshots,
    save_snapshot,
    split_snapshot,
)
from repro.state.store import (
    SNAPSHOT_FORMAT,
    AdmissionStateStore,
    InMemoryStateStore,
)

__all__ = [
    "StateServer",
    "RemoteStateStore",
    "RemoteNamespace",
    "MultiNodeStateStore",
    "MultiNodeNamespace",
    "HandoffReport",
    "MUTATORS",
]


#: Named server-side read-modify-write functions for the ``mutate`` op.
#: Applied atomically under the server lock; the client never sees the
#: intermediate value, so there is no lost-update window.
MUTATORS: dict[str, Callable[[Any, Any], Any]] = {
    "add": lambda current, arg: (0 if current is None else current) + arg,
    "max": lambda current, arg: arg if current is None else max(current, arg),
    "append": lambda current, arg: (
        [arg] if current is None else list(current) + [arg]
    ),
}


class _DropConnection(Exception):
    """Raised by a test fault hook to sever the connection mid-request."""


def _metrics_counters(registry):
    if registry is None:
        return None
    from repro.obs.registry import METRIC_CATALOG

    return {
        name: registry.counter(name, METRIC_CATALOG[name], labels=labels)
        for name, labels in (
            ("netstore_server_requests_total", ("op",)),
            ("netstore_client_requests_total", ("op",)),
            ("netstore_client_retries_total", ()),
            ("netstore_client_timeouts_total", ()),
            ("netstore_handoff_bytes_total", ()),
        )
    }


# ----------------------------------------------------------------------
# Server
# ----------------------------------------------------------------------
class StateServer:
    """Serve one :class:`AdmissionStateStore` over the wire.

    Parameters
    ----------
    store:
        The hosted backend (any store; in-memory by default).
    address:
        ``host:port`` (``:0`` picks a free port; see :attr:`address`
        for the bound one) or ``unix:/path``.
    snapshot_path:
        Optional snapshot file: restored at :meth:`start` when present,
        written at :meth:`stop` — what lets admission state survive a
        server restart.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry` for the
        ``netstore_server_requests_total`` / handoff counters.
    """

    def __init__(
        self,
        store: AdmissionStateStore | None = None,
        address: str = "127.0.0.1:0",
        *,
        snapshot_path=None,
        registry=None,
    ) -> None:
        self.store = store if store is not None else InMemoryStateStore()
        self._requested_address = address
        self.address: str | None = None
        self.snapshot_path = snapshot_path
        self._metrics = _metrics_counters(registry)
        self._lock = threading.RLock()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []
        self._conns: set[socket.socket] = set()
        self._conns_lock = threading.Lock()
        self._stopping = threading.Event()
        self._topology: dict = {"epoch": 0, "nodes": [], "replicas": 64}
        #: Test hook: ``hook(op, request)`` runs before each op and may
        #: raise ``_DropConnection`` or sleep to inject faults.
        self._fault_hook: Callable[[str, dict], None] | None = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "StateServer":
        if self._listener is not None:
            raise RuntimeError("server already started")
        if self.snapshot_path is not None:
            path = pathlib.Path(self.snapshot_path)
            if path.exists():
                self.store.restore(load_snapshot(path))
        family, sockaddr = protocol.parse_address(self._requested_address)
        listener = socket.socket(family, socket.SOCK_STREAM)
        try:
            if family == socket.AF_INET:
                listener.setsockopt(
                    socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
                )
            listener.bind(sockaddr)
            listener.listen(64)
        except BaseException:
            listener.close()
            raise
        self._listener = listener
        self.address = protocol.format_address(family, listener.getsockname())
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="state-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                # shutdown() reliably wakes a thread blocked in accept();
                # close() alone does not on Linux.
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                listener.close()
            except OSError:  # pragma: no cover - already closed
                pass
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None
        for thread in self._conn_threads:
            thread.join(timeout=5)
        self._conn_threads.clear()
        if self.snapshot_path is not None:
            with self._lock:
                save_snapshot(self.store.snapshot(), self.snapshot_path)

    def __enter__(self) -> "StateServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- accept / serve ------------------------------------------------
    def _accept_loop(self) -> None:
        listener = self._listener
        while listener is not None and not self._stopping.is_set():
            try:
                conn, _ = listener.accept()
            except OSError:
                break
            with self._conns_lock:
                self._conns.add(conn)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="state-server-conn",
                daemon=True,
            )
            self._conn_threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # AF_UNIX
        try:
            while not self._stopping.is_set():
                try:
                    request = protocol.read_frame(conn)
                except (ConnectionError, OSError):
                    break
                if request is None:
                    break
                try:
                    response = self._handle(request)
                except _DropConnection:
                    break
                except KeyError as exc:
                    response = {
                        "ok": False, "kind": "key",
                        "error": str(exc.args[0]) if exc.args else "",
                    }
                except (ValueError, TypeError) as exc:
                    response = {"ok": False, "kind": "value", "error": str(exc)}
                except Exception as exc:  # pragma: no cover - defensive
                    response = {
                        "ok": False, "kind": "internal", "error": repr(exc)
                    }
                response["epoch"] = self._topology["epoch"]
                try:
                    protocol.write_frame(conn, response)
                except (ConnectionError, OSError):
                    break
        finally:
            with self._conns_lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    # -- op dispatch ---------------------------------------------------
    def _handle(self, request: dict) -> dict:
        op = request.get("op")
        if not isinstance(op, str):
            raise ValueError(f"request needs a string op, got {op!r}")
        if self._fault_hook is not None:
            self._fault_hook(op, request)
        if self._metrics is not None:
            self._metrics["netstore_server_requests_total"].inc(op=op)
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ValueError(f"unknown state-server op {op!r}")
        with self._lock:
            return handler(request)

    def _table(self, request: dict):
        name = request.get("ns")
        if not isinstance(name, str) or not name:
            raise ValueError(f"op needs a namespace, got {name!r}")
        return self.store.namespace(name)

    def _op_ping(self, request: dict) -> dict:
        return {"ok": True, "version": protocol.PROTOCOL_VERSION}

    def _op_get(self, request: dict) -> dict:
        table = self._table(request)
        key = request["key"]
        sentinel = object()
        value = table.get(key, sentinel)
        if value is sentinel:
            return {"ok": True, "found": False}
        return {"ok": True, "found": True, "value": value}

    def _op_contains(self, request: dict) -> dict:
        return {"ok": True, "found": request["key"] in self._table(request)}

    def _op_put(self, request: dict) -> dict:
        self._table(request)[request["key"]] = request["value"]
        return {"ok": True}

    def _op_delete(self, request: dict) -> dict:
        # Remove-if-present: idempotent on the wire; the client decides
        # whether a missing key is an error (see RemoteNamespace).
        sentinel = object()
        found = self._table(request).pop(request["key"], sentinel)
        return {"ok": True, "found": found is not sentinel}

    def _op_pop(self, request: dict) -> dict:
        value = self._table(request).pop(request["key"])  # raises KeyError
        return {"ok": True, "found": True, "value": value}

    def _op_pop_default(self, request: dict) -> dict:
        value = self._table(request).pop(
            request["key"], request.get("default")
        )
        return {"ok": True, "value": value}

    def _op_setdefault(self, request: dict) -> dict:
        value = self._table(request).setdefault(
            request["key"], request.get("default")
        )
        return {"ok": True, "value": value}

    def _op_mutate(self, request: dict) -> dict:
        fn = MUTATORS.get(request.get("fn"))
        if fn is None:
            raise ValueError(
                f"unknown mutator {request.get('fn')!r}; "
                f"have {sorted(MUTATORS)}"
            )
        table = self._table(request)
        key = request["key"]
        value = fn(table.get(key, request.get("default")), request.get("arg"))
        table[key] = value
        return {"ok": True, "value": value}

    def _op_move_to_end(self, request: dict) -> dict:
        self._table(request).move_to_end(request["key"])  # raises KeyError
        return {"ok": True}

    def _op_popitem(self, request: dict) -> dict:
        key, value = self._table(request).popitem(
            last=bool(request.get("last", True))
        )
        return {"ok": True, "key": key, "value": value}

    def _op_len_ns(self, request: dict) -> dict:
        return {"ok": True, "value": len(self._table(request))}

    def _op_len(self, request: dict) -> dict:
        total = sum(
            len(self.store.namespace(name))
            for name in self.store.namespaces()
        )
        return {"ok": True, "value": total}

    def _op_iter_batch(self, request: dict) -> dict:
        # Index pagination over a stable-order table.  Concurrent
        # mutation between batches can skip or repeat entries — same
        # caveat as iterating any dict you are mutating, documented in
        # DESIGN §1.9; admission consumers only iterate tables they own.
        table = self._table(request)
        start = int(request.get("start", 0))
        count = max(1, int(request.get("count", 128)))
        items = []
        for index, (key, value) in enumerate(table.items()):
            if index < start:
                continue
            if len(items) >= count:
                return {"ok": True, "items": items, "done": False}
            items.append([key, value])
        return {"ok": True, "items": items, "done": True}

    def _op_load_ns(self, request: dict) -> dict:
        self._table(request).load(request.get("entries", []))
        return {"ok": True}

    def _op_clear_ns(self, request: dict) -> dict:
        self._table(request).clear()
        return {"ok": True}

    def _op_namespaces(self, request: dict) -> dict:
        return {"ok": True, "names": list(self.store.namespaces())}

    def _op_snapshot(self, request: dict) -> dict:
        return {"ok": True, "snapshot": self.store.snapshot()}

    def _op_restore(self, request: dict) -> dict:
        snapshot = request["snapshot"]
        if request.get("merge"):
            # Merge-restore: overlay entries without dropping existing
            # content — the receiving end of a resharding handoff.
            from repro.state.snapshot import check_snapshot

            check_snapshot(snapshot, kind="memory")
            for name, entries in snapshot.get("namespaces", {}).items():
                table = self.store.namespace(name)
                for key, value in entries:
                    table[str(key)] = value
        else:
            self.store.restore(snapshot)
        return {"ok": True}

    def _op_clear(self, request: dict) -> dict:
        self.store.clear()
        return {"ok": True}

    # -- topology ------------------------------------------------------
    def _op_topology_get(self, request: dict) -> dict:
        return {"ok": True, "topology": dict(self._topology)}

    def _op_topology_set(self, request: dict) -> dict:
        topology = request["topology"]
        if not isinstance(topology, dict) or "epoch" not in topology:
            raise ValueError("topology must be a dict with an epoch")
        if int(topology["epoch"]) < int(self._topology["epoch"]):
            raise ValueError(
                f"topology epoch {topology['epoch']} is older than "
                f"current {self._topology['epoch']}"
            )
        self._topology = {
            "epoch": int(topology["epoch"]),
            "nodes": list(topology.get("nodes", [])),
            "replicas": int(topology.get("replicas", 64)),
        }
        return {"ok": True}

    def _op_split_off(self, request: dict) -> dict:
        """Split this node's content under a new ring, keep own slice.

        ``keep`` is this node's index in the *new* topology (or -1 when
        the node is being decommissioned).  Returns every other part;
        only the moved slice ever crosses the wire.
        """
        shards = int(request["shards"])
        replicas = int(request.get("replicas", 64))
        keep = int(request.get("keep", -1))
        snapshot = self.store.snapshot()
        parts = split_snapshot(snapshot, shards, replicas=replicas)
        if 0 <= keep < shards:
            self.store.restore(parts[keep])
            parts[keep] = None
        else:
            self.store.restore(
                {"format": SNAPSHOT_FORMAT, "kind": "memory", "namespaces": {}}
            )
        moved = sum(
            len(entries)
            for part in parts
            if part is not None
            for entries in part.get("namespaces", {}).values()
        )
        return {"ok": True, "parts": parts, "moved": moved}


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
class RemoteNamespace:
    """Client-side :class:`~repro.state.StateNamespace` twin.

    Every operation is one request (aggregate iteration batches);
    iteration order is the server table's insertion order, matching the
    in-memory namespace exactly.
    """

    __slots__ = ("name", "_store")

    def __init__(self, name: str, store: "RemoteStateStore") -> None:
        self.name = name
        self._store = store

    def _request(self, op: str, **fields) -> tuple[dict, int]:
        return self._store._request(op, ns=self.name, **fields)

    # -- mapping surface ----------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        response, _ = self._request("get", key=key)
        return response["value"] if response["found"] else default

    def __getitem__(self, key: str) -> Any:
        response, _ = self._request("get", key=key)
        if not response["found"]:
            raise KeyError(key)
        return response["value"]

    def __setitem__(self, key: str, value: Any) -> None:
        self._request("put", key=key, value=value)

    def __delitem__(self, key: str) -> None:
        response, attempts = self._request("delete", key=key)
        # found=False on a retried delete usually means the lost first
        # attempt applied; only a clean first answer is a real miss.
        if not response["found"] and attempts == 1:
            raise KeyError(key)

    def __contains__(self, key: str) -> bool:
        response, _ = self._request("contains", key=key)
        return response["found"]

    def __len__(self) -> int:
        response, _ = self._request("len_ns")
        return int(response["value"])

    def __iter__(self) -> Iterator[str]:
        for key, _ in self.items():
            yield key

    def keys(self):
        return iter(self)

    def items(self) -> Iterator[tuple[str, Any]]:
        start = 0
        while True:
            response, _ = self._request(
                "iter_batch", start=start, count=self._store.batch_size
            )
            for key, value in response["items"]:
                yield key, value
            if response["done"]:
                return
            start += len(response["items"])

    def pop(self, key: str, *default: Any) -> Any:
        if default:
            response, _ = self._request(
                "pop_default", key=key, default=default[0]
            )
            return response["value"]
        response, _ = self._request("pop", key=key)
        return response["value"]

    def setdefault(self, key: str, default: Any) -> Any:
        response, _ = self._request("setdefault", key=key, default=default)
        return response["value"]

    def clear(self) -> None:
        self._request("clear_ns")

    # -- LRU primitives -----------------------------------------------
    def move_to_end(self, key: str) -> None:
        self._request("move_to_end", key=key)

    def popitem(self, last: bool = True) -> tuple[str, Any]:
        response, _ = self._request("popitem", last=last)
        return response["key"], response["value"]

    # -- snapshot plumbing --------------------------------------------
    def dump(self) -> list[list[Any]]:
        return [[key, value] for key, value in self.items()]

    def load(self, entries) -> None:
        self._request(
            "load_ns", entries=[[str(key), value] for key, value in entries]
        )


class RemoteStateStore(AdmissionStateStore):
    """The full store surface over one state-server connection.

    Connection management: lazily connected, auto-reconnecting, one
    in-flight request at a time (a lock serializes callers — the
    gateway worker's event loop is single-threaded anyway).

    Retry policy: transport failures (refused/reset/timeout) on
    *idempotent* ops are retried with bounded exponential backoff;
    non-idempotent ops (``pop`` without default, ``popitem``,
    ``mutate``) raise :class:`ConnectionError` immediately, because a
    blind retry could apply them twice.  Logical errors from the server
    (missing key, bad value) are answers, never retried.
    """

    def __init__(
        self,
        address: str,
        *,
        connect_timeout: float = 5.0,
        request_timeout: float = 10.0,
        retries: int = 4,
        retry_base: float = 0.05,
        retry_cap: float = 1.0,
        batch_size: int = 128,
        registry=None,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.address = address
        protocol.parse_address(address)  # validate eagerly
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.retries = retries
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self.batch_size = batch_size
        self._metrics = _metrics_counters(registry)
        self._lock = threading.RLock()
        self._sock: socket.socket | None = None
        self._namespaces: dict[str, RemoteNamespace] = {}
        self.epoch: int | None = None
        self._epoch_listeners: list[Callable[[int], None]] = []

    # -- connection management ----------------------------------------
    def _connected(self) -> socket.socket:
        if self._sock is None:
            self._sock = protocol.connect(
                self.address, timeout=self.connect_timeout
            )
            self._sock.settimeout(self.request_timeout)
        return self._sock

    def _disconnect(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def close(self) -> None:
        with self._lock:
            self._disconnect()

    def __enter__(self) -> "RemoteStateStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def subscribe_epoch_changes(
        self, listener: Callable[[int], None]
    ) -> None:
        """Call ``listener(epoch)`` when the server's topology moves."""
        self._epoch_listeners.append(listener)

    # -- request engine -----------------------------------------------
    def _request(self, op: str, **fields) -> tuple[dict, int]:
        """One op on the wire; returns ``(response, attempts)``."""
        retryable = op in protocol.IDEMPOTENT_OPS
        message = {"op": op, **fields}
        attempts = 0
        last_error: Exception | None = None
        while True:
            attempts += 1
            if self._metrics is not None:
                self._metrics["netstore_client_requests_total"].inc(op=op)
            try:
                with self._lock:
                    sock = self._connected()
                    protocol.write_frame(sock, message)
                    response = protocol.read_frame(sock)
                if response is None:
                    raise ConnectionError("server closed the connection")
            except protocol.ProtocolError:
                self._disconnect()
                raise
            except (ConnectionError, OSError) as exc:
                self._disconnect()
                if isinstance(exc, (socket.timeout, TimeoutError)):
                    if self._metrics is not None:
                        self._metrics["netstore_client_timeouts_total"].inc()
                if not retryable:
                    raise ConnectionError(
                        f"state op {op!r} failed mid-flight and is not "
                        f"idempotent — it may or may not have applied on "
                        f"{self.address}: {exc}"
                    ) from exc
                last_error = exc
                if attempts > self.retries:
                    raise ConnectionError(
                        f"state op {op!r} failed after {attempts} attempts "
                        f"against {self.address}: {last_error}"
                    ) from last_error
                if self._metrics is not None:
                    self._metrics["netstore_client_retries_total"].inc()
                delay = min(
                    self.retry_cap, self.retry_base * (2 ** (attempts - 1))
                )
                time.sleep(delay)
                continue
            self._note_epoch(response.get("epoch"))
            if not response.get("ok"):
                kind = response.get("kind")
                error = response.get("error", "")
                if kind == "key":
                    raise KeyError(error)
                if kind == "value":
                    raise ValueError(error)
                raise RuntimeError(
                    f"state server error on {op!r}: {error}"
                )
            return response, attempts

    def _note_epoch(self, epoch) -> None:
        if epoch is None:
            return
        epoch = int(epoch)
        if self.epoch is not None and epoch != self.epoch:
            self.epoch = epoch
            for listener in self._epoch_listeners:
                listener(epoch)
        else:
            self.epoch = epoch

    # -- store surface -------------------------------------------------
    def ping(self) -> bool:
        self._request("ping")
        return True

    def namespace(self, name: str) -> RemoteNamespace:
        table = self._namespaces.get(name)
        if table is None:
            table = self._namespaces[name] = RemoteNamespace(name, self)
        return table

    def namespaces(self) -> tuple[str, ...]:
        response, _ = self._request("namespaces")
        return tuple(response["names"])

    def __len__(self) -> int:
        response, _ = self._request("len")
        return int(response["value"])

    def snapshot(self) -> dict:
        response, _ = self._request("snapshot")
        return response["snapshot"]

    def restore(self, snapshot: dict) -> None:
        self._request("restore", snapshot=snapshot)

    def restore_merge(self, snapshot: dict) -> None:
        """Overlay ``snapshot`` without dropping existing content."""
        self._request("restore", snapshot=snapshot, merge=True)

    def clear(self) -> None:
        self._request("clear")

    # -- protocol extras ----------------------------------------------
    def mutate_remote(
        self, namespace: str, key: str, fn: str, arg: Any, default: Any = None
    ) -> Any:
        """Apply a named server-side mutator atomically (see MUTATORS)."""
        response, _ = self._request(
            "mutate", ns=namespace, key=key, fn=fn, arg=arg, default=default
        )
        return response["value"]

    def topology(self) -> dict:
        response, _ = self._request("topology_get")
        return response["topology"]

    def set_topology(self, topology: dict) -> None:
        self._request("topology_set", topology=topology)

    def split_off(
        self, shards: int, replicas: int, keep: int
    ) -> tuple[list[dict | None], int]:
        """Server-side reshard split; returns ``(parts, moved_entries)``."""
        response, _ = self._request(
            "split_off", shards=shards, replicas=replicas, keep=keep
        )
        return response["parts"], int(response["moved"])


# ----------------------------------------------------------------------
# Multi-node placement + live resharding
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True, slots=True)
class HandoffReport:
    """What a topology change actually moved."""

    epoch: int
    nodes: tuple[str, ...]
    moved_entries: int
    moved_bytes: int
    per_node: tuple[tuple[str, int], ...]

    def summary(self) -> str:
        return (
            f"epoch {self.epoch}: {len(self.nodes)} nodes, "
            f"{self.moved_entries} entries / {self.moved_bytes} bytes moved"
        )


class MultiNodeNamespace:
    """Namespace view placing each key on its ring-owning node.

    Unlike the one-box :class:`~repro.state.sharded.ShardedNamespace`,
    tables are resolved through the parent store *per call*, so a live
    topology change redirects the very next operation — no rebinding.
    Aggregate semantics match the sharded store: ``len``/iteration span
    nodes in node order; ``popitem`` evicts from the fullest node.
    """

    __slots__ = ("name", "_store")

    def __init__(self, name: str, store: "MultiNodeStateStore") -> None:
        self.name = name
        self._store = store

    def _table(self, key: str) -> RemoteNamespace:
        return self._store.node_for(key).namespace(self.name)

    def _tables(self) -> list[RemoteNamespace]:
        return [node.namespace(self.name) for node in self._store.nodes]

    # -- keyed operations ----------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        return self._table(key).get(key, default)

    def __getitem__(self, key: str) -> Any:
        return self._table(key)[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self._table(key)[key] = value

    def __delitem__(self, key: str) -> None:
        del self._table(key)[key]

    def __contains__(self, key: str) -> bool:
        return key in self._table(key)

    def pop(self, key: str, *default: Any) -> Any:
        return self._table(key).pop(key, *default)

    def setdefault(self, key: str, default: Any) -> Any:
        return self._table(key).setdefault(key, default)

    def move_to_end(self, key: str) -> None:
        self._table(key).move_to_end(key)

    # -- aggregate operations ------------------------------------------
    def __len__(self) -> int:
        return sum(len(table) for table in self._tables())

    def __iter__(self) -> Iterator[str]:
        for table in self._tables():
            yield from table

    def keys(self):
        return iter(self)

    def items(self):
        for table in self._tables():
            yield from table.items()

    def clear(self) -> None:
        for table in self._tables():
            table.clear()

    def popitem(self, last: bool = True) -> tuple[str, Any]:
        sized = [
            (len(table), table) for table in self._tables()
        ]
        sized = [(count, table) for count, table in sized if count]
        if not sized:
            raise KeyError("popitem(): namespace is empty")
        _, victim = max(sized, key=lambda pair: pair[0])
        return victim.popitem(last=last)

    # -- snapshot plumbing ---------------------------------------------
    def dump(self) -> list[list[Any]]:
        return [[key, value] for key, value in self.items()]

    def load(self, entries) -> None:
        parts: dict[int, list] = {}
        for key, value in entries:
            parts.setdefault(
                self._store.ring.shard_for(str(key)), []
            ).append([str(key), value])
        for index, node in enumerate(self._store.nodes):
            node.namespace(self.name).load(parts.get(index, []))


class MultiNodeStateStore(AdmissionStateStore):
    """Places every namespace over N state servers by consistent hash.

    The distributed twin of the one-box
    :class:`~repro.state.sharded.ShardedStateStore`: same ring, same
    per-key parity, same aggregate caveats — with nodes that survive
    the process and a :meth:`apply_topology` that reshards them live.
    """

    def __init__(
        self,
        nodes: list[str] | list[RemoteStateStore],
        replicas: int = 64,
        *,
        registry=None,
        client_options: dict | None = None,
    ) -> None:
        if not nodes:
            raise ValueError("need at least one state-server node")
        options = dict(client_options or {})
        options.setdefault("registry", registry)
        self._client_options = options
        self._registry = registry
        self.nodes: list[RemoteStateStore] = [
            node
            if isinstance(node, RemoteStateStore)
            else RemoteStateStore(node, **options)
            for node in nodes
        ]
        self.ring = HashRing(len(self.nodes), replicas=replicas)
        self._namespaces: dict[str, MultiNodeNamespace] = {}
        self._metrics = _metrics_counters(registry)

    # -- placement -----------------------------------------------------
    @property
    def addresses(self) -> tuple[str, ...]:
        return tuple(node.address for node in self.nodes)

    def node_for(self, key: str) -> RemoteStateStore:
        return self.nodes[self.ring.shard_for(key)]

    def close(self) -> None:
        for node in self.nodes:
            node.close()

    def __enter__(self) -> "MultiNodeStateStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- store surface -------------------------------------------------
    def namespace(self, name: str) -> MultiNodeNamespace:
        table = self._namespaces.get(name)
        if table is None:
            table = self._namespaces[name] = MultiNodeNamespace(name, self)
        return table

    def namespaces(self) -> tuple[str, ...]:
        names: dict[str, None] = {}
        for node in self.nodes:
            for name in node.namespaces():
                names.setdefault(name)
        return tuple(names)

    def __len__(self) -> int:
        return sum(len(node) for node in self.nodes)

    def snapshot(self) -> dict:
        return merge_snapshots(node.snapshot() for node in self.nodes)

    def restore(self, snapshot: dict) -> None:
        parts = split_snapshot(
            snapshot, len(self.nodes), replicas=self.ring.replicas
        )
        for node, part in zip(self.nodes, parts):
            node.restore(part)

    def clear(self) -> None:
        for node in self.nodes:
            node.clear()

    # -- live resharding -----------------------------------------------
    def apply_topology(self, addresses: list[str]) -> HandoffReport:
        """Reshard live onto ``addresses`` — no restarts, minimal moves.

        Handoff sequence (DESIGN §1.9):

        1. every *current* node splits its own content under the new
           ring server-side (``split_off``), keeps the slice it still
           owns, and returns only the moved slices;
        2. moved slices are merge-restored into their new owners;
        3. the new topology document (epoch+1) is pushed to every node
           involved — including decommissioned ones, so clients that
           still talk to them learn the new layout from the epoch
           piggyback on their next response.

        Appending/removing nodes at the end of the list moves only the
        ring-delta keyspace (~1/(n+1) of it), the consistent-hash
        property the one-box store was built to preserve.
        """
        if not addresses:
            raise ValueError("topology needs at least one node")
        new_addresses = list(addresses)
        if len(set(new_addresses)) != len(new_addresses):
            raise ValueError(
                f"topology has duplicate addresses: {new_addresses}"
            )
        old_nodes = list(self.nodes)
        old_addresses = [node.address for node in old_nodes]
        replicas = self.ring.replicas
        epoch = max(
            (node.epoch or 0 for node in old_nodes), default=0
        ) + 1

        by_address = {node.address: node for node in old_nodes}
        # Explicit None checks: RemoteStateStore defines __len__, so a
        # truthiness test would round-trip to the server (and treat an
        # empty store as absent).
        new_nodes = [
            by_address[address]
            if address in by_address
            else RemoteStateStore(address, **self._client_options)
            for address in new_addresses
        ]
        new_index = {address: i for i, address in enumerate(new_addresses)}

        moved_entries = 0
        moved_bytes = 0
        per_node: dict[str, int] = {}
        pending: list[list] = [[] for _ in new_addresses]
        for node in old_nodes:
            keep = new_index.get(node.address, -1)
            parts, moved = node.split_off(
                len(new_addresses), replicas=replicas, keep=keep
            )
            moved_entries += moved
            per_node[node.address] = moved
            for index, part in enumerate(parts):
                if part is None or index == keep:
                    continue
                if not part.get("namespaces"):
                    continue
                moved_bytes += len(protocol.encode_frame(part))
                pending[index].append(part)
        for index, parts in enumerate(pending):
            for part in parts:
                new_nodes[index].restore_merge(part)

        if self._metrics is not None:
            self._metrics["netstore_handoff_bytes_total"].inc(moved_bytes)

        topology = {
            "epoch": epoch, "nodes": new_addresses, "replicas": replicas
        }
        for address in dict.fromkeys(old_addresses + new_addresses):
            node = by_address.get(address)
            if node is None:
                node = new_nodes[new_index[address]]
            node.set_topology(topology)

        self.nodes = new_nodes
        self.ring = HashRing(len(new_nodes), replicas=replicas)
        for node in old_nodes:
            if node.address not in new_index:
                node.close()
        return HandoffReport(
            epoch=epoch,
            nodes=tuple(new_addresses),
            moved_entries=moved_entries,
            moved_bytes=moved_bytes,
            per_node=tuple(sorted(per_node.items())),
        )
