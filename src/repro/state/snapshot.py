"""Snapshot documents: persistence and resharding for admission state.

A snapshot is the JSON-safe dict a store's ``snapshot()`` returns.
This module adds the file and topology plumbing around it:

* :func:`save_snapshot` / :func:`load_snapshot` — one snapshot, one
  auditable JSON file (no pickle, same policy as model persistence);
* :func:`merge_snapshots` — N per-shard memory snapshots → one memory
  snapshot (``repro state snapshot`` collapses a state directory);
* :func:`split_snapshot` — one memory snapshot → N per-shard memory
  snapshots routed by the consistent-hash ring (``repro state
  restore`` retargets a snapshot at any worker count, which is also
  the offline resharding path);
* :func:`write_shard_files` / :func:`read_shard_files` — the
  ``shard-I-of-N.json`` layout a gateway cluster's state directory
  uses.  Each file records its topology so a worker never loads a
  shard that was split for a different worker count.
"""

from __future__ import annotations

import json
import pathlib

from repro.state.sharding import shard_for

__all__ = [
    "check_snapshot",
    "save_snapshot",
    "load_snapshot",
    "merge_snapshots",
    "split_snapshot",
    "shard_file_name",
    "state_dir_topology",
    "write_shard_file",
    "write_shard_files",
    "read_shard_file",
    "read_shard_files",
]

_FORMAT = 1


def check_snapshot(snapshot: dict, kind: str | None = None) -> dict:
    """Validate a snapshot document's envelope; returns it unchanged."""
    if not isinstance(snapshot, dict):
        raise ValueError("state snapshot must be a JSON object")
    if snapshot.get("format") != _FORMAT:
        raise ValueError(
            f"unsupported state snapshot format {snapshot.get('format')!r}"
        )
    if kind is not None and snapshot.get("kind") != kind:
        raise ValueError(
            f"expected a {kind!r} snapshot, got {snapshot.get('kind')!r}"
        )
    return snapshot


def save_snapshot(snapshot: dict, path) -> None:
    """Write ``snapshot`` to ``path`` as indented, diff-reviewable JSON."""
    pathlib.Path(path).write_text(
        json.dumps(snapshot, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )


def load_snapshot(path) -> dict:
    """Read a snapshot written by :func:`save_snapshot`."""
    try:
        document = json.loads(
            pathlib.Path(path).read_text(encoding="utf-8")
        )
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid state snapshot JSON in {path}: {exc}")
    return check_snapshot(document)


def merge_snapshots(snapshots) -> dict:
    """Merge per-shard memory snapshots into one memory snapshot.

    Client-keyed entries are disjoint across shards by construction
    (each key lives on exactly one shard), so merging is mostly
    concatenation; entry order is shard order, then insertion order
    within the shard.  Keys that *can* repeat — per-worker singletons
    like the adaptive policy's ``load`` — keep the last shard's value,
    matching what restoring the merged document would produce.
    """
    namespaces: dict[str, dict] = {}
    for snapshot in snapshots:
        check_snapshot(snapshot, kind="memory")
        for name, entries in snapshot.get("namespaces", {}).items():
            table = namespaces.setdefault(name, {})
            for key, value in entries:
                table.pop(key, None)  # repeated key: last wins, re-ordered
                table[key] = value
    return {
        "format": _FORMAT,
        "kind": "memory",
        "namespaces": {
            name: [[key, value] for key, value in table.items()]
            for name, table in namespaces.items()
        },
    }


def _routing_key(namespace: str, key: str, value) -> str:
    """The shard-affinity key of one entry.

    Most namespaces are keyed by client IP, which *is* the affinity
    key.  The ``replay`` namespace is keyed by puzzle seed but lives
    on the shard serving the redeeming client, so its entries carry
    the owner IP in the value (``[redeemed_at, owner_ip]``) and route
    by that — otherwise resharding would strand redeemed seeds on the
    wrong worker and reopen them.
    """
    if namespace == "replay" and isinstance(value, (list, tuple)):
        if len(value) >= 2 and value[1]:
            return str(value[1])
    return key


def split_snapshot(snapshot: dict, shards: int, replicas: int = 64) -> list[dict]:
    """Split a memory snapshot into ``shards`` ring-routed snapshots.

    Entries route by their *shard-affinity* key (see
    :func:`_routing_key`) with the same ring the gateway cluster and
    :class:`~repro.state.sharded.ShardedStateStore` use, so a restored
    worker finds exactly the state it would have written.
    """
    check_snapshot(snapshot, kind="memory")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    parts: list[dict] = [
        {"format": _FORMAT, "kind": "memory", "namespaces": {}}
        for _ in range(shards)
    ]
    for name, entries in snapshot.get("namespaces", {}).items():
        for key, value in entries:
            route = _routing_key(name, str(key), value)
            owner = shard_for(route, shards, replicas)
            parts[owner]["namespaces"].setdefault(name, []).append(
                [key, value]
            )
    return parts


def shard_file_name(shard: int, shards: int) -> str:
    """The on-disk name of one shard's snapshot in a state directory."""
    return f"shard-{shard}-of-{shards}.json"


def state_dir_topology(state_dir) -> int | None:
    """The worker count a state directory's shard files were split for.

    Returns ``None`` for an empty/missing directory (cold start) and
    raises when the directory mixes topologies.
    """
    directory = pathlib.Path(state_dir)
    if not directory.is_dir():
        return None
    counts = set()
    for path in directory.glob("shard-*-of-*.json"):
        try:
            counts.add(int(path.stem.rsplit("-", 1)[-1]))
        except ValueError:
            continue
    if not counts:
        return None
    if len(counts) != 1:
        raise ValueError(
            f"{directory} mixes shard topologies {sorted(counts)}; "
            "re-split with `repro state restore`"
        )
    return counts.pop()


def _check_shard_file_replicas(document: dict, replicas: int, path) -> None:
    """Fail loudly when a shard file was split with a different ring.

    Files written before ``replicas`` was recorded are treated as the
    historical default (64) — the only ring shape that ever produced
    them.
    """
    recorded = int(document.get("replicas", 64))
    if recorded != replicas:
        raise ValueError(
            f"{path} was split with replicas={recorded}, need "
            f"replicas={replicas}; re-split with `repro state restore`"
        )


def write_shard_file(
    state_dir, shard: int, shards: int, snapshot: dict, replicas: int = 64
) -> pathlib.Path:
    """Write one shard's memory snapshot into ``state_dir``.

    This is what a gateway worker calls at graceful shutdown — each
    worker persists only the shard it owns.  Shard files left over
    from a *different* topology are removed (tolerating sibling
    workers racing the same cleanup) so the directory always describes
    exactly one worker count.
    """
    check_snapshot(snapshot, kind="memory")
    directory = pathlib.Path(state_dir)
    directory.mkdir(parents=True, exist_ok=True)
    for stale in directory.glob("shard-*-of-*.json"):
        if not stale.name.endswith(f"-of-{shards}.json"):
            try:
                stale.unlink()
            except FileNotFoundError:  # pragma: no cover - sibling won
                pass
    path = directory / shard_file_name(shard, shards)
    save_snapshot(
        {
            "format": _FORMAT,
            "kind": "shard-file",
            "shard": shard,
            "shards": shards,
            "replicas": replicas,
            "state": snapshot,
        },
        path,
    )
    return path


def write_shard_files(state_dir, snapshots, replicas: int = 64) -> list[pathlib.Path]:
    """Write per-shard memory snapshots into ``state_dir``.

    Stale shard files from a *different* topology are removed so a
    directory always describes exactly one worker count.
    """
    directory = pathlib.Path(state_dir)
    snapshots = list(snapshots)
    shards = len(snapshots)
    return [
        write_shard_file(directory, index, shards, snapshot, replicas=replicas)
        for index, snapshot in enumerate(snapshots)
    ]


def read_shard_file(
    state_dir, shard: int, shards: int, replicas: int = 64
) -> dict | None:
    """One shard's memory snapshot from ``state_dir``, or None if cold.

    The directory must have been split for this worker count; a
    directory holding a *different* topology is an error, not a silent
    cold start — silently discarding a warmed reputation table is the
    one thing a state directory exists to prevent.  Re-split with
    ``repro state restore --workers N``.
    """
    topology = state_dir_topology(state_dir)
    if topology is not None and topology != shards:
        raise ValueError(
            f"{state_dir} holds state split for {topology} workers, "
            f"need {shards}; re-split with `repro state restore "
            f"--workers {shards}`"
        )
    path = pathlib.Path(state_dir) / shard_file_name(shard, shards)
    if not path.exists():
        return None
    document = json.loads(path.read_text(encoding="utf-8"))
    check_snapshot(document, kind="shard-file")
    if int(document["shard"]) != shard or int(document["shards"]) != shards:
        raise ValueError(
            f"{path} holds shard {document['shard']} of "
            f"{document['shards']}, expected {shard} of {shards}"
        )
    _check_shard_file_replicas(document, replicas, path)
    return check_snapshot(document["state"], kind="memory")


def read_shard_files(
    state_dir, shards: int | None = None, replicas: int | None = None
) -> list[dict]:
    """Read a state directory back into per-shard memory snapshots.

    Returns an empty list when the directory has no shard files (a
    cold start).  When ``shards`` is given, the directory's topology
    must match it — a worker never loads state split for a different
    worker count.
    """
    directory = pathlib.Path(state_dir)
    if not directory.is_dir():
        return []
    found = sorted(directory.glob("shard-*-of-*.json"))
    if not found:
        return []
    documents = []
    for path in found:
        document = json.loads(path.read_text(encoding="utf-8"))
        check_snapshot(document, kind="shard-file")
        documents.append(document)
    counts = {document["shards"] for document in documents}
    if len(counts) != 1:
        raise ValueError(
            f"{directory} mixes shard topologies {sorted(counts)}; "
            "re-split with `repro state restore`"
        )
    total = counts.pop()
    if shards is not None and total != shards:
        raise ValueError(
            f"{directory} holds state for {total} shards, need {shards}; "
            "re-split with `repro state restore`"
        )
    if len(documents) != total:
        raise ValueError(
            f"{directory} has {len(documents)} shard files for a "
            f"{total}-shard topology"
        )
    ordered: list[dict] = [dict()] * total
    for document, path in zip(documents, found):
        if replicas is not None:
            _check_shard_file_replicas(document, replicas, path)
        index = int(document["shard"])
        if not 0 <= index < total:
            raise ValueError(f"shard index {index} out of range 0..{total - 1}")
        ordered[index] = check_snapshot(document["state"], kind="memory")
    return ordered
