"""Streaming summary statistics (Welford's algorithm).

The simulator and live server record many thousands of latencies; a
:class:`StreamingStats` accumulates count/mean/variance/extremes in O(1)
per observation without retaining samples.  When exact quantiles are
needed (Figure 2 reports *medians*), use
:class:`~repro.metrics.histogram.SampleSet` instead.
"""

from __future__ import annotations

import math

__all__ = ["StreamingStats"]


class StreamingStats:
    """Numerically stable running mean/variance/min/max."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"observations must be finite, got {value!r}")
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values) -> None:
        """Record many observations."""
        for value in values:
            self.add(value)

    def add_array(self, values) -> "StreamingStats":
        """Fold a numpy array of observations in one vectorised step.

        Summarises the array (count/mean/M2/extremes via numpy) and
        merges it with the parallel-merge formula — numerically the
        same accumulator :meth:`add` would build, at array speed.
        Returns self.
        """
        import numpy as np

        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return self
        if not np.isfinite(values).all():
            raise ValueError("observations must be finite")
        block = StreamingStats()
        block._count = int(values.size)
        block._mean = float(values.mean())
        block._m2 = float(((values - block._mean) ** 2).sum())
        block._min = float(values.min())
        block._max = float(values.max())
        return self.merge(block)

    def merge(self, other: "StreamingStats") -> "StreamingStats":
        """Combine two accumulators (parallel-merge formula); returns self."""
        if other._count == 0:
            return self
        if self._count == 0:
            self._count = other._count
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            return self
        total = self._count + other._count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self._count * other._count / total
        self._mean += delta * other._count / total
        self._count = total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        """Mean of observations; 0.0 when empty."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Population variance; 0.0 with fewer than two observations."""
        return self._m2 / self._count if self._count >= 2 else 0.0

    @property
    def sample_variance(self) -> float:
        """Bessel-corrected variance; 0.0 with fewer than two observations."""
        return self._m2 / (self._count - 1) if self._count >= 2 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        """Smallest observation; +inf when empty."""
        return self._min

    @property
    def max(self) -> float:
        """Largest observation; -inf when empty."""
        return self._max

    def __repr__(self) -> str:
        return (
            f"StreamingStats(count={self._count}, mean={self.mean:.6g}, "
            f"stdev={self.stdev:.6g})"
        )
