"""Metrics collection from framework events.

:class:`MetricsCollector` subscribes to a framework's
:class:`~repro.core.events.EventBus` and accumulates per-outcome and
per-class measurements: latency sample sets, difficulty distribution,
score distribution, and outcome counters.  A *classifier* callable maps
each response to a breakdown key (e.g. profile name, "benign"/"attack"),
enabling the throttling experiment's per-class latency comparison.

:class:`GatewayMetrics` covers the serving tier the collector cannot
see: admission-queue depth, the batch-size distribution the
micro-batcher actually achieved, and shed counters broken down by
reason — fed directly by the gateway plus ``REQUEST_SHED`` events off
the same bus.

Multi-worker serving adds one wrinkle: each gateway worker process
owns a private :class:`GatewayMetrics`, so cluster totals must be
assembled from per-worker summaries shipped over the control channel.
:meth:`GatewayMetrics.summary` reduces one worker to a JSON-safe dict
and :func:`aggregate_gateway_summaries` folds any number of those into
cluster totals (counter sums, flush-weighted mean batch size, max of
max queue depths).
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.core.events import EventBus, EventKind, FrameworkEvent
from repro.core.records import ResponseStatus, ServedResponse
from repro.metrics.histogram import SampleSet
from repro.metrics.stats import StreamingStats

__all__ = [
    "MetricsCollector",
    "ClassMetrics",
    "GatewayMetrics",
    "aggregate_gateway_summaries",
]

Classifier = Callable[[ServedResponse], str]


class ClassMetrics:
    """Accumulated measurements for one breakdown class."""

    def __init__(self) -> None:
        self.latencies = SampleSet()
        self.served_latencies = SampleSet()
        self.scores = StreamingStats()
        self.difficulties = StreamingStats()
        self.attempts = StreamingStats()
        self.outcomes: dict[ResponseStatus, int] = {
            status: 0 for status in ResponseStatus
        }

    @property
    def total(self) -> int:
        return sum(self.outcomes.values())

    @property
    def served(self) -> int:
        return self.outcomes[ResponseStatus.SERVED]

    @property
    def goodput_fraction(self) -> float:
        """Fraction of requests that ended in a served resource."""
        total = self.total
        return self.served / total if total else 0.0

    def observe(self, response: ServedResponse) -> None:
        """Fold one response into the accumulators."""
        self.outcomes[response.status] += 1
        self.latencies.add(response.latency)
        if response.served:
            self.served_latencies.add(response.latency)
        self.scores.add(response.decision.reputation_score)
        self.difficulties.add(response.decision.difficulty)
        self.attempts.add(response.solve_attempts)


class MetricsCollector:
    """Collects responses, optionally broken down by a classifier.

    Use either as an event subscriber (``collector.attach(bus)``) or by
    calling :meth:`observe` directly from simulator code.
    """

    #: Key under which unclassified traffic accumulates.
    OVERALL = "overall"

    def __init__(self, classifier: Classifier | None = None) -> None:
        self._classifier = classifier
        self._classes: dict[str, ClassMetrics] = {}

    def attach(self, bus: EventBus) -> "MetricsCollector":
        """Subscribe to RESPONSE_SERVED events on ``bus``; returns self."""
        bus.subscribe(self._on_event, kinds=[EventKind.RESPONSE_SERVED])
        return self

    def _on_event(self, event: FrameworkEvent) -> None:
        response = event.payload.get("response")
        if isinstance(response, ServedResponse):
            self.observe(response)

    def observe(self, response: ServedResponse) -> None:
        """Fold ``response`` into the overall and per-class metrics."""
        self._class(self.OVERALL).observe(response)
        if self._classifier is not None:
            self._class(self._classifier(response)).observe(response)

    def _class(self, key: str) -> ClassMetrics:
        if key not in self._classes:
            self._classes[key] = ClassMetrics()
        return self._classes[key]

    @property
    def overall(self) -> ClassMetrics:
        """Metrics across all traffic."""
        return self._class(self.OVERALL)

    def class_names(self) -> tuple[str, ...]:
        """Breakdown keys seen so far (excluding the overall bucket)."""
        return tuple(
            sorted(k for k in self._classes if k != self.OVERALL)
        )

    def for_class(self, key: str) -> ClassMetrics:
        """Metrics for one breakdown class; empty metrics if unseen."""
        return self._class(key)


#: Bucket bounds for the gateway's size/depth distributions — powers of
#: two up to the default queue limit, matching how batches actually
#: cluster (the exact-mode series retains raw samples regardless, so
#: summary statistics never depend on the bucketing).
_GATEWAY_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class GatewayMetrics:
    """Serving-tier measurements for the admission gateway.

    The gateway reports every flush (:meth:`observe_flush`) and every
    shed decision (:meth:`observe_shed`); alternatively
    :meth:`attach` subscribes the shed side to ``REQUEST_SHED`` events
    so any bus observer sees the same stream the metrics do.

    Backed by :class:`~repro.obs.registry.MetricsRegistry` instruments
    (``gateway_admitted_total``, ``gateway_shed_total{reason}``,
    ``gateway_flushes_total``, ``gateway_batch_size``,
    ``gateway_queue_depth``) so one ``/metrics`` scrape sees the same
    numbers :meth:`summary` ships; pass a shared ``registry`` to expose
    them, or omit it for a private one (isolated, as before).  The
    size/depth series run in exact mode, so :meth:`summary` output is
    bit-identical to the retained-sample implementation it replaced.
    """

    def __init__(self, registry=None) -> None:
        from repro.obs.registry import METRIC_CATALOG, MetricsRegistry

        if registry is None:
            registry = MetricsRegistry()
        self.registry = registry
        self._admitted = registry.counter(
            "gateway_admitted_total",
            METRIC_CATALOG["gateway_admitted_total"],
        )
        self._shed = registry.counter(
            "gateway_shed_total",
            METRIC_CATALOG["gateway_shed_total"],
            labels=("reason",),
        )
        self._flushes = registry.counter(
            "gateway_flushes_total",
            METRIC_CATALOG["gateway_flushes_total"],
        )
        self.batch_sizes = registry.histogram(
            "gateway_batch_size",
            METRIC_CATALOG["gateway_batch_size"],
            buckets=_GATEWAY_BUCKETS,
            exact=True,
        ).labels()
        self.queue_depths = registry.histogram(
            "gateway_queue_depth",
            METRIC_CATALOG["gateway_queue_depth"],
            buckets=_GATEWAY_BUCKETS,
            exact=True,
        ).labels()

    @property
    def admitted_count(self) -> int:
        return int(self._admitted.value())

    @property
    def shed_count(self) -> int:
        return int(self._shed.total())

    @property
    def shed_reasons(self) -> dict[str, int]:
        """Shed counts by reason (a copy; mutate via :meth:`observe_shed`)."""
        return {
            reason: int(count)
            for reason, count in self._shed.as_dict().items()
        }

    def attach(self, bus: EventBus) -> "GatewayMetrics":
        """Subscribe to REQUEST_SHED events on ``bus``; returns self."""
        bus.subscribe(self._on_event, kinds=[EventKind.REQUEST_SHED])
        return self

    def _on_event(self, event: FrameworkEvent) -> None:
        reason = event.payload.get("reason")
        depth = event.payload.get("queue_depth")
        self.observe_shed(
            str(reason or "unspecified"),
            queue_depth=depth if isinstance(depth, (int, float)) else None,
        )

    def observe_flush(
        self,
        batch_size: int,
        queue_depth: int,
        admitted: int | None = None,
    ) -> None:
        """Record one admission batch and the depth it drained from.

        ``admitted`` is the number of requests that actually received a
        challenge; it defaults to ``batch_size`` but callers whose
        batches can partially fail (the gateway's scalar fallback)
        pass the true count.
        """
        self.batch_sizes.add(batch_size)
        self.queue_depths.add(queue_depth)
        self._flushes.inc()
        self._admitted.inc(batch_size if admitted is None else admitted)

    def observe_shed(
        self, reason: str, queue_depth: int | float | None = None
    ) -> None:
        """Record one shed request (optionally with the depth seen)."""
        self._shed.inc(reason=reason)
        if queue_depth is not None:
            self.queue_depths.add(float(queue_depth))

    @property
    def mean_batch_size(self) -> float:
        """Average achieved batch size (0.0 before the first flush)."""
        return self.batch_sizes.mean() if len(self.batch_sizes) else 0.0

    @property
    def max_queue_depth(self) -> float:
        """Deepest queue observed (0.0 before the first observation)."""
        return self.queue_depths.max() if len(self.queue_depths) else 0.0

    def summary(self) -> dict:
        """JSON-safe reduction, shippable across a process boundary."""
        return {
            "admitted": self.admitted_count,
            "shed": self.shed_count,
            "shed_reasons": dict(self.shed_reasons),
            "flushes": len(self.batch_sizes),
            "mean_batch_size": self.mean_batch_size,
            "max_queue_depth": self.max_queue_depth,
        }


def aggregate_gateway_summaries(
    summaries: Sequence[Mapping],
) -> dict:
    """Fold per-worker :meth:`GatewayMetrics.summary` dicts into totals.

    Counters sum, shed reasons merge, the mean batch size is weighted
    by each worker's flush count, and the queue-depth high-water mark
    is the max across workers.  The input summaries ride along under
    ``per_worker`` so nothing is lost in the reduction.
    """
    summaries = list(summaries)
    flushes = sum(int(s.get("flushes", 0)) for s in summaries)
    weighted = sum(
        float(s.get("mean_batch_size", 0.0)) * int(s.get("flushes", 0))
        for s in summaries
    )
    shed_reasons: dict[str, int] = {}
    for s in summaries:
        for reason, count in dict(s.get("shed_reasons", {})).items():
            shed_reasons[reason] = shed_reasons.get(reason, 0) + int(count)
    return {
        "workers": len(summaries),
        "admitted": sum(int(s.get("admitted", 0)) for s in summaries),
        "shed": sum(int(s.get("shed", 0)) for s in summaries),
        "shed_reasons": shed_reasons,
        "flushes": flushes,
        "mean_batch_size": weighted / flushes if flushes else 0.0,
        "max_queue_depth": max(
            (float(s.get("max_queue_depth", 0.0)) for s in summaries),
            default=0.0,
        ),
        "per_worker": [dict(s) for s in summaries],
    }
