"""Metrics collection from framework events.

:class:`MetricsCollector` subscribes to a framework's
:class:`~repro.core.events.EventBus` and accumulates per-outcome and
per-class measurements: latency sample sets, difficulty distribution,
score distribution, and outcome counters.  A *classifier* callable maps
each response to a breakdown key (e.g. profile name, "benign"/"attack"),
enabling the throttling experiment's per-class latency comparison.
"""

from __future__ import annotations

from typing import Callable

from repro.core.events import EventBus, EventKind, FrameworkEvent
from repro.core.records import ResponseStatus, ServedResponse
from repro.metrics.histogram import SampleSet
from repro.metrics.stats import StreamingStats

__all__ = ["MetricsCollector", "ClassMetrics"]

Classifier = Callable[[ServedResponse], str]


class ClassMetrics:
    """Accumulated measurements for one breakdown class."""

    def __init__(self) -> None:
        self.latencies = SampleSet()
        self.served_latencies = SampleSet()
        self.scores = StreamingStats()
        self.difficulties = StreamingStats()
        self.attempts = StreamingStats()
        self.outcomes: dict[ResponseStatus, int] = {
            status: 0 for status in ResponseStatus
        }

    @property
    def total(self) -> int:
        return sum(self.outcomes.values())

    @property
    def served(self) -> int:
        return self.outcomes[ResponseStatus.SERVED]

    @property
    def goodput_fraction(self) -> float:
        """Fraction of requests that ended in a served resource."""
        total = self.total
        return self.served / total if total else 0.0

    def observe(self, response: ServedResponse) -> None:
        """Fold one response into the accumulators."""
        self.outcomes[response.status] += 1
        self.latencies.add(response.latency)
        if response.served:
            self.served_latencies.add(response.latency)
        self.scores.add(response.decision.reputation_score)
        self.difficulties.add(response.decision.difficulty)
        self.attempts.add(response.solve_attempts)


class MetricsCollector:
    """Collects responses, optionally broken down by a classifier.

    Use either as an event subscriber (``collector.attach(bus)``) or by
    calling :meth:`observe` directly from simulator code.
    """

    #: Key under which unclassified traffic accumulates.
    OVERALL = "overall"

    def __init__(self, classifier: Classifier | None = None) -> None:
        self._classifier = classifier
        self._classes: dict[str, ClassMetrics] = {}

    def attach(self, bus: EventBus) -> "MetricsCollector":
        """Subscribe to RESPONSE_SERVED events on ``bus``; returns self."""
        bus.subscribe(self._on_event, kinds=[EventKind.RESPONSE_SERVED])
        return self

    def _on_event(self, event: FrameworkEvent) -> None:
        response = event.payload.get("response")
        if isinstance(response, ServedResponse):
            self.observe(response)

    def observe(self, response: ServedResponse) -> None:
        """Fold ``response`` into the overall and per-class metrics."""
        self._class(self.OVERALL).observe(response)
        if self._classifier is not None:
            self._class(self._classifier(response)).observe(response)

    def _class(self, key: str) -> ClassMetrics:
        if key not in self._classes:
            self._classes[key] = ClassMetrics()
        return self._classes[key]

    @property
    def overall(self) -> ClassMetrics:
        """Metrics across all traffic."""
        return self._class(self.OVERALL)

    def class_names(self) -> tuple[str, ...]:
        """Breakdown keys seen so far (excluding the overall bucket)."""
        return tuple(
            sorted(k for k in self._classes if k != self.OVERALL)
        )

    def for_class(self, key: str) -> ClassMetrics:
        """Metrics for one breakdown class; empty metrics if unseen."""
        return self._class(key)
