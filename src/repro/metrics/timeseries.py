"""Windowed time series: how metrics evolve during a run.

Aggregate metrics hide dynamics — an attack's onset, the moment a
load-adaptive policy kicks in, recovery after the flood ends.  A
:class:`TimeSeries` buckets observations into fixed windows and exposes
per-window statistics; :class:`TimelineCollector` builds per-class
latency/goodput timelines directly from simulation responses.
"""

from __future__ import annotations

import math

from repro.core.records import ServedResponse

__all__ = ["TimeSeries", "TimelineCollector"]


class TimeSeries:
    """Fixed-window aggregation of (time, value) observations."""

    def __init__(self, window: float = 1.0) -> None:
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        self.window = window
        self._sums: dict[int, float] = {}
        self._counts: dict[int, int] = {}

    def add(self, timestamp: float, value: float = 1.0) -> None:
        """Record ``value`` at ``timestamp``."""
        if not math.isfinite(timestamp) or timestamp < 0:
            raise ValueError(f"timestamp must be finite and >= 0: {timestamp!r}")
        if not math.isfinite(value):
            raise ValueError(f"value must be finite: {value!r}")
        index = int(timestamp / self.window)
        self._sums[index] = self._sums.get(index, 0.0) + value
        self._counts[index] = self._counts.get(index, 0) + 1

    def __len__(self) -> int:
        return len(self._counts)

    @property
    def span(self) -> tuple[float, float]:
        """(start, end) of the covered time range; (0, 0) when empty."""
        if not self._counts:
            return (0.0, 0.0)
        indexes = sorted(self._counts)
        return (
            indexes[0] * self.window,
            (indexes[-1] + 1) * self.window,
        )

    def _index_range(self) -> range:
        if not self._counts:
            return range(0)
        indexes = sorted(self._counts)
        return range(indexes[0], indexes[-1] + 1)

    def counts(self) -> list[tuple[float, int]]:
        """(window_start, observation_count) for every covered window."""
        return [
            (i * self.window, self._counts.get(i, 0))
            for i in self._index_range()
        ]

    def rates(self) -> list[tuple[float, float]]:
        """(window_start, observations_per_second)."""
        return [
            (start, count / self.window)
            for start, count in self.counts()
        ]

    def means(self) -> list[tuple[float, float]]:
        """(window_start, mean value); empty windows report NaN."""
        out = []
        for i in self._index_range():
            count = self._counts.get(i, 0)
            mean = self._sums[i] / count if count else math.nan
            out.append((i * self.window, mean))
        return out


class TimelineCollector:
    """Per-class latency and goodput timelines from responses.

    Observe responses (directly or via
    :meth:`~repro.metrics.collector.MetricsCollector`-style wiring) and
    read back, per class: request rate, served rate, and mean served
    latency per window.
    """

    def __init__(self, window: float = 1.0) -> None:
        self.window = window
        self._latency: dict[str, TimeSeries] = {}
        self._served: dict[str, TimeSeries] = {}
        self._requests: dict[str, TimeSeries] = {}

    def observe(self, cls: str, response: ServedResponse, at: float) -> None:
        """Fold one terminal response (completed at time ``at``)."""
        self._series(self._requests, cls).add(at)
        if response.served:
            self._series(self._served, cls).add(at)
            self._series(self._latency, cls).add(at, response.latency)

    def _series(self, store: dict[str, TimeSeries], cls: str) -> TimeSeries:
        if cls not in store:
            store[cls] = TimeSeries(self.window)
        return store[cls]

    def classes(self) -> tuple[str, ...]:
        return tuple(sorted(self._requests))

    def served_rate(self, cls: str) -> list[tuple[float, float]]:
        """(window_start, served/second) for ``cls``."""
        return self._series(self._served, cls).rates()

    def request_rate(self, cls: str) -> list[tuple[float, float]]:
        return self._series(self._requests, cls).rates()

    def latency_means(self, cls: str) -> list[tuple[float, float]]:
        """(window_start, mean served latency seconds) for ``cls``."""
        return self._series(self._latency, cls).means()
