"""ASCII rendering of experiment results: tables and series.

The bench harness prints the same rows/series the paper reports; these
helpers keep that output aligned and consistent.  No plotting libraries
are used (the environment is offline) — Figure 2 is emitted both as a
table and as an ASCII chart.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_table", "render_series", "ascii_chart"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table.

    Cells are stringified; floats get sensible default formatting.
    """
    if not headers:
        raise ValueError("table needs at least one header")

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    for i, row in enumerate(text_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in text_rows))
        if text_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    xs: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str | None = None,
) -> str:
    """Render several named series against a shared x axis as a table."""
    if not series:
        raise ValueError("need at least one series")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(ys)} points, expected {len(xs)}"
            )
    headers = [x_label] + list(series)
    rows = [
        [x] + [series[name][i] for name in series] for i, x in enumerate(xs)
    ]
    return render_table(headers, rows, title=title)


def ascii_chart(
    xs: Sequence[object],
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    title: str | None = None,
) -> str:
    """Horizontal-bar chart: one block per (x, series) pair.

    Bars share a common scale so series are visually comparable — the
    closest plain-text analogue of the paper's Figure 2.
    """
    if not series:
        raise ValueError("need at least one series")
    peak = max((max(ys) if ys else 0.0) for ys in series.values())
    if peak <= 0:
        peak = 1.0
    lines = []
    if title:
        lines.append(title)
    markers = "#*o+x%@&"
    for si, (name, ys) in enumerate(series.items()):
        marker = markers[si % len(markers)]
        lines.append(f"-- {name} [{marker}]")
        for x, y in zip(xs, ys):
            bar = marker * max(0, int(round(width * y / peak)))
            lines.append(f"{str(x):>6} | {bar} {y:.1f}")
    return "\n".join(lines)
