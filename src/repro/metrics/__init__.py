"""Metrics substrate: streaming stats, quantiles, collectors, reports."""

from repro.metrics.collector import (
    ClassMetrics,
    GatewayMetrics,
    MetricsCollector,
)
from repro.metrics.histogram import LatencyHistogram, SampleSet
from repro.metrics.reporting import ascii_chart, render_series, render_table
from repro.metrics.stats import StreamingStats
from repro.metrics.timeseries import TimelineCollector, TimeSeries

__all__ = [
    "StreamingStats",
    "TimeSeries",
    "TimelineCollector",
    "SampleSet",
    "LatencyHistogram",
    "MetricsCollector",
    "ClassMetrics",
    "GatewayMetrics",
    "render_table",
    "render_series",
    "ascii_chart",
]
