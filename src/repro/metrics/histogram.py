"""Exact-quantile sample sets and log-scale latency histograms.

Figure 2 reports the *median* of 30 trials, so quantiles must be exact:
:class:`SampleSet` retains samples and computes any quantile by linear
interpolation (numpy's default convention).  :class:`LatencyHistogram`
buckets observations into log-spaced bins for compact distribution
summaries in reports.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

__all__ = ["SampleSet", "LatencyHistogram"]


class SampleSet:
    """Retained samples with exact quantiles and summary statistics."""

    def __init__(self, values: Iterable[float] = ()) -> None:
        self._values: list[float] = []
        self.extend(values)

    def add(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"samples must be finite, got {value!r}")
        self._values.append(value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def extend_array(self, values: np.ndarray) -> None:
        """Bulk-append a numpy array of samples (one finite check).

        The vectorized simulator folds whole outcome cohorts into the
        collector at once; looping :meth:`add` over a million floats
        would dominate its runtime.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        if not np.isfinite(values).all():
            raise ValueError("samples must be finite")
        self._values.extend(values.tolist())

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        return iter(self._values)

    @property
    def values(self) -> tuple[float, ...]:
        return tuple(self._values)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (linear interpolation); requires samples."""
        if not self._values:
            raise ValueError("quantile of an empty sample set")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        return float(np.quantile(self._values, q))

    def median(self) -> float:
        """Exact median — the statistic Figure 2 reports."""
        return self.quantile(0.5)

    def mean(self) -> float:
        if not self._values:
            raise ValueError("mean of an empty sample set")
        return float(np.mean(self._values))

    def stdev(self) -> float:
        if len(self._values) < 2:
            return 0.0
        return float(np.std(self._values, ddof=1))

    def min(self) -> float:
        if not self._values:
            raise ValueError("min of an empty sample set")
        return min(self._values)

    def max(self) -> float:
        if not self._values:
            raise ValueError("max of an empty sample set")
        return max(self._values)


class LatencyHistogram:
    """Log-spaced latency histogram from ``low`` to ``high`` seconds.

    Observations below ``low`` land in the first bin, above ``high`` in
    the overflow bin.  Bin edges are geometric, matching how latency
    intuition works (1 ms vs 2 ms matters; 1.000 s vs 1.001 s does not).
    """

    def __init__(
        self, low: float = 1e-4, high: float = 100.0, bins: int = 48
    ) -> None:
        if low <= 0 or high <= low:
            raise ValueError(f"need 0 < low < high, got low={low} high={high}")
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        self.low = low
        self.high = high
        self.edges = np.geomspace(low, high, bins + 1)
        self.counts = np.zeros(bins + 1, dtype=np.int64)  # + overflow bin

    def add(self, value: float) -> None:
        if value < 0 or not math.isfinite(value):
            raise ValueError(f"latency must be finite and >= 0, got {value!r}")
        index = int(np.searchsorted(self.edges, value, side="right")) - 1
        if index < 0:
            index = 0
        elif index >= len(self.counts) - 1:
            index = len(self.counts) - 1
        self.counts[index] += 1

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def quantile(self, q: float) -> float:
        """Approximate quantile from bin midpoints."""
        if self.total == 0:
            raise ValueError("quantile of an empty histogram")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        target = q * self.total
        cumulative = 0
        for i, count in enumerate(self.counts):
            cumulative += int(count)
            if cumulative >= target and count:
                if i >= len(self.edges) - 1:
                    return float(self.edges[-1])
                return float(math.sqrt(self.edges[i] * self.edges[i + 1]))
        return float(self.edges[-1])

    def render(self, width: int = 40) -> str:
        """ASCII rendering for reports; one row per non-empty bin."""
        if self.total == 0:
            return "(empty histogram)"
        peak = int(self.counts.max())
        rows = []
        for i, count in enumerate(self.counts):
            if not count:
                continue
            if i < len(self.edges) - 1:
                label = f"{self.edges[i] * 1000:9.2f}ms"
            else:
                label = f">{self.high * 1000:8.0f}ms"
            bar = "#" * max(1, int(width * int(count) / peak))
            rows.append(f"{label} | {bar} {int(count)}")
        return "\n".join(rows)
