"""Attacker model scaffolding.

An attacker model bundles the pieces the simulator needs to represent
one adversary class: a :class:`~repro.traffic.profiles.ClientProfile`
describing its traffic footprint, plus a *solve decider* — the
adversary's reaction to being handed a puzzle of a given difficulty.

The decider is the economically interesting bit: PoW defenses win by
making the attacker's cost-per-served-request exceed its budget, and
each concrete attacker in this package encodes a different budget
strategy.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.traffic.profiles import ClientProfile

__all__ = ["AttackerModel"]


@runtime_checkable
class AttackerModel(Protocol):
    """The contract the simulator consumes for adversaries."""

    @property
    def name(self) -> str:
        """Attacker class name (used as metrics breakdown key)."""
        ...

    @property
    def profile(self) -> ClientProfile:
        """Traffic footprint of this adversary's clients."""
        ...

    def should_solve(self, difficulty: int) -> bool:
        """The adversary's decision when handed a ``difficulty`` puzzle."""
        ...
