"""Attacker model scaffolding.

An attacker model bundles the pieces the simulator needs to represent
one adversary class: a :class:`~repro.traffic.profiles.ClientProfile`
describing its traffic footprint, plus a *solve decider* — the
adversary's reaction to being handed a puzzle of a given difficulty.

The decider is the economically interesting bit: PoW defenses win by
making the attacker's cost-per-served-request exceed its budget, and
each concrete attacker in this package encodes a different budget
strategy.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.traffic.profiles import ClientProfile

__all__ = ["AttackerModel", "decide_batch"]


@runtime_checkable
class AttackerModel(Protocol):
    """The contract the simulator consumes for adversaries.

    ``should_solve`` is the required scalar hook.  The shipped
    attackers additionally implement ``decide_batch`` (a boolean
    vector over a difficulty array) so the vectorized simulator can
    resolve a whole cohort's decisions in one pass; third-party
    scalar-only attackers keep working through the loop fallback in
    :func:`decide_batch`.
    """

    @property
    def name(self) -> str:
        """Attacker class name (used as metrics breakdown key)."""
        ...

    @property
    def profile(self) -> ClientProfile:
        """Traffic footprint of this adversary's clients."""
        ...

    def should_solve(self, difficulty: int) -> bool:
        """The adversary's decision when handed a ``difficulty`` puzzle."""
        ...


def decide_batch(decider, difficulties: np.ndarray) -> np.ndarray:
    """Solve/refuse decisions for a difficulty vector.

    Dispatches to the decider's own ``decide_batch`` when it has one
    (the shipped attackers — one vector op per cohort); otherwise
    loops the scalar decision, accepting either an
    :class:`AttackerModel` (``should_solve``) or a bare
    ``difficulty -> bool`` callable, so anything the callback
    simulators accept as a solve decider works here unchanged.
    """
    difficulties = np.asarray(difficulties)
    batch = getattr(decider, "decide_batch", None)
    if batch is not None:
        return np.asarray(batch(difficulties), dtype=bool)
    scalar = getattr(decider, "should_solve", decider)
    return np.fromiter(
        (bool(scalar(int(d))) for d in difficulties),
        dtype=bool,
        count=len(difficulties),
    )
