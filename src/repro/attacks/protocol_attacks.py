"""Protocol-level attacks against the PoW exchange itself.

The volumetric attackers in this package attack the *server's
resources*; these attack the *protocol*:

* **Pre-computation** (:class:`PrecomputationAttacker`) — grind
  solutions for *predicted* future puzzles before they are issued.  The
  paper's unique unpredictable seed exists precisely to break this; the
  attack succeeds against a predictable seed source and fails against
  the CSPRNG one, which the security tests assert.
* **Replay** (:class:`ReplayAttacker`) — capture a valid
  (puzzle, solution) pair and redeem it repeatedly.  Defeated by the
  verifier's replay cache.

Each attack is a small driver returning an :class:`AttackOutcome`, so
tests and docs can state the security property as an executable fact.
"""

from __future__ import annotations

import dataclasses

from repro.core.errors import PuzzleError, ReplayedSolutionError
from repro.pow.generator import PuzzleGenerator
from repro.pow.puzzle import Puzzle, Solution
from repro.pow.solver import HashSolver
from repro.pow.verifier import PuzzleVerifier

__all__ = ["AttackOutcome", "PrecomputationAttacker", "ReplayAttacker"]


@dataclasses.dataclass(frozen=True, slots=True)
class AttackOutcome:
    """Result of one protocol attack attempt."""

    attack: str
    succeeded: bool
    detail: str


class PrecomputationAttacker:
    """Predicts future puzzle seeds and grinds their solutions early.

    The attacker observes ``observations`` issued puzzles, extrapolates
    the next seed by assuming a counter-like generator, pre-solves the
    predicted puzzle, then waits for the real issuance and submits the
    precomputed nonce.

    Parameters
    ----------
    client_ip:
        The address the attacker controls (puzzles are IP-bound, so the
        attack targets its own future puzzles — e.g. to amortise work
        before a flood).
    """

    def __init__(self, client_ip: str = "110.66.7.8") -> None:
        self.client_ip = client_ip
        self._solver = HashSolver()

    @staticmethod
    def predict_next_seed(observed: list[str]) -> str | None:
        """Extrapolate the next seed from observed hex seeds.

        Counter-based sources are perfectly predictable; CSPRNG seeds
        produce no usable pattern (prediction is just last + 1, which
        will be wrong with overwhelming probability).
        """
        if not observed:
            return None
        width = len(observed[-1])
        last = int(observed[-1], 16)
        return format(last + 1, f"0{width}x")

    def run(
        self,
        generator: PuzzleGenerator,
        verifier: PuzzleVerifier,
        observations: int = 3,
        difficulty: int = 8,
    ) -> AttackOutcome:
        """Observe, predict, pre-solve, then redeem against the real puzzle."""
        observed = [
            generator.issue(self.client_ip, difficulty, now=float(i)).seed
            for i in range(observations)
        ]
        predicted_seed = self.predict_next_seed(observed)
        if predicted_seed is None:
            return AttackOutcome(
                "precomputation", False, "no observations to predict from"
            )

        # Pre-solve the predicted puzzle.  The attacker must also guess
        # the issue timestamp; assume it knows the server clock exactly
        # (strongest reasonable attacker).
        issue_time = float(observations)
        predicted = Puzzle(
            seed=predicted_seed,
            timestamp=issue_time,
            difficulty=difficulty,
            algorithm=generator.config.hash_algorithm,
        )
        precomputed = self._solver.solve(predicted, self.client_ip)

        # The real puzzle is issued; submit the precomputed nonce.
        real = generator.issue(self.client_ip, difficulty, now=issue_time)
        if real.seed != predicted_seed:
            return AttackOutcome(
                "precomputation",
                False,
                f"seed prediction failed ({predicted_seed[:8]}... vs "
                f"{real.seed[:8]}...): unique unpredictable seeds defeat "
                "pre-computation",
            )
        submission = Solution(
            puzzle_seed=real.seed,
            nonce=precomputed.nonce,
            attempts=precomputed.attempts,
        )
        try:
            verifier.verify(real, submission, self.client_ip, now=issue_time)
        except PuzzleError as exc:
            return AttackOutcome(
                "precomputation", False, f"verifier rejected: {exc}"
            )
        return AttackOutcome(
            "precomputation",
            True,
            "predictable seeds allowed work to be done before issuance",
        )


class ReplayAttacker:
    """Redeems one honestly-solved puzzle as many times as possible."""

    def __init__(self, client_ip: str = "110.66.9.9") -> None:
        self.client_ip = client_ip
        self._solver = HashSolver()

    def run(
        self,
        generator: PuzzleGenerator,
        verifier: PuzzleVerifier,
        attempts: int = 5,
        difficulty: int = 6,
    ) -> AttackOutcome:
        """Solve once, redeem ``attempts`` times."""
        if attempts < 2:
            raise ValueError(f"attempts must be >= 2, got {attempts}")
        puzzle = generator.issue(self.client_ip, difficulty, now=0.0)
        solution = self._solver.solve(puzzle, self.client_ip)

        accepted = 0
        for i in range(attempts):
            try:
                verifier.verify(
                    puzzle, solution, self.client_ip, now=0.1 * (i + 1)
                )
                accepted += 1
            except ReplayedSolutionError:
                continue
            except PuzzleError as exc:  # pragma: no cover - unexpected
                return AttackOutcome(
                    "replay", False, f"unexpected rejection: {exc}"
                )
        if accepted > 1:
            return AttackOutcome(
                "replay",
                True,
                f"{accepted}/{attempts} redemptions accepted: one unit of "
                "work bought multiple services",
            )
        return AttackOutcome(
            "replay",
            False,
            f"only the first redemption accepted ({accepted}/{attempts}): "
            "replay cache held",
        )
