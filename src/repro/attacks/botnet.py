"""Solving botnet: an adversary that pays for service.

A botnet attacker *does* solve puzzles — it wants responses (e.g. to
exhaust an application-layer resource) and has real CPU to spend.  Its
constraint is a per-bot difficulty budget: above ``max_difficulty`` the
expected solve time is no longer worth the response, so the bot drops
the puzzle.

This is the adversary the adaptive issuer throttles *gradually*: each
served attack request costs ``~2**d`` hash evaluations, and because a
bot's CPU serialises grinding, its served-request rate collapses as the
policy raises ``d`` — the latency-amplification effect of Figure 2 seen
from the attacker's side.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.traffic.profiles import MALICIOUS_PROFILE, ClientProfile

__all__ = ["BotnetAttacker"]


@dataclasses.dataclass(frozen=True, slots=True)
class BotnetAttacker:
    """Solves puzzles up to a difficulty budget.

    Parameters
    ----------
    profile:
        Traffic footprint; defaults to the malicious profile.
    max_difficulty:
        Hardest puzzle a bot will grind before dropping the exchange.
    """

    profile: ClientProfile = MALICIOUS_PROFILE
    max_difficulty: int = 18

    def __post_init__(self) -> None:
        if self.max_difficulty < 0:
            raise ValueError(
                f"max_difficulty must be >= 0, got {self.max_difficulty}"
            )

    @property
    def name(self) -> str:
        return self.profile.name

    def should_solve(self, difficulty: int) -> bool:
        return difficulty <= self.max_difficulty

    def decide_batch(self, difficulties: np.ndarray) -> np.ndarray:
        """Vector form of :meth:`should_solve` over a difficulty array."""
        return np.asarray(difficulties) <= self.max_difficulty
