"""Cost-aware adaptive attacker.

A rational adversary compares the expected solve cost of a puzzle
against the value of one served response and walks away when the
exchange is unprofitable.  :class:`AdaptiveAttacker` encodes that
break-even rule: with hash rate ``h`` (evaluations/second), a
``d``-difficult puzzle costs ``2**d / h`` seconds in expectation, and
the attacker solves only while that stays below its per-request value.

The ablation benches use this adversary to locate the difficulty at
which a given attacker economy collapses — the operational question a
network administrator tunes a policy around.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.pow.difficulty import expected_attempts
from repro.traffic.profiles import STEALTH_PROFILE, ClientProfile

__all__ = ["AdaptiveAttacker"]


@dataclasses.dataclass(frozen=True, slots=True)
class AdaptiveAttacker:
    """Solves while expected solve seconds ≤ value_per_request.

    Parameters
    ----------
    profile:
        Traffic footprint; defaults to the stealthy profile (which is
        what a cost-aware adversary would choose).
    value_per_request:
        Seconds of CPU the adversary is willing to burn per served
        response.
    hash_rate:
        Bot hash rate in evaluations/second.
    """

    profile: ClientProfile = STEALTH_PROFILE
    value_per_request: float = 0.25
    hash_rate: float = 37_000.0

    def __post_init__(self) -> None:
        if self.value_per_request <= 0:
            raise ValueError(
                f"value_per_request must be > 0, got {self.value_per_request}"
            )
        if self.hash_rate <= 0:
            raise ValueError(f"hash_rate must be > 0, got {self.hash_rate}")

    @property
    def name(self) -> str:
        return self.profile.name

    def break_even_difficulty(self) -> int:
        """Largest difficulty still worth solving."""
        d = 0
        while (
            expected_attempts(d + 1) / self.hash_rate <= self.value_per_request
        ):
            d += 1
        return d

    def expected_cost_seconds(self, difficulty: int) -> float:
        """Expected CPU seconds to solve one ``difficulty`` puzzle."""
        return expected_attempts(difficulty) / self.hash_rate

    def should_solve(self, difficulty: int) -> bool:
        return self.expected_cost_seconds(difficulty) <= self.value_per_request

    def decide_batch(self, difficulties: np.ndarray) -> np.ndarray:
        """Vector form of :meth:`should_solve` over a difficulty array.

        Uses the same ``2**d / hash_rate`` expectation (``expected_attempts``
        is exactly ``float(2**d)``), so batch and scalar decisions agree
        bit for bit.
        """
        cost = np.exp2(np.asarray(difficulties, dtype=np.float64))
        return cost / self.hash_rate <= self.value_per_request
