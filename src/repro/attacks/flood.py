"""Pure request flood: the classic volumetric DDoS.

A flood attacker maximises request volume and never spends CPU on
puzzles — its goal is to exhaust the *server*, not to get responses.
Against an undefended server this works (every request triggers the
expensive resource path); against the PoW framework every flood request
dies at the cheap challenge step, which is the paper's headline defense
story.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.traffic.profiles import MALICIOUS_PROFILE, ClientProfile

__all__ = ["FloodAttacker"]


@dataclasses.dataclass(frozen=True, slots=True)
class FloodAttacker:
    """Never solves; floods requests at the profile's rate."""

    profile: ClientProfile = MALICIOUS_PROFILE

    @property
    def name(self) -> str:
        return self.profile.name

    def should_solve(self, difficulty: int) -> bool:
        """A flood never greets the puzzle with CPU; difficulty 0 is free."""
        return difficulty == 0

    def decide_batch(self, difficulties: np.ndarray) -> np.ndarray:
        """Vector form of :meth:`should_solve` over a difficulty array."""
        return np.asarray(difficulties) == 0
