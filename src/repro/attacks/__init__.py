"""Attack models: adversaries for the throttling experiments."""

from typing import Any, Mapping

from repro.attacks.adaptive import AdaptiveAttacker
from repro.attacks.base import AttackerModel, decide_batch
from repro.attacks.botnet import BotnetAttacker
from repro.attacks.flood import FloodAttacker
from repro.attacks.protocol_attacks import (
    AttackOutcome,
    PrecomputationAttacker,
    ReplayAttacker,
)

__all__ = [
    "AttackerModel",
    "FloodAttacker",
    "BotnetAttacker",
    "AdaptiveAttacker",
    "AttackOutcome",
    "PrecomputationAttacker",
    "ReplayAttacker",
    "decide_batch",
    "make_attacker",
]


def make_attacker(spec: Mapping[str, Any]) -> AttackerModel:
    """Build a volumetric attacker from a JSON-style spec mapping.

    The shared factory behind scenario documents and campaign specs:
    ``{"kind": "flood" | "botnet" | "adaptive", ...params}``.  Unknown
    kinds raise :class:`~repro.core.errors.ConfigError` listing the
    catalogue, so a typo in a scenario file fails loudly.
    """
    from repro.core.errors import ConfigError

    kind = spec.get("kind", "botnet")
    if kind == "flood":
        return FloodAttacker()
    if kind == "botnet":
        return BotnetAttacker(
            max_difficulty=int(spec.get("max_difficulty", 18))
        )
    if kind == "adaptive":
        return AdaptiveAttacker(
            value_per_request=float(spec.get("value_per_request", 0.25)),
            hash_rate=float(spec.get("hash_rate", 37_000.0)),
        )
    raise ConfigError(
        f"unknown attacker kind {kind!r} "
        "(catalogue: flood, botnet, adaptive)"
    )
