"""Attack models: adversaries for the throttling experiments."""

from repro.attacks.adaptive import AdaptiveAttacker
from repro.attacks.base import AttackerModel
from repro.attacks.botnet import BotnetAttacker
from repro.attacks.flood import FloodAttacker
from repro.attacks.protocol_attacks import (
    AttackOutcome,
    PrecomputationAttacker,
    ReplayAttacker,
)

__all__ = [
    "AttackerModel",
    "FloodAttacker",
    "BotnetAttacker",
    "AdaptiveAttacker",
    "AttackOutcome",
    "PrecomputationAttacker",
    "ReplayAttacker",
]
