"""Declarative policy specifications ("policy driven" configuration).

Network administrators specify policies as data, not code (paper §I: "a
network administrator may specify a policy based on her specific
security needs").  A spec is a JSON-style mapping with a ``kind`` field
and kind-specific parameters; nested combinators compose naturally:

>>> from repro.policies.dsl import build_policy
>>> spec = {
...     "kind": "clamp", "low": 0, "high": 20,
...     "inner": {"kind": "linear", "base": 5},
... }
>>> policy = build_policy(spec)
>>> policy.name
'clamp(linear(base=5),[0,20])'

:func:`policy_to_spec` is the inverse for the built-in types, enabling
config round-trips.  Unknown kinds and bad parameters raise
:class:`~repro.core.errors.PolicySpecError` with an actionable message.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.core.errors import PolicySpecError
from repro.core.interfaces import Policy
from repro.policies.adaptive import LoadAdaptivePolicy
from repro.policies.composite import (
    ClampPolicy,
    MaxOfPolicy,
    MinOfPolicy,
    OffsetPolicy,
)
from repro.policies.error_range import ErrorRangePolicy
from repro.policies.exponential import ExponentialPolicy
from repro.policies.linear import LinearPolicy
from repro.policies.stepwise import StepwisePolicy
from repro.policies.table import TablePolicy

__all__ = ["build_policy", "policy_to_spec", "load_policy_json", "dump_policy_json"]


def _require_keys(spec: Mapping[str, Any], kind: str, allowed: set[str]) -> None:
    unknown = set(spec) - allowed - {"kind"}
    if unknown:
        raise PolicySpecError(
            f"{kind!r} spec has unknown keys {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )


def build_policy(spec: Mapping[str, Any]) -> Policy:
    """Construct a policy from a declarative ``spec`` mapping.

    Supported kinds: ``linear``, ``error-range``, ``stepwise``,
    ``exponential``, ``table``, ``max``, ``min``, ``clamp``, ``offset``,
    ``adaptive``.
    """
    if not isinstance(spec, Mapping):
        raise PolicySpecError(f"policy spec must be a mapping, got {type(spec)}")
    kind = spec.get("kind")
    if not isinstance(kind, str):
        raise PolicySpecError(f"policy spec needs a string 'kind': {spec!r}")

    try:
        if kind == "linear":
            _require_keys(spec, kind, {"base", "slope", "name"})
            return LinearPolicy(
                base=int(spec.get("base", 1)),
                slope=float(spec.get("slope", 1.0)),
                name=spec.get("name"),
            )
        if kind == "error-range":
            _require_keys(spec, kind, {"epsilon", "base", "name"})
            return ErrorRangePolicy(
                epsilon=float(spec.get("epsilon", 2.0)),
                base=float(spec.get("base", 1.0)),
                name=spec.get("name"),
            )
        if kind == "stepwise":
            _require_keys(spec, kind, {"thresholds", "difficulties", "name"})
            return StepwisePolicy(
                thresholds=spec["thresholds"],
                difficulties=spec["difficulties"],
                name=spec.get("name"),
            )
        if kind == "exponential":
            _require_keys(spec, kind, {"base", "growth", "scale", "name"})
            return ExponentialPolicy(
                base=int(spec.get("base", 1)),
                growth=float(spec.get("growth", 1.3)),
                scale=float(spec.get("scale", 1.0)),
                name=spec.get("name"),
            )
        if kind == "table":
            _require_keys(spec, kind, {"entries", "name"})
            return TablePolicy(entries=spec["entries"], name=spec.get("name"))
        if kind in ("max", "min"):
            _require_keys(spec, kind, {"members"})
            members = spec.get("members")
            if not isinstance(members, (list, tuple)) or not members:
                raise PolicySpecError(
                    f"{kind!r} spec needs a non-empty 'members' list"
                )
            built = [build_policy(m) for m in members]
            return MaxOfPolicy(built) if kind == "max" else MinOfPolicy(built)
        if kind == "clamp":
            _require_keys(spec, kind, {"inner", "low", "high"})
            return ClampPolicy(
                inner=build_policy(spec["inner"]),
                low=int(spec.get("low", 0)),
                high=int(spec.get("high", 32)),
            )
        if kind == "offset":
            _require_keys(spec, kind, {"inner", "offset"})
            return OffsetPolicy(
                inner=build_policy(spec["inner"]),
                offset=int(spec["offset"]),
            )
        if kind == "adaptive":
            _require_keys(
                spec, kind, {"inner", "max_surcharge", "initial_load", "smoothing"}
            )
            return LoadAdaptivePolicy(
                inner=build_policy(spec["inner"]),
                max_surcharge=int(spec.get("max_surcharge", 4)),
                initial_load=float(spec.get("initial_load", 0.0)),
                smoothing=float(spec.get("smoothing", 0.5)),
            )
    except PolicySpecError:
        raise
    except KeyError as exc:
        raise PolicySpecError(f"{kind!r} spec missing key {exc}") from exc
    except (TypeError, ValueError) as exc:
        raise PolicySpecError(f"invalid {kind!r} spec: {exc}") from exc

    raise PolicySpecError(f"unknown policy kind {kind!r}")


def policy_to_spec(policy: Policy) -> dict[str, Any]:
    """Serialise a built-in policy back to its declarative spec."""
    if isinstance(policy, LinearPolicy):
        return {
            "kind": "linear",
            "base": policy.base,
            "slope": policy.slope,
            "name": policy.name,
        }
    if isinstance(policy, ErrorRangePolicy):
        return {
            "kind": "error-range",
            "epsilon": policy.epsilon,
            "base": policy.base,
            "name": policy.name,
        }
    if isinstance(policy, StepwisePolicy):
        return {
            "kind": "stepwise",
            "thresholds": list(policy.thresholds),
            "difficulties": list(policy.difficulties),
            "name": policy.name,
        }
    if isinstance(policy, ExponentialPolicy):
        return {
            "kind": "exponential",
            "base": policy.base,
            "growth": policy.growth,
            "scale": policy.scale,
            "name": policy.name,
        }
    if isinstance(policy, TablePolicy):
        return {"kind": "table", "entries": list(policy.entries), "name": policy.name}
    if isinstance(policy, MaxOfPolicy):
        return {"kind": "max", "members": [policy_to_spec(m) for m in policy.members]}
    if isinstance(policy, MinOfPolicy):
        return {"kind": "min", "members": [policy_to_spec(m) for m in policy.members]}
    if isinstance(policy, ClampPolicy):
        return {
            "kind": "clamp",
            "inner": policy_to_spec(policy.inner),
            "low": policy.low,
            "high": policy.high,
        }
    if isinstance(policy, OffsetPolicy):
        return {
            "kind": "offset",
            "inner": policy_to_spec(policy.inner),
            "offset": policy.offset,
        }
    if isinstance(policy, LoadAdaptivePolicy):
        return {
            "kind": "adaptive",
            "inner": policy_to_spec(policy.inner),
            "max_surcharge": policy.max_surcharge,
            "smoothing": policy.smoothing,
            "initial_load": policy.load,
        }
    raise PolicySpecError(
        f"cannot serialise policy of type {type(policy).__name__}"
    )


def load_policy_json(text: str) -> Policy:
    """Parse a JSON document into a policy."""
    try:
        spec = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PolicySpecError(f"invalid policy JSON: {exc}") from exc
    return build_policy(spec)


def dump_policy_json(policy: Policy, indent: int = 2) -> str:
    """Serialise ``policy`` to a JSON document."""
    return json.dumps(policy_to_spec(policy), indent=indent)
