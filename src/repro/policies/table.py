"""Table-driven policy: explicit difficulty per integer score.

The most direct encoding of an administrator's intent — one difficulty
per integer reputation score, exactly like the mapping tables in the
paper's §III.  Non-integer scores take the entry of their ceiling,
matching the paper's ``d_i = ceil(s_i + 1)`` convention of rounding
*against* the client.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

import numpy as np

from repro.policies.base import BasePolicy

__all__ = ["TablePolicy", "FixedPolicy"]


class FixedPolicy(BasePolicy):
    """Ignores the score entirely: every client gets the same difficulty.

    Combined with any model this is classic uniform PoW — the baseline
    the paper's adaptive issuer is compared against.  ``FixedPolicy(0)``
    disables puzzles altogether (every digest meets difficulty 0).
    """

    def __init__(self, difficulty: int = 0, name: str | None = None) -> None:
        super().__init__()
        if difficulty < 0:
            raise ValueError(f"difficulty must be >= 0, got {difficulty}")
        self.difficulty = difficulty
        self._name = name or f"fixed({difficulty})"

    @property
    def name(self) -> str:
        return self._name

    def _difficulty(self, score: float, rng: random.Random) -> int:
        return self.difficulty

    def _difficulty_batch(self, scores: np.ndarray, rng: random.Random):
        return np.full(scores.shape, self.difficulty, dtype=np.int64)

    def describe(self) -> str:
        return f"{self.name}: difficulty = {self.difficulty} for all scores"


class TablePolicy(BasePolicy):
    """Explicit per-score difficulty table.

    Parameters
    ----------
    entries:
        Difficulties for integer scores 0..N (N = len(entries) - 1); the
        domain becomes [0, N].  Must be non-decreasing so worse clients
        never get easier puzzles.
    """

    def __init__(self, entries: Sequence[int], name: str | None = None) -> None:
        entries = tuple(int(d) for d in entries)
        if len(entries) < 2:
            raise ValueError("table needs at least two entries")
        if any(d < 0 for d in entries):
            raise ValueError(f"difficulties must be >= 0: {entries}")
        if any(b < a for a, b in zip(entries, entries[1:])):
            raise ValueError(f"difficulties must be non-decreasing: {entries}")
        super().__init__(domain=(0.0, float(len(entries) - 1)))
        self.entries = entries
        self._entries_arr = np.array(entries, dtype=np.int64)
        self._name = name or f"table({len(entries)} entries)"

    @property
    def name(self) -> str:
        return self._name

    def _difficulty(self, score: float, rng: random.Random) -> int:
        return self.entries[int(math.ceil(score))]

    def _difficulty_batch(self, scores: np.ndarray, rng: random.Random):
        return self._entries_arr[np.ceil(scores).astype(np.int64)]

    def describe(self) -> str:
        return f"{self.name}: {list(self.entries)}"
