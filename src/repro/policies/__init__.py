"""Policy engine: reputation score → puzzle difficulty mappings.

The paper's three evaluated policies are exposed as factories mirroring
its §III naming, alongside the generalised/extension policies and the
declarative spec DSL:

>>> import random
>>> from repro.policies import policy_1, policy_2, policy_3
>>> rng = random.Random(0)
>>> [policy_1().difficulty_for(s, rng) for s in range(3)]
[1, 2, 3]
>>> [policy_2().difficulty_for(s, rng) for s in range(3)]
[5, 6, 7]
"""

from repro.core.registry import Registry
from repro.policies.adaptive import LoadAdaptivePolicy
from repro.policies.base import SCORE_DOMAIN, BasePolicy
from repro.policies.composite import (
    ClampPolicy,
    MaxOfPolicy,
    MinOfPolicy,
    OffsetPolicy,
)
from repro.policies.dsl import (
    build_policy,
    dump_policy_json,
    load_policy_json,
    policy_to_spec,
)
from repro.policies.error_range import ErrorRangePolicy, policy_3
from repro.policies.exponential import ExponentialPolicy
from repro.policies.fractional import FractionalLinearPolicy
from repro.policies.retarget import RetargetingPolicy
from repro.policies.linear import LinearPolicy, policy_1, policy_2
from repro.policies.stepwise import StepwisePolicy
from repro.policies.table import FixedPolicy, TablePolicy

__all__ = [
    "BasePolicy",
    "SCORE_DOMAIN",
    "LinearPolicy",
    "ErrorRangePolicy",
    "StepwisePolicy",
    "ExponentialPolicy",
    "FractionalLinearPolicy",
    "RetargetingPolicy",
    "TablePolicy",
    "FixedPolicy",
    "LoadAdaptivePolicy",
    "MaxOfPolicy",
    "MinOfPolicy",
    "ClampPolicy",
    "OffsetPolicy",
    "policy_1",
    "policy_2",
    "policy_3",
    "build_policy",
    "policy_to_spec",
    "load_policy_json",
    "dump_policy_json",
    "POLICY_REGISTRY",
    "paper_policies",
]

#: Registry of the paper's named policies plus general factories.
POLICY_REGISTRY: Registry = Registry("policy")
POLICY_REGISTRY.register("policy-1", policy_1)
POLICY_REGISTRY.register("policy-2", policy_2)
POLICY_REGISTRY.register("policy-3", policy_3)
POLICY_REGISTRY.register("linear", LinearPolicy)
POLICY_REGISTRY.register("error-range", ErrorRangePolicy)
POLICY_REGISTRY.register("stepwise", StepwisePolicy)
POLICY_REGISTRY.register("exponential", ExponentialPolicy)
POLICY_REGISTRY.register("table", TablePolicy)
POLICY_REGISTRY.register("fixed", FixedPolicy)
# Registry spelling of the load-adaptive surcharge over the paper's
# policy-2, so declarative recipes (FrameworkSpec) can request it —
# notably the parallel driver's cross-shard load exchange.
POLICY_REGISTRY.register(
    "adaptive-2", lambda: LoadAdaptivePolicy(inner=policy_2())
)


def paper_policies(epsilon: float = 2.5) -> tuple[
    LinearPolicy, LinearPolicy, ErrorRangePolicy
]:
    """The three policies evaluated in the paper's Figure 2, in order."""
    return policy_1(), policy_2(), policy_3(epsilon)
