"""Exponential-tax policy.

A linear difficulty ladder doubles the *work* per score point (work is
``2**d``).  Sometimes an operator wants the ladder itself to accelerate:
barely-suspicious clients pay almost nothing while clearly-hostile ones
fall off a cliff.  :class:`ExponentialPolicy` provides that shape:

``difficulty = base + floor(scale * (growth ** score - 1))``

so the difficulty curve is convex in the score.
"""

from __future__ import annotations

import math
import random

import numpy as np

from repro.policies.base import BasePolicy

__all__ = ["ExponentialPolicy"]


class ExponentialPolicy(BasePolicy):
    """Convex score → difficulty mapping.

    Parameters
    ----------
    base:
        Difficulty at score 0.
    growth:
        Per-score-point multiplier (> 1).
    scale:
        Vertical scale of the exponential term.
    """

    def __init__(
        self,
        base: int = 1,
        growth: float = 1.3,
        scale: float = 1.0,
        name: str | None = None,
    ) -> None:
        super().__init__()
        if base < 0:
            raise ValueError(f"base must be >= 0, got {base}")
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        self.base = base
        self.growth = growth
        self.scale = scale
        self._name = name or f"exponential(growth={growth:g})"

    @property
    def name(self) -> str:
        return self._name

    def _difficulty(self, score: float, rng: random.Random) -> int:
        return self.base + int(
            math.floor(self.scale * (self.growth**score - 1.0))
        )

    def _difficulty_batch(self, scores: np.ndarray, rng: random.Random):
        return self.base + np.floor(
            self.scale * (self.growth**scores - 1.0)
        ).astype(np.int64)

    def describe(self) -> str:
        return (
            f"{self.name}: difficulty = {self.base} + "
            f"floor({self.scale:g} * ({self.growth:g}^R - 1))"
        )
