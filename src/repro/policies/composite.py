"""Policy combinators.

Real deployments compose postures: "at least as hard as the baseline",
"never above the emergency cap", "hardest of the region policies".
These combinators keep each rule small and testable while satisfying the
:class:`~repro.core.interfaces.Policy` protocol themselves.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.interfaces import Policy

__all__ = ["MaxOfPolicy", "MinOfPolicy", "ClampPolicy", "OffsetPolicy"]


class MaxOfPolicy:
    """The hardest verdict among member policies wins (fail-closed)."""

    def __init__(self, members: Sequence[Policy]) -> None:
        if not members:
            raise ValueError("MaxOfPolicy needs at least one member")
        self.members = tuple(members)

    @property
    def name(self) -> str:
        return f"max({','.join(m.name for m in self.members)})"

    def difficulty_for(self, score: float, rng: random.Random) -> int:
        return max(m.difficulty_for(score, rng) for m in self.members)


class MinOfPolicy:
    """The gentlest verdict among member policies wins (fail-open)."""

    def __init__(self, members: Sequence[Policy]) -> None:
        if not members:
            raise ValueError("MinOfPolicy needs at least one member")
        self.members = tuple(members)

    @property
    def name(self) -> str:
        return f"min({','.join(m.name for m in self.members)})"

    def difficulty_for(self, score: float, rng: random.Random) -> int:
        return min(m.difficulty_for(score, rng) for m in self.members)


class ClampPolicy:
    """Clamps an inner policy's output into ``[low, high]``."""

    def __init__(self, inner: Policy, low: int = 0, high: int = 32) -> None:
        if low < 0:
            raise ValueError(f"low must be >= 0, got {low}")
        if high < low:
            raise ValueError(f"high {high} must be >= low {low}")
        self.inner = inner
        self.low = low
        self.high = high

    @property
    def name(self) -> str:
        return f"clamp({self.inner.name},[{self.low},{self.high}])"

    def difficulty_for(self, score: float, rng: random.Random) -> int:
        return min(max(self.inner.difficulty_for(score, rng), self.low), self.high)


class OffsetPolicy:
    """Adds a fixed offset to an inner policy (floored at zero)."""

    def __init__(self, inner: Policy, offset: int) -> None:
        self.inner = inner
        self.offset = int(offset)

    @property
    def name(self) -> str:
        sign = "+" if self.offset >= 0 else ""
        return f"offset({self.inner.name},{sign}{self.offset})"

    def difficulty_for(self, score: float, rng: random.Random) -> int:
        return max(0, self.inner.difficulty_for(score, rng) + self.offset)
