"""Stepwise (piecewise-constant) policies.

An operator often thinks in bands — "good / suspicious / hostile" —
rather than per-point difficulties.  :class:`StepwisePolicy` maps score
bands to fixed difficulties; it is also the natural encoding for
security postures like "free below 3, expensive above 8".
"""

from __future__ import annotations

import random
from typing import Sequence

import numpy as np

from repro.policies.base import BasePolicy

__all__ = ["StepwisePolicy"]


class StepwisePolicy(BasePolicy):
    """Piecewise-constant mapping defined by ascending thresholds.

    Parameters
    ----------
    thresholds:
        Strictly increasing score cut-points ``t_1 < ... < t_k`` within
        the domain.
    difficulties:
        ``k + 1`` difficulty levels: scores below ``t_1`` get
        ``difficulties[0]``, scores in ``[t_i, t_{i+1})`` get
        ``difficulties[i]``, scores ≥ ``t_k`` get ``difficulties[k]``.
        Levels must be non-decreasing — a policy that got *easier* for
        worse clients would invert the framework's core property.
    """

    def __init__(
        self,
        thresholds: Sequence[float],
        difficulties: Sequence[int],
        name: str | None = None,
    ) -> None:
        super().__init__()
        thresholds = tuple(float(t) for t in thresholds)
        difficulties = tuple(int(d) for d in difficulties)
        if len(difficulties) != len(thresholds) + 1:
            raise ValueError(
                f"need {len(thresholds) + 1} difficulties for "
                f"{len(thresholds)} thresholds, got {len(difficulties)}"
            )
        if any(b <= a for a, b in zip(thresholds, thresholds[1:])):
            raise ValueError(f"thresholds must be strictly increasing: {thresholds}")
        if any(d < 0 for d in difficulties):
            raise ValueError(f"difficulties must be >= 0: {difficulties}")
        if any(b < a for a, b in zip(difficulties, difficulties[1:])):
            raise ValueError(
                f"difficulties must be non-decreasing: {difficulties}"
            )
        low, high = self.domain
        if thresholds and (thresholds[0] <= low or thresholds[-1] > high):
            raise ValueError(
                f"thresholds must lie inside ({low}, {high}]: {thresholds}"
            )
        self.thresholds = thresholds
        self.difficulties = difficulties
        self._thresholds_arr = np.array(thresholds, dtype=np.float64)
        self._difficulties_arr = np.array(difficulties, dtype=np.int64)
        self._name = name or f"stepwise({len(difficulties)} bands)"

    @property
    def name(self) -> str:
        return self._name

    def _difficulty(self, score: float, rng: random.Random) -> int:
        for i, threshold in enumerate(self.thresholds):
            if score < threshold:
                return self.difficulties[i]
        return self.difficulties[-1]

    def _difficulty_batch(self, scores: np.ndarray, rng: random.Random):
        # side="right" places a score equal to a threshold in the band
        # above it, matching the scalar `score < threshold` walk.
        bands = np.searchsorted(self._thresholds_arr, scores, side="right")
        return self._difficulties_arr[bands]

    def describe(self) -> str:
        bands = ", ".join(
            f"<{t:g}→{d}" for t, d in zip(self.thresholds, self.difficulties)
        )
        return f"{self.name}: {bands}, else→{self.difficulties[-1]}"
