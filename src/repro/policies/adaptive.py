"""Load-adaptive policy wrapper.

The paper notes the inflicted work "is adaptive and can be tuned".  One
natural tuning signal is server load: under attack, shift the whole
difficulty ladder up; in quiet periods, relax it.  :class:`LoadAdaptivePolicy`
wraps any inner policy and adds a load-dependent difficulty surcharge.

Load is reported by the caller (the simulator's server reports its
pending-request ratio) via :meth:`observe_load`; the wrapper is
otherwise a drop-in :class:`Policy`.

The smoothed load estimate lives in an
:class:`~repro.state.AdmissionStateStore` namespace (``policy-load``,
key ``load``), so a gateway worker's difficulty posture survives a
restart along with the rest of the admission state.
"""

from __future__ import annotations

import math
import random

from repro.core.interfaces import Policy
from repro.state import AdmissionStateStore, InMemoryStateStore

__all__ = ["LoadAdaptivePolicy"]


class LoadAdaptivePolicy:
    """Adds ``ceil(max_surcharge * load)`` to an inner policy's output.

    Parameters
    ----------
    inner:
        The base score → difficulty policy.
    max_surcharge:
        Extra difficulty bits applied at full load (load = 1.0).
    initial_load:
        Starting load estimate in [0, 1].
    smoothing:
        Exponential-moving-average factor for :meth:`observe_load`; 1.0
        means "trust the latest sample completely".
    store:
        Admission state store holding the load estimate; a private
        in-memory store is created when omitted.
    namespace:
        Store namespace name, for stacks running several adaptive
        policies over one store.
    """

    _KEY = "load"

    def __init__(
        self,
        inner: Policy,
        max_surcharge: int = 4,
        initial_load: float = 0.0,
        smoothing: float = 0.5,
        *,
        store: AdmissionStateStore | None = None,
        namespace: str = "policy-load",
    ) -> None:
        if max_surcharge < 0:
            raise ValueError(f"max_surcharge must be >= 0, got {max_surcharge}")
        if not 0.0 <= initial_load <= 1.0:
            raise ValueError(f"initial_load must be in [0, 1], got {initial_load}")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        self.inner = inner
        self.max_surcharge = max_surcharge
        self.smoothing = smoothing
        self.store = store if store is not None else InMemoryStateStore()
        self.state_namespace = namespace
        self._state = self.store.namespace(namespace)
        # A restored store already carries the warmed estimate; only a
        # cold table takes the configured starting value.
        if self._KEY not in self._state:
            self._state[self._KEY] = float(initial_load)

    def bind_store(
        self,
        store: AdmissionStateStore,
        namespace: str | None = None,
    ) -> None:
        """Re-home the load estimate into ``store``.

        Policies are often constructed before the framework (and its
        store) exist — the registry and the policy DSL know nothing
        about stores — so :class:`~repro.core.framework.AIPoWFramework`
        calls this on any policy that offers it, bringing the load
        estimate under the framework's ``snapshot()``/``restore()``.
        A value already present in the target store (a restored
        snapshot) wins; otherwise the current estimate carries over.
        ``namespace`` lets the caller disambiguate when several
        adaptive policies share one store (the framework suffixes
        nested wrappers so their estimates stay independent).
        """
        previous = self.load
        self.store = store
        if namespace is not None:
            self.state_namespace = namespace
        self._state = store.namespace(self.state_namespace)
        if self._KEY not in self._state:
            self._state[self._KEY] = previous

    @property
    def name(self) -> str:
        return f"adaptive({self.inner.name},+{self.max_surcharge})"

    @property
    def load(self) -> float:
        """The current smoothed load estimate in [0, 1]."""
        return float(self._state.get(self._KEY, 0.0))

    def observe_load(self, load: float) -> None:
        """Feed a fresh load sample in [0, 1] (values outside are clamped)."""
        load = min(max(float(load), 0.0), 1.0)
        self._state[self._KEY] = (
            (1 - self.smoothing) * self.load + self.smoothing * load
        )

    def surcharge(self) -> int:
        """The extra difficulty currently applied on top of ``inner``."""
        return int(math.ceil(self.max_surcharge * self.load))

    def difficulty_for(self, score: float, rng: random.Random) -> int:
        return self.inner.difficulty_for(score, rng) + self.surcharge()

    def describe(self) -> str:
        return (
            f"{self.name}: inner + ceil({self.max_surcharge} * load), "
            f"load={self.load:.2f}"
        )
