"""Load-adaptive policy wrapper.

The paper notes the inflicted work "is adaptive and can be tuned".  One
natural tuning signal is server load: under attack, shift the whole
difficulty ladder up; in quiet periods, relax it.  :class:`LoadAdaptivePolicy`
wraps any inner policy and adds a load-dependent difficulty surcharge.

Load is reported by the caller (the simulator's server reports its
pending-request ratio) via :meth:`observe_load`; the wrapper is
otherwise a drop-in :class:`Policy`.
"""

from __future__ import annotations

import math
import random

from repro.core.interfaces import Policy

__all__ = ["LoadAdaptivePolicy"]


class LoadAdaptivePolicy:
    """Adds ``ceil(max_surcharge * load)`` to an inner policy's output.

    Parameters
    ----------
    inner:
        The base score → difficulty policy.
    max_surcharge:
        Extra difficulty bits applied at full load (load = 1.0).
    initial_load:
        Starting load estimate in [0, 1].
    smoothing:
        Exponential-moving-average factor for :meth:`observe_load`; 1.0
        means "trust the latest sample completely".
    """

    def __init__(
        self,
        inner: Policy,
        max_surcharge: int = 4,
        initial_load: float = 0.0,
        smoothing: float = 0.5,
    ) -> None:
        if max_surcharge < 0:
            raise ValueError(f"max_surcharge must be >= 0, got {max_surcharge}")
        if not 0.0 <= initial_load <= 1.0:
            raise ValueError(f"initial_load must be in [0, 1], got {initial_load}")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        self.inner = inner
        self.max_surcharge = max_surcharge
        self.smoothing = smoothing
        self._load = initial_load

    @property
    def name(self) -> str:
        return f"adaptive({self.inner.name},+{self.max_surcharge})"

    @property
    def load(self) -> float:
        """The current smoothed load estimate in [0, 1]."""
        return self._load

    def observe_load(self, load: float) -> None:
        """Feed a fresh load sample in [0, 1] (values outside are clamped)."""
        load = min(max(float(load), 0.0), 1.0)
        self._load = (1 - self.smoothing) * self._load + self.smoothing * load

    def surcharge(self) -> int:
        """The extra difficulty currently applied on top of ``inner``."""
        return int(math.ceil(self.max_surcharge * self._load))

    def difficulty_for(self, score: float, rng: random.Random) -> int:
        return self.inner.difficulty_for(score, rng) + self.surcharge()

    def describe(self) -> str:
        return (
            f"{self.name}: inner + ceil({self.max_surcharge} * load), "
            f"load={self._load:.2f}"
        )
