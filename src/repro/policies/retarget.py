"""Rate-retargeting policy: the score-blind adaptive baseline.

Classic PoW defenses without an AI model adjust one global difficulty
to hold the *served-request rate* at a sustainable target (Bitcoin's
retargeting, kaPoW's load-based tuning).  :class:`RetargetingPolicy`
implements that baseline: it ignores the reputation score entirely and
retargets the shared difficulty from observed throughput.

Its role in this reproduction is contrast: the `throttle` experiment's
"uniform-pow" column uses a *fixed* uniform difficulty; this policy is
the strongest score-blind alternative, and it still cannot discriminate
— benign clients pay exactly what attackers pay.  The AI-assisted
issuer's advantage is *who* pays, not *how much* total work is issued.
"""

from __future__ import annotations

import math
import random

__all__ = ["RetargetingPolicy"]


class RetargetingPolicy:
    """Holds served throughput near a target by moving one difficulty.

    Parameters
    ----------
    target_rate:
        Desired served requests per second.
    initial_difficulty:
        Starting point of the shared difficulty.
    min_difficulty / max_difficulty:
        Clamp bounds for the retargeted difficulty.
    window:
        Seconds of observation folded into each adjustment.
    max_step:
        Largest difficulty change per adjustment (damping, like
        Bitcoin's 4x retarget clamp).
    """

    def __init__(
        self,
        target_rate: float = 50.0,
        initial_difficulty: int = 5,
        min_difficulty: int = 0,
        max_difficulty: int = 32,
        window: float = 1.0,
        max_step: float = 2.0,
    ) -> None:
        if target_rate <= 0:
            raise ValueError(f"target_rate must be > 0, got {target_rate}")
        if not min_difficulty <= initial_difficulty <= max_difficulty:
            raise ValueError(
                "need min_difficulty <= initial_difficulty <= max_difficulty"
            )
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        if max_step <= 0:
            raise ValueError(f"max_step must be > 0, got {max_step}")
        self.target_rate = target_rate
        self.min_difficulty = min_difficulty
        self.max_difficulty = max_difficulty
        self.window = window
        self.max_step = max_step
        self._difficulty = float(initial_difficulty)
        self._window_start: float | None = None
        self._window_count = 0
        self.adjustments = 0

    @property
    def name(self) -> str:
        return f"retarget({self.target_rate:g}/s)"

    @property
    def current_difficulty(self) -> float:
        """The shared difficulty as last retargeted."""
        return self._difficulty

    def observe_served(self, now: float) -> None:
        """Record one served request at time ``now``; retarget on window end.

        The adjustment is logarithmic — observed/target rate ratio maps
        to a difficulty delta of ``log2(ratio)`` (work doubles per bit),
        clamped to ``max_step``.
        """
        if self._window_start is None:
            self._window_start = now
            self._window_count = 1
            return
        self._window_count += 1
        elapsed = now - self._window_start
        if elapsed < self.window:
            return
        rate = self._window_count / elapsed
        delta = math.log2(max(rate / self.target_rate, 1e-9))
        delta = max(-self.max_step, min(self.max_step, delta))
        self._difficulty = min(
            float(self.max_difficulty),
            max(float(self.min_difficulty), self._difficulty + delta),
        )
        self.adjustments += 1
        self._window_start = now
        self._window_count = 0

    def difficulty_for(self, score: float, rng: random.Random) -> int:
        """Score-blind: every client gets the current shared difficulty."""
        return int(round(self._difficulty))

    def describe(self) -> str:
        return (
            f"{self.name}: shared difficulty {self._difficulty:.2f}, "
            f"retargets every {self.window:g}s toward "
            f"{self.target_rate:g} served/s"
        )
