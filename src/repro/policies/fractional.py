"""Fractional (real-valued) difficulty policies.

Pairs with :mod:`repro.pow.fractional`: a fractional policy maps the
reputation score to a *real* difficulty so expected work can track the
score continuously rather than in power-of-two steps.  The class still
satisfies the integer :class:`~repro.core.interfaces.Policy` protocol
(rounding up, against the client) so it drops into the standard
framework; callers using the fractional PoW path read
:meth:`fractional_difficulty_for` instead.
"""

from __future__ import annotations

import math
import random

import numpy as np

from repro.policies.base import BasePolicy

__all__ = ["FractionalLinearPolicy"]


class FractionalLinearPolicy(BasePolicy):
    """``difficulty = slope * score + base`` with no rounding.

    Parameters
    ----------
    base:
        Real difficulty at score 0.
    slope:
        Real difficulty increase per score point.
    """

    def __init__(
        self,
        base: float = 1.0,
        slope: float = 1.0,
        name: str | None = None,
    ) -> None:
        super().__init__()
        if base < 0:
            raise ValueError(f"base must be >= 0, got {base}")
        if slope <= 0:
            raise ValueError(f"slope must be > 0, got {slope}")
        self.base = base
        self.slope = slope
        self._name = name or f"fractional-linear(base={base:g})"

    @property
    def name(self) -> str:
        return self._name

    def fractional_difficulty_for(self, score: float) -> float:
        """The real-valued difficulty (what the fractional solver uses)."""
        low, high = self.domain
        if not low <= score <= high:
            from repro.core.errors import PolicyDomainError

            raise PolicyDomainError(score, low, high)
        return self.slope * score + self.base

    def fractional_difficulty_batch(self, scores) -> np.ndarray:
        """Vector of real-valued difficulties (batch of the above)."""
        scores = np.asarray(scores, dtype=np.float64)
        low, high = self.domain
        in_domain = (scores >= low) & (scores <= high)
        if not in_domain.all():
            from repro.core.errors import PolicyDomainError

            offender = scores[np.argmin(in_domain)]
            raise PolicyDomainError(float(offender), low, high)
        return self.slope * scores + self.base

    def _difficulty(self, score: float, rng: random.Random) -> int:
        # Integer protocol compatibility: round against the client.
        return int(math.ceil(self.fractional_difficulty_for(score)))

    def _difficulty_batch(self, scores: np.ndarray, rng: random.Random):
        return np.ceil(self.slope * scores + self.base).astype(np.int64)

    def describe(self) -> str:
        return (
            f"{self.name}: difficulty = {self.slope:g} * R + {self.base:g} "
            "(real-valued)"
        )
