"""Policy 3: error-range mapping (paper §III.B).

DAbR's score carries an error ε — the reported score may be higher or
lower than the ground truth.  Policy 3 compensates by randomising the
difficulty over the error interval: for a score ``s`` with
``d = ceil(s + 1)``, the issued difficulty is uniform over the integer
interval ``[ceil(d - ε), ceil(d + ε)]`` (clamped below at 0).

The paper observes that the resulting rate of latency increase sits
between Policy 1 and Policy 2; the `fig2` bench reproduces that
ordering, and the ``abl-epsilon`` bench sweeps ε.

Note the ceiling semantics the paper specifies: for *fractional* ε the
interval is asymmetric **upward** — ε = 2.5 yields ``[d-2, d+3]`` — so
the expected difficulty exceeds ``d`` and the policy's latency growth
lands between the two linear policies, exactly as Figure 2 shows.  The
default ε is therefore 2.5 (roughly the DAbR error envelope measured by
the `acc80` experiment's ``epsilon_p90``).
"""

from __future__ import annotations

import math
import random

import numpy as np

from repro.policies.base import BasePolicy

__all__ = ["ErrorRangePolicy", "policy_3"]


class ErrorRangePolicy(BasePolicy):
    """Uniform-over-error-interval difficulty mapping.

    Parameters
    ----------
    epsilon:
        The AI model's score error ε (≥ 0).  ``epsilon=0`` degenerates
        to the deterministic ``d = ceil(s + 1)`` — i.e. Policy 1 on
        integer scores.
    base:
        Offset used when computing ``d = ceil(s + base)``; the paper
        uses 1.
    name:
        Registry/reporting name.
    """

    def __init__(
        self,
        epsilon: float = 2.5,
        base: float = 1.0,
        name: str | None = None,
    ) -> None:
        super().__init__()
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        if base < 0:
            raise ValueError(f"base must be >= 0, got {base}")
        self.epsilon = epsilon
        self.base = base
        self._name = name or f"error-range(eps={epsilon:g})"

    @property
    def name(self) -> str:
        return self._name

    def interval(self, score: float) -> tuple[int, int]:
        """The closed integer difficulty interval for ``score``.

        ``d_i = ceil(s_i + base)``; bounds are ``ceil(d_i ± ε)`` with the
        lower bound clamped at 0.
        """
        d = math.ceil(score + self.base)
        low = max(0, math.ceil(d - self.epsilon))
        high = math.ceil(d + self.epsilon)
        return low, high

    def _difficulty(self, score: float, rng: random.Random) -> int:
        low, high = self.interval(score)
        return rng.randint(low, high)

    def _difficulty_batch(self, scores: np.ndarray, rng: random.Random):
        # Interval arithmetic is vectorised; the uniform draws stay
        # sequential in array order so a batch consumes ``rng`` exactly
        # like the equivalent scalar loop.
        d = np.ceil(scores + self.base)
        lows = np.maximum(0.0, np.ceil(d - self.epsilon)).astype(np.int64)
        highs = np.ceil(d + self.epsilon).astype(np.int64)
        randint = rng.randint
        return np.array(
            [randint(int(lo), int(hi)) for lo, hi in zip(lows, highs)],
            dtype=np.int64,
        )

    def describe(self) -> str:
        return (
            f"{self.name}: difficulty ~ U[ceil(d-ε), ceil(d+ε)], "
            f"d = ceil(R + {self.base:g}), ε = {self.epsilon:g}"
        )


def policy_3(epsilon: float = 2.5) -> ErrorRangePolicy:
    """The paper's Policy 3 with the given DAbR error ε (default 2.5)."""
    return ErrorRangePolicy(epsilon=epsilon, name="policy-3")
