"""Linear reputation → difficulty mappings (paper §III.A).

Policy 1 maps a 1-difficult puzzle to reputation score 0, a 2-difficult
puzzle to score 1, and so on: ``d = ceil(R) + 1``.  Policy 2 starts the
ladder at difficulty 5 — ``d = ceil(R) + 5`` — so latency "increases
significantly with higher reputation scores, delaying service for
untrustworthy clients".

Both are instances of :class:`LinearPolicy`, which generalises the
pattern to ``d = round-up(slope * R) + base``; the ablation bench sweeps
``base`` to chart the honest-tax/attacker-throttle trade-off.
"""

from __future__ import annotations

import math
import random

import numpy as np

from repro.policies.base import BasePolicy

__all__ = ["LinearPolicy", "policy_1", "policy_2"]


class LinearPolicy(BasePolicy):
    """``difficulty = ceil(slope * score) + base``.

    Parameters
    ----------
    base:
        Difficulty at score 0.  The paper's Policy 1 uses 1, Policy 2
        uses 5.
    slope:
        Difficulty increase per score point (default 1, as in the
        paper, where integer scores map to consecutive difficulties).
    name:
        Registry/reporting name; defaults to ``linear(base=..)``.
    """

    def __init__(
        self,
        base: int = 1,
        slope: float = 1.0,
        name: str | None = None,
    ) -> None:
        super().__init__()
        if base < 0:
            raise ValueError(f"base must be >= 0, got {base}")
        if slope <= 0:
            raise ValueError(f"slope must be > 0, got {slope}")
        self.base = base
        self.slope = slope
        self._name = name or f"linear(base={base})"

    @property
    def name(self) -> str:
        return self._name

    def _difficulty(self, score: float, rng: random.Random) -> int:
        return int(math.ceil(self.slope * score)) + self.base

    def _difficulty_batch(self, scores: np.ndarray, rng: random.Random):
        return np.ceil(self.slope * scores).astype(np.int64) + self.base

    def describe(self) -> str:
        return (
            f"{self.name}: difficulty = ceil({self.slope:g} * R) + {self.base}"
        )


def policy_1() -> LinearPolicy:
    """The paper's Policy 1: score 0 → 1-difficult, score 10 → 11-difficult."""
    return LinearPolicy(base=1, name="policy-1")


def policy_2() -> LinearPolicy:
    """The paper's Policy 2: score 0 → 5-difficult, score 10 → 15-difficult."""
    return LinearPolicy(base=5, name="policy-2")
