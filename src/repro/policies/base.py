"""Policy engine scaffolding.

A *policy* is the paper's rule-based strategy mapping a client's
reputation score R ∈ [0, 10] to a puzzle difficulty.  Policies receive
the RNG explicitly (Policy 3 is randomized) and declare their domain so
out-of-range scores fail loudly rather than silently clamping an
attacker to an easy puzzle.

:class:`BasePolicy` provides domain validation and a shared
``describe()``; subclasses implement ``_difficulty``.
"""

from __future__ import annotations

import random

import numpy as np

from repro.core.errors import PolicyDomainError

__all__ = ["BasePolicy", "SCORE_DOMAIN"]

#: The closed reputation-score domain shared by all built-in policies.
SCORE_DOMAIN = (0.0, 10.0)


class BasePolicy:
    """Template base class for difficulty policies.

    Subclasses implement :meth:`_difficulty`, receiving a validated
    score; the base class enforces the domain and the non-negativity of
    the result.
    """

    #: Overridden by subclasses with a short registry-friendly name.
    policy_name = "base"

    def __init__(
        self, domain: tuple[float, float] = SCORE_DOMAIN
    ) -> None:
        low, high = domain
        if not low < high:
            raise ValueError(f"invalid domain [{low}, {high}]")
        self.domain = (float(low), float(high))

    @property
    def name(self) -> str:
        """Registry-friendly policy name."""
        return self.policy_name

    def difficulty_for(self, score: float, rng: random.Random) -> int:
        """Map ``score`` to a puzzle difficulty (leading zero bits).

        Raises :class:`~repro.core.errors.PolicyDomainError` when the
        score is outside the declared domain.
        """
        low, high = self.domain
        score = float(score)
        if not low <= score <= high:
            raise PolicyDomainError(score, low, high)
        difficulty = self._difficulty(score, rng)
        if difficulty < 0:
            raise ValueError(
                f"{type(self).__name__} produced negative difficulty "
                f"{difficulty} for score {score}"
            )
        return difficulty

    def difficulty_batch(
        self, scores, rng: random.Random
    ) -> np.ndarray:
        """Vector of difficulties for a vector of scores.

        Semantics mirror :meth:`difficulty_for` element-wise: the whole
        batch is domain-validated up front (the first offending score is
        reported), randomized policies consume ``rng`` once per score in
        array order, and the non-negativity of every result is enforced.
        Returns an ``int64`` array aligned with ``scores``.
        """
        scores = np.asarray(scores, dtype=np.float64)
        low, high = self.domain
        in_domain = (scores >= low) & (scores <= high)
        if not in_domain.all():
            offender = scores[np.argmin(in_domain)]
            raise PolicyDomainError(float(offender), low, high)
        difficulties = np.asarray(self._difficulty_batch(scores, rng))
        if difficulties.size and difficulties.min() < 0:
            index = int(np.argmin(difficulties))
            raise ValueError(
                f"{type(self).__name__} produced negative difficulty "
                f"{int(difficulties[index])} for score {float(scores[index])}"
            )
        return difficulties.astype(np.int64)

    def describe(self) -> str:
        """Human-readable one-line description for reports and the CLI."""
        return f"{self.name} on scores in [{self.domain[0]}, {self.domain[1]}]"

    def _difficulty(self, score: float, rng: random.Random) -> int:
        raise NotImplementedError

    def _difficulty_batch(self, scores: np.ndarray, rng: random.Random):
        """Batch hook; the default loops :meth:`_difficulty` per score.

        Subclasses with closed-form mappings override this with a
        vectorised implementation; third-party subclasses that only
        implement ``_difficulty`` keep working through this fallback.
        """
        return np.array(
            [self._difficulty(float(score), rng) for score in scores],
            dtype=np.int64,
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
