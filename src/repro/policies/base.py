"""Policy engine scaffolding.

A *policy* is the paper's rule-based strategy mapping a client's
reputation score R ∈ [0, 10] to a puzzle difficulty.  Policies receive
the RNG explicitly (Policy 3 is randomized) and declare their domain so
out-of-range scores fail loudly rather than silently clamping an
attacker to an easy puzzle.

:class:`BasePolicy` provides domain validation and a shared
``describe()``; subclasses implement ``_difficulty``.
"""

from __future__ import annotations

import random

from repro.core.errors import PolicyDomainError

__all__ = ["BasePolicy", "SCORE_DOMAIN"]

#: The closed reputation-score domain shared by all built-in policies.
SCORE_DOMAIN = (0.0, 10.0)


class BasePolicy:
    """Template base class for difficulty policies.

    Subclasses implement :meth:`_difficulty`, receiving a validated
    score; the base class enforces the domain and the non-negativity of
    the result.
    """

    #: Overridden by subclasses with a short registry-friendly name.
    policy_name = "base"

    def __init__(
        self, domain: tuple[float, float] = SCORE_DOMAIN
    ) -> None:
        low, high = domain
        if not low < high:
            raise ValueError(f"invalid domain [{low}, {high}]")
        self.domain = (float(low), float(high))

    @property
    def name(self) -> str:
        """Registry-friendly policy name."""
        return self.policy_name

    def difficulty_for(self, score: float, rng: random.Random) -> int:
        """Map ``score`` to a puzzle difficulty (leading zero bits).

        Raises :class:`~repro.core.errors.PolicyDomainError` when the
        score is outside the declared domain.
        """
        low, high = self.domain
        score = float(score)
        if not low <= score <= high:
            raise PolicyDomainError(score, low, high)
        difficulty = self._difficulty(score, rng)
        if difficulty < 0:
            raise ValueError(
                f"{type(self).__name__} produced negative difficulty "
                f"{difficulty} for score {score}"
            )
        return difficulty

    def describe(self) -> str:
        """Human-readable one-line description for reports and the CLI."""
        return f"{self.name} on scores in [{self.domain[0]}, {self.domain[1]}]"

    def _difficulty(self, score: float, rng: random.Random) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
