"""Client population profiles.

A *profile* describes one class of clients the workload generator can
mint: where their addresses come from, how malicious they are (the
latent intensity driving their traffic features), and how fast they
hash.  Profiles let benches build the paper's implicit populations —
"authentic requests" vs "untrustworthy connections" — and richer mixes
for the throttling experiment.
"""

from __future__ import annotations

import dataclasses

__all__ = ["ClientProfile", "BENIGN_PROFILE", "MALICIOUS_PROFILE", "STEALTH_PROFILE"]


@dataclasses.dataclass(frozen=True, slots=True)
class ClientProfile:
    """One class of clients in a workload.

    Parameters
    ----------
    name:
        Profile label used in metrics breakdowns.
    subnet:
        CIDR block client addresses are drawn from.
    intensity_alpha / intensity_beta:
        Beta distribution of each client's latent maliciousness
        intensity (matches the corpus generator's convention:
        ground-truth score = 10 × intensity).
    hash_rate:
        Client hash evaluations per second (solve speed).
    request_rate:
        Mean requests per second *per client* (exponential inter-arrival
        times in open-loop workloads).
    patience:
        Seconds a client will grind on one puzzle before abandoning.
    """

    name: str
    subnet: str
    intensity_alpha: float
    intensity_beta: float
    hash_rate: float = 37_000.0
    request_rate: float = 1.0
    patience: float = 30.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("profile name must be non-empty")
        if self.intensity_alpha <= 0 or self.intensity_beta <= 0:
            raise ValueError("intensity beta parameters must be > 0")
        if self.hash_rate <= 0:
            raise ValueError(f"hash_rate must be > 0, got {self.hash_rate}")
        if self.request_rate <= 0:
            raise ValueError(f"request_rate must be > 0, got {self.request_rate}")
        if self.patience <= 0:
            raise ValueError(f"patience must be > 0, got {self.patience}")

    @property
    def mean_intensity(self) -> float:
        """Mean of the profile's intensity distribution."""
        return self.intensity_alpha / (self.intensity_alpha + self.intensity_beta)


#: Ordinary users: low maliciousness, human-paced request rates.  The
#: default hash rate (≈37 k evaluations/s) matches the calibrated
#: 27 µs/attempt of TimingConfig.
BENIGN_PROFILE = ClientProfile(
    name="benign",
    subnet="23.0.0.0/8",
    intensity_alpha=2.0,
    intensity_beta=6.0,
    request_rate=0.5,
)

#: Flood attackers: high maliciousness, machine-paced request rates.
MALICIOUS_PROFILE = ClientProfile(
    name="malicious",
    subnet="110.0.0.0/8",
    intensity_alpha=6.0,
    intensity_beta=2.0,
    request_rate=20.0,
    patience=10.0,
)

#: Stealthy attackers: feature footprint overlapping the benign
#: population (hard for the AI model), moderate request rates.
STEALTH_PROFILE = ClientProfile(
    name="stealth",
    subnet="77.0.0.0/8",
    intensity_alpha=3.5,
    intensity_beta=3.5,
    request_rate=5.0,
    patience=20.0,
)
