"""Workload generation: minting clients and request traces.

The generator turns :class:`~repro.traffic.profiles.ClientProfile`
descriptions into concrete :class:`SimClientSpec` populations and
replayable :class:`~repro.traffic.trace.Trace` objects.  Features are
synthesized by the *same* process the reputation corpus uses
(:func:`repro.reputation.dataset.synthesize_features`), so a model
trained on the corpus faces statistically identical traffic.
"""

from __future__ import annotations

import dataclasses
import itertools
import random
from typing import Iterable, Sequence

from repro.core.records import ClientRequest
from repro.reputation.dataset import synthesize_features
from repro.reputation.features import FeatureSchema
from repro.traffic.arrivals import poisson_arrivals
from repro.traffic.ipaddr import random_ip_in_subnet
from repro.traffic.profiles import ClientProfile
from repro.traffic.trace import Trace, TraceEntry

__all__ = ["SimClientSpec", "WorkloadGenerator", "make_population"]


@dataclasses.dataclass(frozen=True, slots=True)
class SimClientSpec:
    """One concrete client minted from a profile.

    The client's traffic features are fixed at mint time (an IP's
    threat-intelligence attributes change slowly relative to a run), so
    every request from this client carries the same feature vector.
    """

    ip: str
    profile: ClientProfile
    intensity: float
    features: dict[str, float]

    def __post_init__(self) -> None:
        if not 0.0 <= self.intensity <= 1.0:
            raise ValueError(f"intensity must be in [0, 1], got {self.intensity}")

    @property
    def true_score(self) -> float:
        """Ground-truth reputation score (10 × intensity)."""
        return 10.0 * self.intensity


def make_population(
    profile: ClientProfile,
    count: int,
    rng: random.Random,
    schema: FeatureSchema | None = None,
    noise_sd: float = 3.4,
) -> list[SimClientSpec]:
    """Mint ``count`` clients from ``profile``.

    Addresses are unique within the returned population.
    """
    if count <= 0:
        raise ValueError(f"count must be > 0, got {count}")
    clients: list[SimClientSpec] = []
    used_ips: set[str] = set()
    for _ in range(count):
        ip = random_ip_in_subnet(profile.subnet, rng)
        while ip in used_ips:
            ip = random_ip_in_subnet(profile.subnet, rng)
        used_ips.add(ip)
        intensity = rng.betavariate(
            profile.intensity_alpha, profile.intensity_beta
        )
        clients.append(
            SimClientSpec(
                ip=ip,
                profile=profile,
                intensity=intensity,
                features=synthesize_features(
                    intensity, rng, noise_sd=noise_sd, schema=schema
                ),
            )
        )
    return clients


class WorkloadGenerator:
    """Builds client populations and open-loop request traces.

    Parameters
    ----------
    seed:
        Master seed; every product of the generator is a deterministic
        function of it.
    schema:
        Feature schema for synthesized traffic; defaults to canonical.
    noise_sd:
        Feature noise, matching the corpus the model was trained on.
    """

    def __init__(
        self,
        seed: int = 42,
        schema: FeatureSchema | None = None,
        noise_sd: float = 3.4,
    ) -> None:
        self._rng = random.Random(seed)
        self.seed = seed
        self.schema = schema
        self.noise_sd = noise_sd
        self._request_counter = itertools.count(1)

    def population(
        self, profile: ClientProfile, count: int
    ) -> list[SimClientSpec]:
        """Mint ``count`` clients of ``profile``."""
        return make_population(
            profile, count, self._rng, schema=self.schema, noise_sd=self.noise_sd
        )

    def request_for(
        self,
        client: SimClientSpec,
        timestamp: float,
        resource: str = "/index.html",
    ) -> ClientRequest:
        """One request from ``client`` at ``timestamp``."""
        return ClientRequest(
            client_ip=client.ip,
            resource=resource,
            timestamp=timestamp,
            features=client.features,
            request_id=f"req-{next(self._request_counter)}",
        )

    def open_loop_trace(
        self,
        clients: Sequence[SimClientSpec],
        duration: float,
        resource: str = "/index.html",
    ) -> Trace:
        """Poisson open-loop trace over ``clients`` for ``duration`` seconds.

        Each client issues requests at its profile's ``request_rate``;
        the union is returned time-ordered.
        """
        if not clients:
            raise ValueError("need at least one client")
        entries: list[TraceEntry] = []
        for client in clients:
            for timestamp in poisson_arrivals(
                client.profile.request_rate, duration, self._rng
            ):
                entries.append(
                    TraceEntry(
                        request=self.request_for(client, timestamp, resource),
                        profile=client.profile.name,
                        true_score=client.true_score,
                    )
                )
        return Trace(entries)

    def mixed_trace(
        self,
        populations: Iterable[tuple[ClientProfile, int]],
        duration: float,
    ) -> tuple[Trace, list[SimClientSpec]]:
        """Mint several populations and interleave their open-loop traffic.

        Returns the combined trace plus the flat client list for
        per-class analysis.
        """
        all_clients: list[SimClientSpec] = []
        for profile, count in populations:
            all_clients.extend(self.population(profile, count))
        return self.open_loop_trace(all_clients, duration), all_clients
