"""Small IPv4 utilities used by the traffic and attack generators.

The library never routes packets; addresses are identifiers that (a) key
reputation lookups, (b) enter the puzzle's immutable prefix, and (c) let
workload generators carve client populations into subnets.  A tiny
purpose-built helper set beats pulling in :mod:`ipaddress` objects that
would then be stringified everywhere.
"""

from __future__ import annotations

import random

__all__ = [
    "ip_to_int",
    "int_to_ip",
    "is_valid_ipv4",
    "random_ip_in_subnet",
    "subnet_of",
]


def ip_to_int(ip: str) -> int:
    """Dotted-quad → 32-bit integer.  Raises ``ValueError`` when invalid."""
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 literal: {ip!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
            raise ValueError(f"invalid IPv4 literal: {ip!r}")
        octet = int(part)
        if octet > 255:
            raise ValueError(f"invalid IPv4 literal: {ip!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """32-bit integer → dotted-quad."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"value {value} outside 32-bit range")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def is_valid_ipv4(ip: str) -> bool:
    """True when ``ip`` parses as a dotted-quad IPv4 literal."""
    try:
        ip_to_int(ip)
    except ValueError:
        return False
    return True


def random_ip_in_subnet(cidr: str, rng: random.Random) -> str:
    """A uniformly random host address inside ``cidr`` (e.g. "10.1.0.0/16").

    Network and broadcast addresses are avoided for /30 and wider
    prefixes, mirroring real host addressing.
    """
    base, _, prefix_str = cidr.partition("/")
    if not prefix_str:
        raise ValueError(f"CIDR needs a prefix length: {cidr!r}")
    prefix = int(prefix_str)
    if not 0 <= prefix <= 32:
        raise ValueError(f"prefix length must be in [0, 32]: {cidr!r}")
    network = ip_to_int(base) & (~0 << (32 - prefix) & 0xFFFFFFFF)
    host_bits = 32 - prefix
    size = 1 << host_bits
    if host_bits >= 2:
        offset = rng.randint(1, size - 2)
    else:
        offset = rng.randint(0, size - 1)
    return int_to_ip(network + offset)


def subnet_of(ip: str, prefix: int = 24) -> str:
    """The ``/prefix`` network containing ``ip``, in CIDR notation."""
    if not 0 <= prefix <= 32:
        raise ValueError(f"prefix length must be in [0, 32], got {prefix}")
    network = ip_to_int(ip) & (~0 << (32 - prefix) & 0xFFFFFFFF)
    return f"{int_to_ip(network)}/{prefix}"
