"""Arrival processes for open-loop workload generation.

Request inter-arrival timing is its own concern: the same client
population can trickle (Poisson), burst (on/off), or ramp (flash crowd /
attack onset).  Each process yields arrival timestamps; generators zip
them with client picks.
"""

from __future__ import annotations

import random
from typing import Iterator

__all__ = ["poisson_arrivals", "uniform_arrivals", "onoff_arrivals", "ramp_arrivals"]


def poisson_arrivals(
    rate: float, duration: float, rng: random.Random, start: float = 0.0
) -> Iterator[float]:
    """Poisson process: exponential inter-arrivals at ``rate`` per second."""
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    t = start
    end = start + duration
    while True:
        t += rng.expovariate(rate)
        if t >= end:
            return
        yield t


def uniform_arrivals(
    rate: float, duration: float, start: float = 0.0
) -> Iterator[float]:
    """Deterministic evenly-spaced arrivals at ``rate`` per second."""
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    interval = 1.0 / rate
    t = start + interval
    end = start + duration
    while t < end:
        yield t
        t += interval


def onoff_arrivals(
    rate: float,
    duration: float,
    rng: random.Random,
    on_seconds: float = 1.0,
    off_seconds: float = 4.0,
    start: float = 0.0,
) -> Iterator[float]:
    """Bursty on/off process: Poisson at ``rate`` during ON windows.

    Windows alternate deterministically (``on_seconds`` on, then
    ``off_seconds`` off); within an ON window arrivals are Poisson.
    Models pulsing DDoS floods.
    """
    if on_seconds <= 0 or off_seconds < 0:
        raise ValueError("on_seconds must be > 0 and off_seconds >= 0")
    window_start = start
    end = start + duration
    while window_start < end:
        window_end = min(window_start + on_seconds, end)
        yield from poisson_arrivals(
            rate, window_end - window_start, rng, start=window_start
        )
        window_start = window_end + off_seconds


def ramp_arrivals(
    peak_rate: float,
    duration: float,
    rng: random.Random,
    start: float = 0.0,
) -> Iterator[float]:
    """Linearly ramping Poisson process from 0 up to ``peak_rate``.

    Implemented by thinning a homogeneous process at the peak rate;
    models attack onset and flash crowds.
    """
    if peak_rate <= 0:
        raise ValueError(f"peak_rate must be > 0, got {peak_rate}")
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    for t in poisson_arrivals(peak_rate, duration, rng, start=start):
        accept_probability = (t - start) / duration
        if rng.random() < accept_probability:
            yield t
