"""Trace records: replayable request streams.

A :class:`TraceEntry` is one timestamped request with its generating
client's metadata (profile, ground-truth intensity).  A :class:`Trace`
is an ordered collection with JSONL persistence, so a workload generated
once can be replayed against different policies — the discipline that
makes policy A/B comparisons apples-to-apples.

Schema versions
---------------
* **v1** (legacy): one JSON object per line, request + ground truth
  only.  Files have no header; the loader still reads them.
* **v2**: the first line is a :class:`TraceHeader` (format version,
  a hash of the framework configuration that produced the decisions,
  the workload seed, free-form metadata); each entry line may carry
  the admission :class:`~repro.core.records.DecisionRecord` the serving
  path produced for that request.  v2 is what the record/replay
  subsystem (:mod:`repro.replay`) writes and diffs.

Unknown format versions, corrupt or truncated lines, and duplicate
request ids all fail loudly with the offending line number
(:class:`~repro.core.errors.TraceFormatError`): replay correctness
depends on the trace being exactly what was recorded.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Iterable, Iterator, Sequence

from repro.core.errors import TraceFormatError
from repro.core.records import ClientRequest, DecisionRecord

__all__ = ["TraceEntry", "Trace", "TraceHeader", "TRACE_FORMAT_VERSION"]

#: The trace format this module writes.  Readers accept v1 (headerless)
#: and v2; anything else fails loudly.
TRACE_FORMAT_VERSION = 2

#: Key identifying a header line.  v1 entry lines never contain it.
_HEADER_KEY = "trace_format"


@dataclasses.dataclass(frozen=True, slots=True)
class TraceHeader:
    """First line of a v2 trace file.

    Parameters
    ----------
    version:
        Trace format version; this module writes
        :data:`TRACE_FORMAT_VERSION`.
    config_hash:
        Hash of the framework recipe the decisions were recorded under
        (see :func:`repro.replay.spec_hash`); empty for request-only
        traces.  Replayers compare it against the replay-side recipe so
        a diff against decisions from a different pipeline is flagged
        before any request is fed.
    seed:
        Workload master seed, when the trace came from a generator.
    meta:
        Free-form JSON-safe metadata (campaign name, recorder, ...).
    """

    version: int = TRACE_FORMAT_VERSION
    config_hash: str = ""
    seed: int | None = None
    meta: dict = dataclasses.field(default_factory=dict)

    def to_json(self) -> str:
        """Serialise to the header line."""
        return json.dumps(
            {
                _HEADER_KEY: self.version,
                "config_hash": self.config_hash,
                "seed": self.seed,
                "meta": dict(self.meta),
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str, *, line_number: int = 1) -> "TraceHeader":
        """Parse a header line; loud failure on unknown versions."""
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"corrupt trace header: {exc}", line=line_number
            ) from exc
        version = data.get(_HEADER_KEY)
        if version != TRACE_FORMAT_VERSION:
            raise TraceFormatError(
                f"unknown trace format version {version!r} "
                f"(this reader understands v{TRACE_FORMAT_VERSION} and "
                "headerless v1 files)",
                line=line_number,
            )
        seed = data.get("seed")
        return cls(
            version=int(version),
            config_hash=str(data.get("config_hash", "")),
            seed=None if seed is None else int(seed),
            meta=dict(data.get("meta") or {}),
        )


@dataclasses.dataclass(frozen=True, slots=True)
class TraceEntry:
    """One generated request plus its ground truth.

    ``true_score`` (10 × the generating client's intensity) is carried
    alongside so experiments can measure how the AI model's mistakes
    propagate into latency — without peeking during scoring.

    ``decision`` (schema v2) is the admission decision the recorded
    serving path produced for this request, when the trace was captured
    by :class:`repro.replay.TraceRecorder`; request-only traces leave
    it ``None``.
    """

    request: ClientRequest
    profile: str
    true_score: float
    decision: DecisionRecord | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.true_score <= 10.0:
            raise ValueError(
                f"true_score must be in [0, 10], got {self.true_score}"
            )

    def to_json(self) -> str:
        """Serialise to one JSON line."""
        data = {
            "ip": self.request.client_ip,
            "resource": self.request.resource,
            "timestamp": self.request.timestamp,
            "features": dict(self.request.features),
            "request_id": self.request.request_id,
            "profile": self.profile,
            "true_score": self.true_score,
        }
        if self.decision is not None:
            data["decision"] = self.decision.to_mapping()
        return json.dumps(data, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "TraceEntry":
        """Parse a line produced by :meth:`to_json`."""
        data = json.loads(line)
        request = ClientRequest(
            client_ip=data["ip"],
            resource=data["resource"],
            timestamp=float(data["timestamp"]),
            features=data["features"],
            request_id=data.get("request_id", ""),
        )
        decision = data.get("decision")
        return cls(
            request=request,
            profile=data["profile"],
            true_score=float(data["true_score"]),
            decision=(
                DecisionRecord.from_mapping(decision)
                if decision is not None
                else None
            ),
        )


class Trace:
    """An ordered, replayable sequence of :class:`TraceEntry`.

    Entries are kept sorted by request timestamp; iteration yields them
    in arrival order, which is what the simulator consumes.  ``header``
    is the v2 file header; traces built in memory may leave it ``None``
    (they serialise as v2 with a default header).
    """

    def __init__(
        self,
        entries: Iterable[TraceEntry] = (),
        header: TraceHeader | None = None,
    ) -> None:
        self._entries: list[TraceEntry] = sorted(
            entries, key=lambda e: e.request.timestamp
        )
        self.header = header

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> TraceEntry:
        return self._entries[index]

    @property
    def entries(self) -> Sequence[TraceEntry]:
        return tuple(self._entries)

    def append(self, entry: TraceEntry) -> None:
        """Insert ``entry`` keeping timestamp order."""
        import bisect

        keys = [e.request.timestamp for e in self._entries]
        index = bisect.bisect_right(keys, entry.request.timestamp)
        self._entries.insert(index, entry)

    def duration(self) -> float:
        """Time span covered by the trace (0 for empty/singleton traces)."""
        if len(self._entries) < 2:
            return 0.0
        return (
            self._entries[-1].request.timestamp
            - self._entries[0].request.timestamp
        )

    def by_profile(self) -> dict[str, list[TraceEntry]]:
        """Entries grouped by generating profile name."""
        groups: dict[str, list[TraceEntry]] = {}
        for entry in self._entries:
            groups.setdefault(entry.profile, []).append(entry)
        return groups

    def decisions(self) -> list[DecisionRecord]:
        """The recorded decision stream, in trace order (v2 traces)."""
        return [
            entry.decision
            for entry in self._entries
            if entry.decision is not None
        ]

    def dump_jsonl(self, path) -> None:
        """Write the trace as v2 JSONL (header line + one entry per line)."""
        header = self.header or TraceHeader()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(header.to_json() + "\n")
            for entry in self._entries:
                handle.write(entry.to_json() + "\n")

    @classmethod
    def load_jsonl(cls, path) -> "Trace":
        """Load a trace written by :meth:`dump_jsonl` (or a legacy v1 file).

        Fails loudly — with the offending line number — on unknown
        format versions, corrupt lines, and duplicate request ids
        (replay matches decisions by request id, so a duplicated entry
        would silently corrupt every comparison downstream).
        """
        entries: list[TraceEntry] = []
        header: TraceHeader | None = None
        seen_ids: set[str] = set()
        with open(path, encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                if header is None and not entries:
                    if _looks_like_header(line):
                        header = TraceHeader.from_json(
                            line, line_number=line_number
                        )
                        continue
                try:
                    entry = TraceEntry.from_json(line)
                except (
                    json.JSONDecodeError,
                    KeyError,
                    TypeError,
                    ValueError,
                ) as exc:
                    raise TraceFormatError(
                        f"corrupt trace entry: {exc}", line=line_number
                    ) from exc
                request_id = entry.request.request_id
                if request_id:
                    if request_id in seen_ids:
                        raise TraceFormatError(
                            f"duplicate request_id {request_id!r} "
                            "(replay needs unique ids)",
                            line=line_number,
                        )
                    seen_ids.add(request_id)
                entries.append(entry)
        return cls(entries, header=header)


def _looks_like_header(line: str) -> bool:
    """True when ``line`` parses as a JSON object with a version key.

    Unparseable first lines are *not* headers — they fall through to
    entry parsing, whose error message carries the line number.
    """
    try:
        data = json.loads(line)
    except json.JSONDecodeError:
        return False
    return isinstance(data, dict) and _HEADER_KEY in data
