"""Trace records: replayable request streams.

A :class:`TraceEntry` is one timestamped request with its generating
client's metadata (profile, ground-truth intensity).  A :class:`Trace`
is an ordered collection with JSONL persistence, so a workload generated
once can be replayed against different policies — the discipline that
makes policy A/B comparisons apples-to-apples.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Iterable, Iterator, Sequence

from repro.core.records import ClientRequest

__all__ = ["TraceEntry", "Trace"]


@dataclasses.dataclass(frozen=True, slots=True)
class TraceEntry:
    """One generated request plus its ground truth.

    ``true_score`` (10 × the generating client's intensity) is carried
    alongside so experiments can measure how the AI model's mistakes
    propagate into latency — without peeking during scoring.
    """

    request: ClientRequest
    profile: str
    true_score: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.true_score <= 10.0:
            raise ValueError(
                f"true_score must be in [0, 10], got {self.true_score}"
            )

    def to_json(self) -> str:
        """Serialise to one JSON line."""
        return json.dumps(
            {
                "ip": self.request.client_ip,
                "resource": self.request.resource,
                "timestamp": self.request.timestamp,
                "features": dict(self.request.features),
                "request_id": self.request.request_id,
                "profile": self.profile,
                "true_score": self.true_score,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "TraceEntry":
        """Parse a line produced by :meth:`to_json`."""
        data = json.loads(line)
        request = ClientRequest(
            client_ip=data["ip"],
            resource=data["resource"],
            timestamp=float(data["timestamp"]),
            features=data["features"],
            request_id=data.get("request_id", ""),
        )
        return cls(
            request=request,
            profile=data["profile"],
            true_score=float(data["true_score"]),
        )


class Trace:
    """An ordered, replayable sequence of :class:`TraceEntry`.

    Entries are kept sorted by request timestamp; iteration yields them
    in arrival order, which is what the simulator consumes.
    """

    def __init__(self, entries: Iterable[TraceEntry] = ()) -> None:
        self._entries: list[TraceEntry] = sorted(
            entries, key=lambda e: e.request.timestamp
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> TraceEntry:
        return self._entries[index]

    @property
    def entries(self) -> Sequence[TraceEntry]:
        return tuple(self._entries)

    def append(self, entry: TraceEntry) -> None:
        """Insert ``entry`` keeping timestamp order."""
        import bisect

        keys = [e.request.timestamp for e in self._entries]
        index = bisect.bisect_right(keys, entry.request.timestamp)
        self._entries.insert(index, entry)

    def duration(self) -> float:
        """Time span covered by the trace (0 for empty/singleton traces)."""
        if len(self._entries) < 2:
            return 0.0
        return (
            self._entries[-1].request.timestamp
            - self._entries[0].request.timestamp
        )

    def by_profile(self) -> dict[str, list[TraceEntry]]:
        """Entries grouped by generating profile name."""
        groups: dict[str, list[TraceEntry]] = {}
        for entry in self._entries:
            groups.setdefault(entry.profile, []).append(entry)
        return groups

    def dump_jsonl(self, path) -> None:
        """Write the trace as JSONL to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            for entry in self._entries:
                handle.write(entry.to_json() + "\n")

    @classmethod
    def load_jsonl(cls, path) -> "Trace":
        """Load a trace written by :meth:`dump_jsonl`."""
        entries = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    entries.append(TraceEntry.from_json(line))
        return cls(entries)
