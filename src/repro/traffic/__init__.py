"""Traffic substrate: IP utilities, client profiles, workload generation."""

from repro.traffic.arrivals import (
    onoff_arrivals,
    poisson_arrivals,
    ramp_arrivals,
    uniform_arrivals,
)
from repro.traffic.generator import (
    SimClientSpec,
    WorkloadGenerator,
    make_population,
)
from repro.traffic.ipaddr import (
    int_to_ip,
    ip_to_int,
    is_valid_ipv4,
    random_ip_in_subnet,
    subnet_of,
)
from repro.traffic.profiles import (
    BENIGN_PROFILE,
    MALICIOUS_PROFILE,
    STEALTH_PROFILE,
    ClientProfile,
)
from repro.traffic.trace import Trace, TraceEntry

__all__ = [
    "ClientProfile",
    "BENIGN_PROFILE",
    "MALICIOUS_PROFILE",
    "STEALTH_PROFILE",
    "SimClientSpec",
    "WorkloadGenerator",
    "make_population",
    "Trace",
    "TraceEntry",
    "poisson_arrivals",
    "uniform_arrivals",
    "onoff_arrivals",
    "ramp_arrivals",
    "ip_to_int",
    "int_to_ip",
    "is_valid_ipv4",
    "random_ip_in_subnet",
    "subnet_of",
]
