"""Process-parallel fastsim: hash-sharded shared-memory SoA cohorts.

Single-core, :class:`~repro.net.sim.fastsim.FastSimulation` does 100k
agents in ~0.2s — but wall-clock does not scale with cores, which keeps
multi-million-agent campaigns at minutes.  This module is the multi-core
lever: :class:`ParallelSimulation` partitions an
:class:`~repro.net.sim.agents.AgentPopulation` by a hash of each
agent's packed IP (the array-rate analogue of the BLAKE2b address
sharding :class:`~repro.state.sharding.ShardedStateStore` and the
gateway cluster use), places each shard's SoA arrays in
``multiprocessing.shared_memory`` blocks, and runs one independent
``FastSimulation`` per worker process, lock-stepped in fixed simulated-
time **epochs** with a barrier at every epoch boundary.

Execution model
---------------
Each shard is a complete miniature of the single-process engine: its
own calendar queue, FIFO server, link queues and RNG stream, over its
own agents only.  The epoch barrier exists for one reason — a coherent
*global* load signal: at each boundary every worker publishes its
:class:`~repro.policies.adaptive.LoadAdaptivePolicy` EWMA into a shared
control block and folds the other shards' values back in fixed shard
order 0..N-1.  Deterministic policies (the campaign default) exchange
nothing, and the barrier is pure synchronisation.

Parity envelope (DESIGN §1.8)
-----------------------------
* **Per shard, bit-identical.**  Epoch slicing drains the calendar
  queue through :meth:`CalendarQueue.drain_until`, which visits exactly
  the cohorts an unbounded drain would, in the same (time, FIFO)
  order — so a shard's decision stream, outcome buffers and report are
  bit-identical to a single-process ``FastSimulation`` run over the
  same sub-population with the same seed (``shard_seed``).
* **Globally, counts and extremes exact; means isclose.**  The parent
  rebuilds the global collector by folding shard outcome rows in shard
  order, which is a different accumulation order than one interleaved
  run — sums of floats reassociate, so global means agree to
  ``isclose``, never guaranteed bitwise.
* **Load-adaptive runs are reproducible, not shard-invariant.**  Each
  worker observes its own FIFO backlog per request plus the peers'
  EWMAs once per epoch; the signal depends on the shard count and the
  epoch length (both recorded), but is deterministic given them.
* **Links are per-shard.**  A link profile shared by two populations
  shares one uplink queue *within* a shard; cross-shard coupling
  through a common bottleneck is out of envelope (each worker owns its
  own :class:`~repro.net.sim.links.LinkSet`).

Shared-memory lifecycle
-----------------------
Segments are named per run (``repro-parsim-<token>-…``), created and
unlinked by the parent in a ``try/finally`` that also covers SIGTERM
(a handler re-raises into the cleanup path) and worker crashes (the
parent monitors child exit codes, terminates stragglers, then
unlinks).  Workers only ever attach and close; spawned workers share
the parent's ``resource_tracker`` process, so the attach aliases the
create-side registration and the parent's single ``unlink`` retires
it cleanly.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import time
import traceback
import uuid
from multiprocessing import shared_memory
from queue import Empty
from typing import Mapping, Sequence

import numpy as np

from repro.core.spec import FrameworkSpec
from repro.net.sim.agents import AgentPopulation
from repro.net.sim.links import _mix64
from repro.net.sim.simulation import ServerModel, SimulationReport

__all__ = [
    "ParallelReport",
    "ParallelSimulation",
    "partition_population",
    "phase_summary_from_snapshot",
    "shard_of_agents",
    "shard_seed",
]

#: Environment hook: a directory path makes every worker dump cProfile
#: stats to ``<dir>/parsim-worker-<shard>.pstats`` (``repro profile``).
PROFILE_DIR_ENV = "REPRO_PARSIM_PROFILE_DIR"
#: Test hook: a shard number makes that worker SIGKILL itself mid-run,
#: exercising the crash-cleanup path.
TEST_CRASH_ENV = "REPRO_PARSIM_TEST_CRASH"

_PARTITION_SALT = np.uint64(0x51A2D5EED)


# ----------------------------------------------------------------------
# Partitioning (the array-rate analogue of BLAKE2b address sharding)
# ----------------------------------------------------------------------
def shard_of_agents(packed_ips: np.ndarray, shards: int) -> np.ndarray:
    """Shard assignment per agent from the packed-IP hash.

    The object-world stores route by BLAKE2b over the address *string*
    (:func:`repro.state.sharding.stable_hash`); at array rates a Python
    hash per agent would cost seconds per million, so this uses the
    SplitMix64 mixer the link layer already derives per-address draws
    from — same property (uniform, deterministic, keyed by address,
    stable across processes), array speed.
    """
    mixed = _mix64(
        np.asarray(packed_ips, dtype=np.int64).astype(np.uint64)
        ^ _PARTITION_SALT
    )
    return (mixed % np.uint64(shards)).astype(np.int64)


def partition_population(
    population: AgentPopulation, shards: int
) -> list[np.ndarray]:
    """Global agent-index arrays per shard (each ascending)."""
    assign = shard_of_agents(population.packed_ips(), shards)
    return [np.nonzero(assign == s)[0] for s in range(shards)]


def shard_seed(seed: int, shard: int) -> int:
    """Decorrelated per-shard engine seed (deterministic in both args)."""
    mixed = _mix64(
        np.uint64([(seed & 0xFFFFFFFFFFFFFFFF) ^ (shard + 1)])
    )
    return int(mixed[0])


def phase_summary_from_snapshot(snapshot: Mapping) -> dict[str, dict]:
    """:meth:`PhaseTimer.summary`-shaped totals from a merged snapshot."""
    fields = {
        "sim_phase_seconds_total": "seconds",
        "sim_phase_cohorts_total": "cohorts",
        "sim_phase_items_total": "items",
    }
    out: dict[str, dict] = {}
    for metric in snapshot.get("metrics", ()):
        field = fields.get(metric.get("name"))
        if field is None:
            continue
        for row in metric.get("series", ()):
            phase = row.get("labels", {}).get("phase")
            if phase is None:
                continue
            stats = out.setdefault(
                phase, {"seconds": 0.0, "cohorts": 0, "items": 0}
            )
            stats[field] = row["value"]
    for stats in out.values():
        seconds = stats["seconds"]
        stats["items_per_second"] = (
            stats["items"] / seconds if seconds > 0 else 0.0
        )
        stats["cohorts"] = int(stats["cohorts"])
        stats["items"] = int(stats["items"])
    return dict(sorted(out.items()))


def render_phase_summary(summary: Mapping[str, Mapping]) -> str:
    """One-line phase rendering, mirroring :meth:`PhaseTimer.render`."""
    parts = [
        f"{phase} {stats['seconds']:.2f}s/{stats['cohorts']:,} cohorts"
        for phase, stats in summary.items()
    ]
    return ", ".join(parts) if parts else "(no phases timed)"


# ----------------------------------------------------------------------
# Shared-memory plumbing
# ----------------------------------------------------------------------
def _input_specs(n: int, k: int, m: int) -> dict[str, tuple[tuple, np.dtype]]:
    """Per-shard input array layout: (shape, dtype) by field name."""
    return {
        "features": ((n, k), np.dtype(np.float64)),
        "intensity": ((n,), np.dtype(np.float64)),
        "profile_id": ((n,), np.dtype(np.int32)),
        "ip_index": ((n,), np.dtype(np.int64)),
        "fire_times": ((m,), np.dtype(np.float64)),
        "fire_agents": ((m,), np.dtype(np.int64)),
    }


def _outcome_specs(m: int) -> dict[str, tuple[tuple, np.dtype]]:
    """Per-shard outcome array layout; ``m`` rows is a hard cap (one
    terminal outcome per fire at most)."""
    return {
        "out_count": ((1,), np.dtype(np.int64)),
        "out_cid": ((m,), np.dtype(np.int32)),
        "out_code": ((m,), np.dtype(np.int8)),
        "out_latency": ((m,), np.dtype(np.float64)),
        "out_score": ((m,), np.dtype(np.float64)),
        "out_difficulty": ((m,), np.dtype(np.float64)),
        "out_attempts": ((m,), np.dtype(np.float64)),
    }


def _segment_name(token: str, shard: int | None, field: str) -> str:
    if shard is None:
        return f"repro-parsim-{token}-{field}"
    return f"repro-parsim-{token}-s{shard}-{field}"


class _SegmentSet:
    """A named bundle of shared-memory-backed numpy arrays.

    The parent creates (and later unlinks) segments; workers attach and
    only ever close.  Spawned workers share the parent's resource-
    tracker process, so the attach-side registration aliases the
    create-side one and a worker exit neither unlinks a live segment
    nor leaves a leak warning behind — the parent's ``unlink`` (in a
    ``finally`` that also covers SIGTERM and crashes) is the single
    point of destruction.
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self.arrays: dict[str, np.ndarray] = {}

    def create(
        self,
        token: str,
        shard: int | None,
        specs: Mapping[str, tuple[tuple, np.dtype]],
    ) -> "_SegmentSet":
        for field, (shape, dtype) in specs.items():
            nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
            shm = shared_memory.SharedMemory(
                name=_segment_name(token, shard, field),
                create=True,
                size=nbytes,
            )
            self._segments.append(shm)
            self.arrays[field] = np.ndarray(
                shape, dtype=dtype, buffer=shm.buf
            )
        return self

    def attach(
        self,
        token: str,
        shard: int | None,
        specs: Mapping[str, tuple[tuple, np.dtype]],
    ) -> "_SegmentSet":
        for field, (shape, dtype) in specs.items():
            shm = shared_memory.SharedMemory(
                name=_segment_name(token, shard, field)
            )
            self._segments.append(shm)
            self.arrays[field] = np.ndarray(
                shape, dtype=dtype, buffer=shm.buf
            )
        return self

    def close(self) -> None:
        """Drop this process's mappings (segments stay alive)."""
        self.arrays.clear()
        for shm in self._segments:
            try:
                shm.close()
            except Exception:  # pragma: no cover - already closed
                pass

    def unlink(self) -> None:
        """Destroy the segments (parent only; idempotent)."""
        self.arrays.clear()
        for shm in self._segments:
            try:
                shm.close()
            except Exception:  # pragma: no cover - already closed
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class _WorkerConfig:
    """Everything a spawn-started worker needs, picklable."""

    token: str
    shard: int
    shards: int
    n_agents: int
    n_features: int
    n_fires: int
    profiles: tuple
    schema: object
    spec: FrameworkSpec
    attacker_specs: Mapping[str, Mapping]
    server: tuple[float, float, float] | None
    hash_rates: Mapping[str, float]
    patiences: Mapping[str, float]
    tick: float | None
    links: Mapping[str, str]
    links_seed: int
    seed: int
    epoch: float
    until: float | None
    pow_enabled: bool
    feedback: bool
    decision_log: bool
    barrier_timeout: float


def build_shard_simulation(config: "_WorkerConfig | ParallelSimulation", seed: int):
    """One shard's :class:`FastSimulation`, built from the picklable recipe.

    Shared by the workers and by the parity tests' single-process
    reference runs — both sides construct the engine through this one
    function, so "same recipe" is true by construction.
    """
    from repro.attacks import make_attacker
    from repro.net.sim.fastsim import FastSimulation
    from repro.net.sim.links import LinkSet
    from repro.obs.registry import PhaseTimer

    links = (
        LinkSet(config.links, seed=config.links_seed)
        if config.links
        else None
    )
    return FastSimulation(
        config.spec.build(),
        server_model=(
            ServerModel(*config.server)
            if config.server is not None
            else None
        ),
        seed=seed,
        pow_enabled=config.pow_enabled,
        solve_deciders={
            name: make_attacker(spec)
            for name, spec in config.attacker_specs.items()
        },
        hash_rates=dict(config.hash_rates),
        patiences=dict(config.patiences),
        tick=config.tick,
        links=links,
        phase_timer=PhaseTimer(),
        decision_log=config.decision_log,
    )


def _worker_main(config: _WorkerConfig, barrier, results) -> None:
    """Run one shard to completion inside a spawned process."""
    profiler = None
    profile_dir = os.environ.get(PROFILE_DIR_ENV)
    if profile_dir:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    crash_shard = os.environ.get(TEST_CRASH_ENV)
    segments = _SegmentSet()
    try:
        from repro.net.sim.fastsim import FastFeedback
        from repro.obs.registry import MetricsRegistry
        from repro.policies.adaptive import LoadAdaptivePolicy

        specs = dict(
            _input_specs(
                config.n_agents, config.n_features, config.n_fires
            )
        )
        specs.update(_outcome_specs(config.n_fires))
        segments.attach(config.token, config.shard, specs)
        control = _SegmentSet().attach(
            config.token, None, _control_specs(config.shards)
        )
        arrays = segments.arrays
        loads = control.arrays["loads"]
        flags = control.arrays["done"]

        population = AgentPopulation(
            profiles=config.profiles,
            profile_id=arrays["profile_id"],
            intensity=arrays["intensity"],
            features=arrays["features"],
            ip_index=arrays["ip_index"],
            schema=config.schema,
        )
        simulation = build_shard_simulation(config, seed=config.seed)
        feedback = (
            FastFeedback(config.n_agents) if config.feedback else None
        )
        simulation.start_fires(
            population,
            arrays["fire_times"],
            arrays["fire_agents"],
            until=config.until,
            feedback=feedback,
        )
        policy = simulation.framework.policy
        adaptive = policy if isinstance(policy, LoadAdaptivePolicy) else None

        if crash_shard is not None and int(crash_shard) == config.shard:
            # Mid-epoch hard kill: peers block at the barrier, the
            # parent detects the exit code and cleans up.
            os.kill(os.getpid(), signal.SIGKILL)

        bound = config.epoch
        more = True
        while True:
            if more:
                more = simulation.step(bound)
            if adaptive is not None:
                loads[config.shard] = adaptive.load
            flags[config.shard] = 0 if more else 1
            # Barrier 1: every shard has published load + done flag.
            barrier.wait(timeout=config.barrier_timeout)
            all_done = bool(np.all(flags != 0))
            if adaptive is not None and not all_done:
                # Fixed fold order (0..N-1, self excluded) keeps the
                # EWMA deterministic for a given shard count.
                for other in range(config.shards):
                    if other != config.shard:
                        adaptive.observe_load(float(loads[other]))
            # Barrier 2: everyone has *read* the epoch's values; only
            # now may the next epoch overwrite them.
            barrier.wait(timeout=config.barrier_timeout)
            if all_done:
                break
            bound += config.epoch

        report = simulation.finish()
        rows = simulation._buffers.export_rows(
            list(population.profile_names)
        )
        count = int(rows[0].size)
        arrays["out_count"][0] = count
        for field, column in zip(
            (
                "out_cid",
                "out_code",
                "out_latency",
                "out_score",
                "out_difficulty",
                "out_attempts",
            ),
            rows,
        ):
            arrays[field][:count] = column

        registry = MetricsRegistry()
        simulation.phase_timer.publish(registry)
        if report.link_stats is not None:
            report.link_stats.publish(registry)
        results.put(
            (
                config.shard,
                None,
                {
                    "requests": report.requests,
                    "events_processed": report.events_processed,
                    "duration": report.duration,
                    "arrival_batches": simulation.arrival_batches,
                    "largest_arrival_batch": simulation.largest_arrival_batch,
                    "link_stats": report.link_stats,
                    "snapshot": registry.snapshot(),
                    "decisions": simulation.decisions,
                    "offsets": (
                        feedback.offset.copy()
                        if feedback is not None
                        else None
                    ),
                },
            )
        )
        control.close()
    except BaseException:
        try:
            results.put((config.shard, traceback.format_exc(), None))
        except Exception:  # pragma: no cover - queue already broken
            pass
        raise SystemExit(1)
    finally:
        segments.close()
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(
                os.path.join(
                    profile_dir, f"parsim-worker-{config.shard}.pstats"
                )
            )


def _control_specs(shards: int) -> dict[str, tuple[tuple, np.dtype]]:
    return {
        "loads": ((shards,), np.dtype(np.float64)),
        "done": ((shards,), np.dtype(np.int64)),
    }


# ----------------------------------------------------------------------
# Parent driver
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ParallelReport:
    """A parallel run's merged result.

    ``report`` quacks like a single-process
    :class:`~repro.net.sim.simulation.SimulationReport`: global counts,
    extremes and outcome tallies are exact; means are fold-order
    dependent (see the module parity envelope).
    """

    report: SimulationReport
    procs: int
    epoch: float
    shard_members: tuple[np.ndarray, ...]
    shard_requests: tuple[int, ...]
    arrival_batches: int
    largest_arrival_batch: int
    metrics_snapshot: dict
    decisions: tuple[list, ...] | None
    feedback_offsets: np.ndarray | None

    def phase_summary(self) -> dict[str, dict]:
        """Merged per-phase totals across every worker."""
        return phase_summary_from_snapshot(self.metrics_snapshot)


class _Terminated(BaseException):
    """SIGTERM re-raised as an exception so ``finally`` cleanup runs."""


class ParallelSimulation:
    """Hash-sharded multi-process driver over ``FastSimulation``.

    Construction takes the same picklable *recipe* the gateway cluster
    ships to its workers — a :class:`~repro.core.spec.FrameworkSpec`
    plus attacker specs and scalar knobs — because live frameworks
    cannot cross a spawn boundary.  See the module docstring for the
    execution model and parity envelope.

    Parameters mirror :class:`FastSimulation` where they overlap;
    the additions are ``procs`` (worker count = shard count),
    ``epoch`` (simulated seconds per lock-step window),
    ``attacker_specs`` (JSON-style ``make_attacker`` specs per
    profile), ``links``/``links_seed`` (each worker builds its own
    :class:`~repro.net.sim.links.LinkSet`), ``feedback`` (thread a
    per-shard :class:`FastFeedback` table; offsets are scattered back
    into one global array), ``decision_log`` (collect per-cohort
    decision streams for parity assertions) and ``barrier_timeout``
    (hang backstop for the epoch barrier, seconds).
    """

    def __init__(
        self,
        spec: FrameworkSpec,
        *,
        procs: int,
        epoch: float = 0.25,
        seed: int = 1234,
        server: tuple[float, float, float] | None = None,
        attacker_specs: Mapping[str, Mapping] | None = None,
        hash_rates: Mapping[str, float] | None = None,
        patiences: Mapping[str, float] | None = None,
        tick: float | None = None,
        links: Mapping[str, str] | None = None,
        links_seed: int = 0,
        pow_enabled: bool = True,
        feedback: bool = False,
        decision_log: bool = False,
        barrier_timeout: float = 600.0,
    ) -> None:
        if procs < 1:
            raise ValueError(f"procs must be >= 1, got {procs}")
        if epoch <= 0:
            raise ValueError(f"epoch must be > 0, got {epoch}")
        if barrier_timeout <= 0:
            raise ValueError(
                f"barrier_timeout must be > 0, got {barrier_timeout}"
            )
        if spec.feedback:
            raise ValueError(
                "spec.feedback builds a stateful scoring wrapper, which "
                "the vectorized engine rejects; model behavioural "
                "feedback with feedback=True (the FastFeedback table) "
                "instead"
            )
        self.spec = spec
        self.procs = procs
        self.epoch = epoch
        self.seed = seed
        self.server = server
        self.attacker_specs = dict(attacker_specs or {})
        self.hash_rates = dict(hash_rates or {})
        self.patiences = dict(patiences or {})
        self.tick = tick
        self.links = dict(links or {})
        self.links_seed = links_seed
        self.pow_enabled = pow_enabled
        self.feedback = feedback
        self.decision_log = decision_log
        self.barrier_timeout = barrier_timeout

    # ------------------------------------------------------------------
    def run_fires(
        self,
        population: AgentPopulation,
        fire_times: np.ndarray,
        fire_agents: np.ndarray,
        until: float | None = None,
    ) -> ParallelReport:
        """Partition, fan out, lock-step, merge — the parallel hot path."""
        fire_times = np.asarray(fire_times, dtype=np.float64)
        fire_agents = np.asarray(fire_agents, dtype=np.int64)
        members = partition_population(population, self.procs)
        token = uuid.uuid4().hex[:12]
        assign = shard_of_agents(population.packed_ips(), self.procs)
        fire_shard = assign[fire_agents]

        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        created: list[_SegmentSet] = []
        workers: list = []
        old_handler = None
        handler_installed = False

        def _on_sigterm(signum, frame):
            raise _Terminated()

        try:
            try:
                old_handler = signal.signal(signal.SIGTERM, _on_sigterm)
                handler_installed = True
            except ValueError:
                # Not the main thread; the caller owns signal handling.
                pass

            control = _SegmentSet().create(
                token, None, _control_specs(self.procs)
            )
            created.append(control)
            control.arrays["loads"][:] = 0.0
            control.arrays["done"][:] = 0

            configs = []
            for shard in range(self.procs):
                shard_agents = members[shard]
                mask = fire_shard == shard
                shard_times = fire_times[mask]
                # Fires address agents shard-locally (positions in the
                # sub-population); members is ascending, so searchsorted
                # is an exact inverse of the gather.
                shard_fires = np.searchsorted(
                    shard_agents, fire_agents[mask]
                )
                sub = population.subset(shard_agents)
                specs = dict(
                    _input_specs(
                        len(sub),
                        population.features.shape[1],
                        int(shard_times.size),
                    )
                )
                specs.update(_outcome_specs(int(shard_times.size)))
                segments = _SegmentSet().create(token, shard, specs)
                created.append(segments)
                arrays = segments.arrays
                arrays["features"][:] = sub.features
                arrays["intensity"][:] = sub.intensity
                arrays["profile_id"][:] = sub.profile_id
                arrays["ip_index"][:] = sub.ip_index
                arrays["fire_times"][:] = shard_times
                arrays["fire_agents"][:] = shard_fires
                arrays["out_count"][0] = 0
                configs.append(
                    _WorkerConfig(
                        token=token,
                        shard=shard,
                        shards=self.procs,
                        n_agents=len(sub),
                        n_features=population.features.shape[1],
                        n_fires=int(shard_times.size),
                        profiles=population.profiles,
                        schema=population.schema,
                        spec=self.spec,
                        attacker_specs=self.attacker_specs,
                        server=self.server,
                        hash_rates=self.hash_rates,
                        patiences=self.patiences,
                        tick=self.tick,
                        links=self.links,
                        links_seed=self.links_seed,
                        seed=shard_seed(self.seed, shard),
                        epoch=self.epoch,
                        until=until,
                        pow_enabled=self.pow_enabled,
                        feedback=self.feedback,
                        decision_log=self.decision_log,
                        barrier_timeout=self.barrier_timeout,
                    )
                )

            barrier = ctx.Barrier(self.procs)
            results_queue = ctx.Queue()
            for config in configs:
                worker = ctx.Process(
                    target=_worker_main,
                    args=(config, barrier, results_queue),
                    daemon=True,
                )
                worker.start()
                workers.append(worker)

            payloads, errors = self._collect(workers, results_queue)
            if not errors:
                # Every shard reported; let workers retire on their own
                # so post-report work (profile dumps) completes before
                # the finally-block terminates stragglers.
                for worker in workers:
                    worker.join(timeout=30.0)
            if errors:
                detail = "\n".join(
                    f"--- shard {shard} ---\n{text}"
                    for shard, text in sorted(errors.items())
                )
                raise RuntimeError(
                    f"{len(errors)} of {self.procs} parsim workers "
                    f"failed:\n{detail}"
                )

            return self._merge(
                population, members, created, configs, payloads
            )
        finally:
            for worker in workers:
                if worker.is_alive():
                    worker.terminate()
            for worker in workers:
                worker.join(timeout=10.0)
            for segments in created:
                segments.unlink()
            if handler_installed:
                signal.signal(signal.SIGTERM, old_handler)

    # ------------------------------------------------------------------
    def _collect(self, workers, results_queue):
        """Drain worker results, watching exit codes for crashes."""
        payloads: dict[int, dict] = {}
        errors: dict[int, str] = {}
        pending = set(range(self.procs))
        while pending:
            try:
                shard, error, payload = results_queue.get(timeout=0.25)
            except Empty:
                pass
            else:
                pending.discard(shard)
                if error is not None:
                    errors[shard] = error
                else:
                    payloads[shard] = payload
                continue
            crashed = [
                shard
                for shard, worker in enumerate(workers)
                if worker.exitcode not in (None, 0)
                and shard in pending
                and shard not in errors
            ]
            if crashed:
                # Give already-queued error reports a moment to land,
                # then mark the rest as hard crashes.
                deadline = time.monotonic() + 2.0
                while pending and time.monotonic() < deadline:
                    try:
                        shard, error, payload = results_queue.get(
                            timeout=0.1
                        )
                    except Empty:
                        continue
                    pending.discard(shard)
                    if error is not None:
                        errors[shard] = error
                    else:
                        payloads[shard] = payload
                for shard in list(pending):
                    worker = workers[shard]
                    if worker.exitcode not in (None, 0):
                        errors[shard] = (
                            "worker died without a report (exit code "
                            f"{worker.exitcode})"
                        )
                        pending.discard(shard)
                if errors:
                    # Peers may be blocked at the epoch barrier waiting
                    # for the dead shard; nothing further is coming.
                    for shard in list(pending):
                        errors[shard] = (
                            "aborted: a sibling shard failed first"
                        )
                        pending.discard(shard)
        return payloads, errors

    def _merge(self, population, members, created, configs, payloads):
        """Fold shard outcomes/telemetry into one global report."""
        from repro.net.sim.fastsim import (
            _OutcomeBuffers,
            collector_from_buffers,
        )
        from repro.net.sim.links import LinkStats
        from repro.obs.registry import merge_snapshots

        class_names = list(population.profile_names)
        buffers = _OutcomeBuffers()
        link_stats = None
        offsets = (
            np.zeros(len(population)) if self.feedback else None
        )
        duration = 0.0
        events = 0
        requests = []
        arrival_batches = 0
        largest_batch = 0
        decisions: list = []
        # created[0] is the control block; shard blocks follow in order.
        for shard in range(self.procs):
            payload = payloads[shard]
            arrays = created[shard + 1].arrays
            count = int(arrays["out_count"][0])
            buffers.record(
                class_names,
                arrays["out_cid"][:count].copy(),
                arrays["out_code"][:count].copy(),
                arrays["out_latency"][:count].copy(),
                arrays["out_score"][:count].copy(),
                arrays["out_difficulty"][:count].copy(),
                arrays["out_attempts"][:count].copy(),
            )
            requests.append(int(payload["requests"]))
            events += int(payload["events_processed"])
            duration = max(duration, float(payload["duration"]))
            arrival_batches += int(payload["arrival_batches"])
            largest_batch = max(
                largest_batch, int(payload["largest_arrival_batch"])
            )
            if payload["link_stats"] is not None:
                if link_stats is None:
                    link_stats = LinkStats()
                for field in dataclasses.fields(LinkStats):
                    setattr(
                        link_stats,
                        field.name,
                        getattr(link_stats, field.name)
                        + getattr(payload["link_stats"], field.name),
                    )
            if offsets is not None and payload["offsets"] is not None:
                offsets[members[shard]] = payload["offsets"]
            decisions.append(payload["decisions"])

        report = SimulationReport(
            metrics=collector_from_buffers(buffers),
            duration=duration,
            requests=int(sum(requests)),
            events_processed=events,
            link_stats=link_stats,
        )
        return ParallelReport(
            report=report,
            procs=self.procs,
            epoch=self.epoch,
            shard_members=tuple(members),
            shard_requests=tuple(requests),
            arrival_batches=arrival_batches,
            largest_arrival_batch=largest_batch,
            metrics_snapshot=merge_snapshots(
                [payloads[s]["snapshot"] for s in range(self.procs)]
            ),
            decisions=(
                tuple(decisions) if self.decision_log else None
            ),
            feedback_offsets=offsets,
        )
