"""Discrete-event simulation of the framework's network environment."""

from repro.net.sim.agents import AgentPopulation
from repro.net.sim.calendar import CalendarQueue
from repro.net.sim.channel import (
    Channel,
    FixedDelayChannel,
    LognormalChannel,
    UniformJitterChannel,
)
from repro.net.sim.closedloop import (
    ClosedLoopReport,
    ClosedLoopSimulation,
    SessionSpec,
)
from repro.net.sim.engine import EventEngine, ScheduledEvent
from repro.net.sim.fastsim import FastFeedback, FastSimulation
from repro.net.sim.simulation import ServerModel, Simulation, SimulationReport
from repro.net.sim.solvetime import SolveSample, SolveTimeModel

__all__ = [
    "EventEngine",
    "ScheduledEvent",
    "CalendarQueue",
    "Channel",
    "FixedDelayChannel",
    "UniformJitterChannel",
    "LognormalChannel",
    "SolveTimeModel",
    "SolveSample",
    "AgentPopulation",
    "FastFeedback",
    "FastSimulation",
    "Simulation",
    "SimulationReport",
    "ServerModel",
    "ClosedLoopSimulation",
    "ClosedLoopReport",
    "SessionSpec",
]
