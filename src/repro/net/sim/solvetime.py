"""Client solve-time model for the simulator.

The number of hash evaluations needed to solve a ``d``-difficult puzzle
is geometric with mean ``2**d`` (see :mod:`repro.pow.difficulty`); solve
time is attempts divided by the client's hash rate.  Sampling this
distribution instead of grinding real hashes is what lets the simulator
run thousands of high-difficulty exchanges per second while preserving
the latency distribution exactly (DESIGN.md §2).
"""

from __future__ import annotations

import dataclasses
import random

from repro.core.config import TimingConfig
from repro.pow.difficulty import expected_attempts, median_attempts
from repro.pow.solver import sample_attempts

__all__ = ["SolveTimeModel", "SolveSample"]


@dataclasses.dataclass(frozen=True, slots=True)
class SolveSample:
    """One sampled solve: attempt count and the implied wall time."""

    attempts: int
    seconds: float


class SolveTimeModel:
    """Samples solve times for a client of a given hash rate.

    Parameters
    ----------
    timing:
        Calibrated timing constants; the default hash rate is
        ``1 / timing.seconds_per_attempt`` (the paper-calibrated
        ~37 k attempts/s).
    """

    def __init__(self, timing: TimingConfig | None = None) -> None:
        self.timing = timing or TimingConfig()

    @property
    def default_hash_rate(self) -> float:
        """Hash evaluations per second implied by the timing config."""
        return 1.0 / self.timing.seconds_per_attempt

    def sample(
        self,
        difficulty: int,
        rng: random.Random,
        hash_rate: float | None = None,
    ) -> SolveSample:
        """Draw one solve: geometric attempts at ``hash_rate``."""
        rate = self.default_hash_rate if hash_rate is None else hash_rate
        if rate <= 0:
            raise ValueError(f"hash_rate must be > 0, got {rate}")
        attempts = sample_attempts(difficulty, rng)
        return SolveSample(attempts=attempts, seconds=attempts / rate)

    def mean_seconds(
        self, difficulty: int, hash_rate: float | None = None
    ) -> float:
        """Expected solve time at ``difficulty``."""
        rate = self.default_hash_rate if hash_rate is None else hash_rate
        return expected_attempts(difficulty) / rate

    def median_seconds(
        self, difficulty: int, hash_rate: float | None = None
    ) -> float:
        """Median solve time at ``difficulty`` (what Figure 2 tracks)."""
        rate = self.default_hash_rate if hash_rate is None else hash_rate
        return median_attempts(difficulty) / rate
