"""Deterministic discrete-event simulation engine.

A minimal, dependency-free event loop: callbacks are scheduled at
simulated times and executed in timestamp order (FIFO among equal
timestamps, via a monotonically increasing sequence number).  The engine
is deliberately boring — determinism and clear failure modes matter more
than features.

>>> engine = EventEngine()
>>> seen = []
>>> _ = engine.schedule(2.0, lambda: seen.append("b"))
>>> _ = engine.schedule(1.0, lambda: seen.append("a"))
>>> engine.run()
>>> (seen, engine.now)
(['a', 'b'], 2.0)
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import math
from typing import Callable

from repro.core.errors import SimulationError

__all__ = ["EventEngine", "ScheduledEvent"]


@dataclasses.dataclass(order=True)
class ScheduledEvent:
    """Heap entry: (time, seq) orders events; callback rides along."""

    time: float
    seq: int
    callback: Callable[[], None] = dataclasses.field(compare=False)
    cancelled: bool = dataclasses.field(compare=False, default=False)
    _engine: "EventEngine | None" = dataclasses.field(
        compare=False, default=None, repr=False
    )

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped.

        Idempotent; the owning engine keeps a live pending counter and
        compacts its heap when cancelled entries pile up, so cancelling
        is O(1) amortised even over very long closed-loop runs.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._engine is not None:
            self._engine._on_cancel()


class EventEngine:
    """Time-ordered callback executor.

    The simulated clock (:attr:`now`) only moves forward, and only as
    events are processed.  Scheduling into the past raises
    :class:`~repro.core.errors.SimulationError` — such bugs silently
    corrupt results if tolerated.
    """

    #: Compaction floor: tiny heaps are never worth rebuilding.
    _COMPACT_MIN = 64

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._heap: list[ScheduledEvent] = []
        self._seq = itertools.count()
        self._pending = 0
        self.processed_count = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def clock(self) -> float:
        """Callable form of :attr:`now` (drop-in for ``time.time``)."""
        return self._now

    @property
    def pending_count(self) -> int:
        """Number of scheduled, not-yet-executed (and not cancelled) events.

        Maintained as a live counter (O(1)); the heap itself may
        briefly hold more entries than this until compaction sweeps
        the cancelled ones out.
        """
        return self._pending

    def _on_cancel(self) -> None:
        self._pending -= 1
        # Compact once cancelled entries outnumber live ones: a long
        # closed-loop run cancelling timeouts would otherwise leak the
        # whole history into the heap.
        if (
            len(self._heap) >= self._COMPACT_MIN
            and self._pending * 2 < len(self._heap)
        ):
            self._heap = [e for e in self._heap if not e.cancelled]
            heapq.heapify(self._heap)

    def schedule_at(
        self, when: float, callback: Callable[[], None]
    ) -> ScheduledEvent:
        """Schedule ``callback`` at absolute simulated time ``when``."""
        if not math.isfinite(when):
            raise SimulationError(f"event time must be finite, got {when!r}")
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before current time {self._now}"
            )
        event = ScheduledEvent(
            time=when, seq=next(self._seq), callback=callback, _engine=self
        )
        heapq.heappush(self._heap, event)
        self._pending += 1
        return event

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> ScheduledEvent:
        """Schedule ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._pending -= 1
            # Detach so a late cancel() of an executed event cannot
            # drive the pending counter negative.
            event._engine = None
            self._now = event.time
            event.callback()
            self.processed_count += 1
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` is reached, or event cap.

        ``until`` advances the clock to exactly that time if the queue
        drains earlier, which keeps duration-based rate computations
        honest.
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                return
            next_event = self._heap[0]
            if next_event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and next_event.time > until:
                self._now = until
                return
            self.step()
            executed += 1
        if until is not None and self._now < until:
            self._now = until
