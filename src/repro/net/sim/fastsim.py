"""Vectorized simulation core: SoA agent state, cohort event dispatch.

The callback engine (:mod:`repro.net.sim.engine`) pays a Python
closure, a heap operation and a per-event dispatch for every request —
which caps campaign scale at thousands of agents.  This module is the
same network/server/solve model re-expressed over arrays:

* **state** is struct-of-arrays (:class:`~repro.net.sim.agents.AgentPopulation`
  plus per-run vectors: per-address CPU-free times, per-fire solve
  finish times, pending puzzle difficulties);
* **scheduling** is a bucketed calendar queue
  (:class:`~repro.net.sim.calendar.CalendarQueue`) that dequeues whole
  same-timestep *cohorts* instead of single events;
* **admission** drives each cohort through the framework's batch
  pipeline — :meth:`~repro.core.framework.AIPoWFramework.challenge_batch`
  when anything (a recorder) listens on the event bus, or the
  object-free :meth:`~repro.core.framework.AIPoWFramework.difficulties_for_scores`
  array kernel when nothing does (models whose scores react to
  response outcomes — behavioural feedback — are rejected loudly:
  this engine emits no per-response events, so their state would
  silently freeze; use the callback engine, or :class:`FastFeedback`
  in agent-driven runs);
* **solving** is vectorised geometric sampling (the numpy counterpart
  of :func:`repro.pow.solver.sample_attempts`).

No per-request Python closure exists on the hot path.

Fidelity contract
-----------------
The simulated *model* is the one documented in
:mod:`repro.net.sim.simulation`: FIFO server with distinct
challenge/verify/resource costs, per-address CPU serialisation,
patience-bounded solving, TTL expiry.  Admission **decision streams**
(request order, scores, difficulties — everything
:meth:`~repro.core.records.DecisionRecord.canonical` compares) are
bit-identical to the callback engine on the same workload; the parity
matrix in ``tests/replay/test_fastsim_parity.py`` gates this on every
golden-trace scenario.  *Timing* randomness (channel jitter, solve
draws) comes from a numpy generator rather than ``random.Random``, so
latency samples are deterministic per seed but drawn in a different
stream than the callback engine — metrics agree statistically, not bit
for bit.  One corollary: a load-adaptive policy's decisions are a
function of queue timing, so under solving traffic they inherit the
timing stream's seed-sensitivity (two callback runs with different
seeds diverge the same way); the engines still interleave load
observations with decisions identically, which the parity suite pins
down with deterministic-timing workloads.  The callback engine remains
the reference implementation and
still owns the odd TTL/timeout edge (it emits per-response bus events,
which behavioural feedback and timeline collectors consume).

With ``tick`` set, event times are quantized up onto a grid, merging
near-simultaneous events into large cohorts — the knob the
million-agent scenarios use.  ``tick=None`` keeps exact times (cohorts
form only at genuinely equal instants, exactly like the callback
engine's same-timestep arrival batching).
"""

from __future__ import annotations

import dataclasses
import random
import time
from typing import Mapping, Sequence

import numpy as np

from repro.core.framework import AIPoWFramework
from repro.core.records import ResponseStatus
from repro.metrics.collector import MetricsCollector
from repro.net.sim import kernels
from repro.net.sim.agents import AgentPopulation
from repro.net.sim.calendar import CalendarQueue
from repro.net.sim.channel import Channel, FixedDelayChannel
from repro.net.sim.links import LinkSet
from repro.net.sim.simulation import ServerModel, SimulationReport
from repro.policies.adaptive import LoadAdaptivePolicy

__all__ = [
    "FastSimulation",
    "FastFeedback",
    "sample_attempts_array",
    "collector_from_buffers",
]

_STATUS_CODES = tuple(ResponseStatus)
_SERVED = _STATUS_CODES.index(ResponseStatus.SERVED)


def sample_attempts_array(
    difficulties: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Geometric attempt counts for a difficulty vector.

    Vectorised inverse-CDF sampling, the array sibling of
    :func:`repro.pow.solver.sample_attempts`: ``ceil(ln U / ln(1 -
    2**-d))`` with difficulty 0 solving on the first attempt.
    """
    d = np.asarray(difficulties, dtype=np.float64)
    attempts = np.ones(d.shape, dtype=np.float64)
    mask = d > 0
    if mask.any():
        # RNG consumption (one uniform per positive difficulty) is
        # owned here; the kernel is backend-swappable but stream-free.
        u = rng.random(int(mask.sum()))
        attempts[mask] = kernels.geometric_attempts(d[mask], u)
    return attempts


class _OutcomeBuffers:
    """Per-(class, status) outcome accumulator, array-chunk based."""

    def __init__(self) -> None:
        self._chunks: dict[tuple[str, int], list[tuple]] = {}
        self.count = 0

    def record(
        self,
        class_names: Sequence[str],
        class_ids: np.ndarray,
        status: ResponseStatus | np.ndarray,
        latency: np.ndarray,
        scores: np.ndarray,
        difficulties: np.ndarray,
        attempts: np.ndarray,
    ) -> None:
        """Fold one terminal cohort into the buffers.

        ``status`` is either one :class:`ResponseStatus` for the whole
        cohort or an int-code array (indexes into ``ResponseStatus``
        declaration order) for mixed served/expired cohorts.
        """
        if latency.size == 0:
            return
        self.count += int(latency.size)
        if isinstance(status, ResponseStatus):
            status_codes = np.full(
                latency.size, _STATUS_CODES.index(status), dtype=np.int8
            )
        else:
            status_codes = status
        for cid in np.unique(class_ids):
            cmask = class_ids == cid
            for code in np.unique(status_codes[cmask]):
                mask = cmask & (status_codes == code)
                key = (class_names[cid], int(code))
                self._chunks.setdefault(key, []).append(
                    (
                        latency[mask],
                        scores[mask],
                        difficulties[mask],
                        attempts[mask],
                    )
                )

    def fill(self, collector: MetricsCollector) -> MetricsCollector:
        """Bulk-fill a :class:`MetricsCollector` from the buffers.

        Chunks are concatenated per (class, status) first so each
        accumulator sees a handful of large arrays instead of one call
        per cohort — at a million outcomes the difference is the whole
        report cost.
        """
        overall: dict[int, list[tuple]] = {}
        for (name, code), chunks in self._chunks.items():
            merged = tuple(
                np.concatenate([chunk[j] for chunk in chunks])
                for j in range(4)
            )
            overall.setdefault(code, []).append(merged)
            self._fill_one(collector.for_class(name), code, merged)
        for code, parts in overall.items():
            merged = tuple(
                np.concatenate([part[j] for part in parts])
                for j in range(4)
            )
            self._fill_one(collector.overall, code, merged)
        return collector

    def export_rows(
        self, class_names: Sequence[str]
    ) -> tuple[np.ndarray, ...]:
        """Flatten the buffers into parallel outcome-row arrays.

        Returns ``(class_ids, status_codes, latency, scores,
        difficulties, attempts)`` — the flat-array transport format the
        parallel driver writes into shared memory.  Feeding the rows
        back through :meth:`record` on the other side rebuilds
        equivalent buffers: per-(class, status) counts and extremes are
        exact; means can differ by accumulation order only.
        """
        cids: list[np.ndarray] = []
        codes: list[np.ndarray] = []
        cols: tuple[list, list, list, list] = ([], [], [], [])
        name_to_cid = {name: i for i, name in enumerate(class_names)}
        for (name, code), chunks in sorted(
            self._chunks.items(), key=lambda kv: (kv[0][0], kv[0][1])
        ):
            for chunk in chunks:
                k = int(chunk[0].size)
                cids.append(np.full(k, name_to_cid[name], dtype=np.int32))
                codes.append(np.full(k, code, dtype=np.int8))
                for j in range(4):
                    cols[j].append(chunk[j])
        if not cids:
            return (
                np.empty(0, dtype=np.int32),
                np.empty(0, dtype=np.int8),
                np.empty(0),
                np.empty(0),
                np.empty(0),
                np.empty(0),
            )
        return (
            np.concatenate(cids),
            np.concatenate(codes),
            *(np.concatenate(col) for col in cols),
        )

    @staticmethod
    def _fill_one(metrics, code: int, merged: tuple) -> None:
        latency, scores, difficulties, attempts = merged
        status = _STATUS_CODES[code]
        metrics.outcomes[status] += int(latency.size)
        metrics.latencies.extend_array(latency)
        if status is ResponseStatus.SERVED:
            metrics.served_latencies.extend_array(latency)
        metrics.scores.add_array(scores)
        metrics.difficulties.add_array(difficulties)
        metrics.attempts.add_array(attempts)


def collector_from_buffers(buffers: _OutcomeBuffers) -> MetricsCollector:
    """A real :class:`MetricsCollector` built from vectorised buffers."""
    return buffers.fill(MetricsCollector())


class FastFeedback:
    """Array-form behavioural feedback for agent-driven runs.

    The batch port of
    :class:`~repro.reputation.feedback.FeedbackReputationModel`'s
    offset table: one offset slot per *agent* (the SoA world has no IP
    strings), decayed with the same half-life and moved by the same
    reward step on served exchanges, clamped to the same bounds.
    Updates are applied per outcome cohort (counts folded in one step),
    which matches the sequential rule exactly because the clamp is
    monotone and within-cohort decay is zero.

    The modeled simulator never produces REJECTED/REPLAYED verdicts
    (sampled solutions always verify), so — as with the callback
    engine — only the *reward* direction moves: this is exactly the
    surface a feedback-poisoning adversary farms, and what the
    ``poison-ramp`` scenario measures.
    """

    def __init__(self, n_agents: int, config=None) -> None:
        from repro.reputation.feedback import FeedbackConfig

        self.config = config or FeedbackConfig()
        self.offset = np.zeros(n_agents, dtype=np.float64)
        self.updated_at = np.zeros(n_agents, dtype=np.float64)

    def _decay(self, agents: np.ndarray, now: float) -> None:
        half_life = self.config.half_life
        if np.isinf(half_life):
            self.updated_at[agents] = now
            return
        elapsed = np.maximum(0.0, now - self.updated_at[agents])
        self.offset[agents] *= 0.5 ** (elapsed / half_life)
        self.updated_at[agents] = now

    def offsets_for(self, agents: np.ndarray, now: float) -> np.ndarray:
        """Current decayed offsets for ``agents`` (read-only)."""
        self._decay(agents, now)
        return self.offset[agents]

    def observe_served(self, agents: np.ndarray, now: float) -> None:
        """Fold one cohort of served exchanges into the offsets."""
        if agents.size == 0:
            return
        uniq, counts = np.unique(agents, return_counts=True)
        self._decay(uniq, now)
        self.offset[uniq] = np.maximum(
            self.offset[uniq] - self.config.reward_step * counts,
            -self.config.max_reward,
        )


@dataclasses.dataclass
class _OpenLoopState:
    """Run-long open-loop context, carried across :meth:`~FastSimulation.step` calls.

    Everything that used to live as locals of the monolithic open-loop
    driver; hoisting it onto the engine is what lets the parallel
    driver (:mod:`repro.net.sim.parsim`) advance a run in bounded time
    epochs with barriers in between.
    """

    ts: np.ndarray
    class_names: Sequence[str]
    class_ids: np.ndarray
    agent_ids: np.ndarray
    cpu_free: np.ndarray
    hash_rate: np.ndarray
    patience: np.ndarray
    get_scores: object
    requests_of: object
    until: float | None
    feedback: "FastFeedback | None"
    link_qids: np.ndarray | None
    link_base: np.ndarray | float
    n: int
    model: ServerModel
    ttl: float


class FastSimulation:
    """Cohort-vectorized simulation over the calendar-queue scheduler.

    Drives three workload shapes through one engine:

    * :meth:`run` — an open-loop :class:`~repro.traffic.trace.Trace`,
      API-compatible with :meth:`Simulation.run`;
    * :meth:`run_fires` — a SoA fire schedule over an
      :class:`AgentPopulation` (the million-agent path: no request
      objects anywhere);
    * :meth:`run_sessions` — closed-loop sessions, API-compatible with
      :meth:`ClosedLoopSimulation.run`.

    Parameters mirror :class:`~repro.net.sim.simulation.Simulation`;
    the additions are ``tick`` (cohort quantization grid, ``None`` for
    exact times), ``admission`` (``"auto"``/``"framework"``/
    ``"array"`` — auto picks the object-free array kernel whenever
    nothing subscribes to admission events and the model's scores are
    time-invariant) and ``phase_timer`` (an optional
    :class:`~repro.obs.registry.PhaseTimer` accumulating wall time,
    cohort counts and item counts per event kind — ``arrive``,
    ``xmit``, ``xmitsol``, ``solve``, plus the nested ``fifo``
    sub-phase; ``None`` keeps the hot loop to a single no-op check
    per cohort) and ``decision_log`` (when True, every open-loop
    admission cohort appends ``(when, idx, scores, difficulties)`` to
    :attr:`decisions` — the bitwise decision-stream probe the parallel
    driver's parity tests compare; off by default, zero hot-path cost).
    """

    def __init__(
        self,
        framework: AIPoWFramework,
        channel: Channel | None = None,
        server_model: ServerModel | None = None,
        seed: int = 1234,
        pow_enabled: bool = True,
        solve_deciders: Mapping[str, object] | None = None,
        hash_rates: Mapping[str, float] | None = None,
        patiences: Mapping[str, float] | None = None,
        load_reference: float = 0.1,
        recorder=None,
        tick: float | None = None,
        admission: str = "auto",
        links: LinkSet | None = None,
        phase_timer=None,
        decision_log: bool = False,
    ) -> None:
        if load_reference <= 0:
            raise ValueError(
                f"load_reference must be > 0, got {load_reference}"
            )
        if admission not in ("auto", "framework", "array"):
            raise ValueError(f"unknown admission mode {admission!r}")
        if admission == "array" and recorder is not None:
            raise ValueError(
                "array admission emits no events, so a recorder would "
                "capture nothing; use admission='framework' (or 'auto', "
                "which picks it whenever a recorder is attached)"
            )
        self.framework = framework
        timing = framework.config.timing
        self.channel = channel or FixedDelayChannel(timing.network_overhead / 4)
        self.server_model = server_model or ServerModel()
        self.pow_enabled = pow_enabled
        self.solve_deciders = dict(solve_deciders or {})
        self.hash_rates = dict(hash_rates or {})
        self.patiences = dict(patiences or {})
        self.load_reference = load_reference
        self.recorder = recorder
        self.tick = tick
        self.links = links
        self.phase_timer = phase_timer
        self._decision_log = decision_log
        self._admission_request = admission
        self.default_hash_rate = 1.0 / timing.seconds_per_attempt
        self.rng = np.random.default_rng(seed)
        self._pyrng = random.Random(seed ^ 0x5A17)
        if recorder is not None:
            recorder.attach(framework.events)

        #: Mirrors of the callback simulators' batching telemetry.
        self.arrival_batches = 0
        self.largest_arrival_batch = 0
        self.events_processed = 0
        self._reset()

    # Closed-loop spellings of the batching telemetry, mirroring
    # ``ClosedLoopSimulation``'s attribute names.
    @property
    def admission_batches(self) -> int:
        return self.arrival_batches

    @property
    def largest_admission_batch(self) -> int:
        return self.largest_arrival_batch

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------
    def _reset(self, observe_load: bool = True) -> None:
        self._queue = CalendarQueue(tick=self.tick)
        self._busy_until = 0.0
        self._now = 0.0
        self._buffers = _OutcomeBuffers()
        #: Per-cohort admission decisions, only kept when the engine
        #: was built with ``decision_log=True``.
        self.decisions: list[tuple] | None = (
            [] if self._decision_log else None
        )
        self._open: _OpenLoopState | None = None
        self._observe_load = observe_load
        self._link_session = (
            self.links.session() if self.links is not None else None
        )
        #: Network-layer outcome counters of the last run (``None``
        #: when the run carries no links).
        self.link_stats = (
            self._link_session.stats if self._link_session else None
        )
        self.arrival_batches = 0
        self.largest_arrival_batch = 0
        self.events_processed = 0

    def _bind_links(
        self,
        class_names: Sequence[str],
        class_ids: np.ndarray,
        packed_ips: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-request ``(queue_id, base_delay)`` under :attr:`links`.

        Queue ids come from the class's link assignment (``-1`` = no
        link); base delays are hash-derived from the packed address, so
        they match the callback engine's per-IP lookups bit-for-bit.
        """
        qids = self.links.queue_ids(class_names)[class_ids]
        return qids, self.links.base_delays(packed_ips, qids)

    def _admission_mode(self) -> str:
        # Stateful scorers (behavioural feedback) update from
        # RESPONSE_SERVED events, which this engine never emits —
        # their offsets would silently freeze mid-run regardless of
        # admission mode, so reject loudly (mirroring the timeline
        # rejection in Simulation.__init__).
        if self._stateful_scoring():
            raise ValueError(
                "the model's scores react to response outcomes, which "
                "the vectorized engine does not emit; use the callback "
                "engine, or model feedback with FastFeedback in an "
                "agent-driven run"
            )
        if self._admission_request != "auto":
            return self._admission_request
        from repro.core.events import EventKind

        events = self.framework.events
        listened = any(
            events.has_subscribers(kind)
            for kind in (
                EventKind.REQUEST_RECEIVED,
                EventKind.SCORED,
                EventKind.POLICY_APPLIED,
                EventKind.PUZZLE_ISSUED,
            )
        )
        return "framework" if listened else "array"

    def _stateful_scoring(self) -> bool:
        """True when any model in the wrapper chain drifts mid-run.

        A stateful scorer (behavioural feedback) may sit *inside* a
        transparent wrapper (a score cache), and pre-scoring agents
        once would then silently ignore its mid-run offset changes.
        """
        return any(
            getattr(node, "scoring_is_stateful", False)
            for node in _walk_model_chain(self.framework.model)
        )

    def _delays(self, count: int) -> np.ndarray | float:
        """``count`` one-way delay draws (a scalar for fixed channels).

        The shipped channels expose ``delay_array`` (one numpy draw
        per cohort); third-party scalar-only channels fall back to a
        per-draw Python loop — correct, but it reintroduces per-event
        Python calls, so large-scale runs should use a batch-capable
        channel.
        """
        if isinstance(self.channel, FixedDelayChannel):
            return max(0.0, self.channel.delay)
        batch = getattr(self.channel, "delay_array", None)
        if batch is not None:
            drawn = np.asarray(batch(self.rng, count), dtype=np.float64)
        else:
            drawn = np.fromiter(
                (
                    self.channel.one_way_delay(self._pyrng)
                    for _ in range(count)
                ),
                dtype=np.float64,
                count=count,
            )
        # Channel contract backstop: a negative delay would schedule
        # an event before its cause.
        return np.maximum(0.0, drawn)

    def _fifo(self, at: float, costs: np.ndarray | float, count: int) -> np.ndarray:
        """FIFO completion times for ``count`` arrivals at ``at``.

        Vectorised form of the callback engines' ``_server_complete``
        recurrence: every item starts at ``max(arrival, busy)`` and the
        backlog only ever grows within a same-instant cohort.  In
        open-loop runs it feeds the backlog signal to a load-adaptive
        policy exactly once per request, like ``Simulation``'s scalar
        path (the callback closed-loop server model has no load
        signal, so closed-loop runs skip it there too).

        Computed as one running sum seeded with the cohort's start
        time — the same left-associated additions the scalar
        recurrence performs — so completion times are bit-identical to
        the callback engine, not merely ULP-close (they feed the load
        signal and the TTL-expiry comparison, where one ULP can flip a
        decision).
        """
        started = (
            time.perf_counter() if self.phase_timer is not None else 0.0
        )
        start = max(at, self._busy_until)
        dones = kernels.fifo_running_sum(start, costs, count)
        policy = self.framework.policy
        if self._observe_load and isinstance(policy, LoadAdaptivePolicy):
            busy_before = np.empty(count)
            busy_before[0] = self._busy_until
            busy_before[1:] = dones[:-1]
            backlogs = np.maximum(0.0, busy_before - at) / self.load_reference
            for value in backlogs:
                policy.observe_load(float(value))
        self._busy_until = float(dones[-1])
        if self.phase_timer is not None:
            # Nested inside the dispatch phases, so "fifo" time is a
            # sub-phase of (mostly) "arrive", not a disjoint share.
            self.phase_timer.observe(
                "fifo", time.perf_counter() - started, items=count
            )
        return dones

    def _solve_schedule(
        self,
        agents: np.ndarray,
        cpu_free: np.ndarray,
        receipt: np.ndarray,
        seconds: np.ndarray,
        patience: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-address CPU serialisation with patience abandonment.

        Returns ``(solve_end, abandoned)``.  An abandoning client's CPU
        frees at ``receipt + patience`` (it ground until giving up),
        matching the callback engine.  Agents appearing more than once
        in a cohort fall back to a sequential recurrence for exactly
        the duplicated positions, preserving FIFO CPU hand-off.
        """
        start = np.maximum(receipt, cpu_free[agents])
        solve_end = start + seconds
        abandoned = kernels.patience_mask(solve_end, receipt, patience)
        give_up = receipt + patience
        release = np.where(abandoned, give_up, solve_end)
        uniq, inverse, counts = np.unique(
            agents, return_inverse=True, return_counts=True
        )
        if uniq.size == agents.size:
            cpu_free[agents] = release
            return solve_end, abandoned
        single = counts[inverse] == 1
        cpu_free[agents[single]] = release[single]
        for i in np.nonzero(~single)[0].tolist():
            agent = agents[i]
            s = max(receipt[i], cpu_free[agent])
            e = s + seconds[i]
            if (e - receipt[i]) > patience[i]:
                abandoned[i] = True
                cpu_free[agent] = receipt[i] + patience[i]
            else:
                abandoned[i] = False
                solve_end[i] = e
                cpu_free[agent] = e
        return solve_end, abandoned

    def _admit_framework(
        self, requests, now
    ) -> tuple[np.ndarray, np.ndarray]:
        """Framework-mode cohort admission: ``(scores, difficulties)``.

        One :meth:`AIPoWFramework.challenge_batch` call (full
        per-request events for recorders) with the decisions pulled
        back into arrays — the single extraction point for every
        framework-admission branch.
        """
        challenges = self.framework.challenge_batch(requests, now=now)
        scores = np.array(
            [c.decision.reputation_score for c in challenges]
        )
        difficulties = np.array(
            [c.decision.difficulty for c in challenges], dtype=np.float64
        )
        return scores, difficulties

    def _decide_solve(
        self,
        class_names: Sequence[str],
        class_ids: np.ndarray,
        difficulties: np.ndarray,
    ) -> np.ndarray:
        """Per-profile solve/refuse decisions, batch where possible."""
        from repro.attacks.base import decide_batch

        solve = np.ones(difficulties.size, dtype=bool)
        if not self.solve_deciders:
            return solve
        for cid in np.unique(class_ids):
            decider = self.solve_deciders.get(class_names[cid])
            if decider is None:
                continue
            mask = class_ids == cid
            solve[mask] = decide_batch(decider, difficulties[mask])
        return solve

    def _mask_until(
        self, until: float | None, finish: np.ndarray, *arrays: np.ndarray
    ) -> tuple[np.ndarray, ...]:
        """Drop terminals past ``until`` (their events would not fire)."""
        if until is None:
            return (finish, *arrays)
        keep = finish <= until
        return (finish[keep], *(a[keep] for a in arrays))

    def _touch(self, *times) -> None:
        for value in times:
            if np.isscalar(value):
                if value > self._now:
                    self._now = float(value)
            elif getattr(value, "size", 0):
                peak = float(np.max(value))
                if peak > self._now:
                    self._now = peak

    # ------------------------------------------------------------------
    # Open-loop: traces and fire schedules
    # ------------------------------------------------------------------
    def run(self, trace, until: float | None = None) -> SimulationReport:
        """Replay an open-loop trace; drop-in for ``Simulation.run``."""
        entries = list(trace)
        class_names: list[str] = []
        class_index: dict[str, int] = {}
        agent_index: dict[str, int] = {}
        n = len(entries)
        ts = np.empty(n)
        class_ids = np.empty(n, dtype=np.int32)
        agent_ids = np.empty(n, dtype=np.int64)
        packed = np.empty(n, dtype=np.int64) if self.links is not None else None
        if packed is not None:
            import ipaddress
        for i, entry in enumerate(entries):
            ts[i] = entry.request.timestamp
            cid = class_index.setdefault(entry.profile, len(class_names))
            if cid == len(class_names):
                class_names.append(entry.profile)
            class_ids[i] = cid
            agent_ids[i] = agent_index.setdefault(
                entry.request.client_ip, len(agent_index)
            )
            if packed is not None:
                packed[i] = int(
                    ipaddress.ip_address(entry.request.client_ip)
                )
            if self.recorder is not None:
                self.recorder.register_source(
                    entry.request.client_ip, entry.profile, entry.true_score
                )
        link_qids = link_base = None
        if packed is not None:
            link_qids, link_base = self._bind_links(
                class_names, class_ids, packed
            )

        mode = self._admission_mode()
        scores = None
        if mode == "array" and n:
            from repro.reputation.base import model_score_requests

            scores = model_score_requests(
                self.framework.model, [e.request for e in entries]
            )

        requests_of = (
            None
            if mode == "array"
            else (lambda idx: [entries[i].request for i in idx.tolist()])
        )
        return self._run_open_loop(
            ts=ts,
            class_names=class_names,
            class_ids=class_ids,
            agent_ids=agent_ids,
            n_agents=len(agent_index),
            scores=scores,
            requests_of=requests_of,
            until=until,
            link_qids=link_qids,
            link_base=link_base,
        )

    def run_fires(
        self,
        population: AgentPopulation,
        fire_times: np.ndarray,
        fire_agents: np.ndarray,
        until: float | None = None,
        feedback: FastFeedback | None = None,
    ) -> SimulationReport:
        """Drive a SoA fire schedule — the million-agent hot path.

        Agents are scored once (features are fixed at mint time);
        per-fire admission is a gather plus the policy's array kernel.
        ``feedback`` threads a :class:`FastFeedback` offset table into
        scoring and outcome observation.
        """
        return self._run_open_loop(
            **self._fires_kwargs(
                population, fire_times, fire_agents, until, feedback
            )
        )

    # ------------------------------------------------------------------
    # Stepped execution (the parallel driver's epoch API)
    # ------------------------------------------------------------------
    def start_fires(
        self,
        population: AgentPopulation,
        fire_times: np.ndarray,
        fire_agents: np.ndarray,
        until: float | None = None,
        feedback: FastFeedback | None = None,
    ) -> None:
        """Prime the stepped engine with a fire schedule.

        ``start_fires`` + repeated :meth:`step` + :meth:`finish` is the
        epoch-sliced spelling of :meth:`run_fires`: draining the
        calendar queue in consecutive bounded windows visits exactly
        the cohorts an unbounded drain would, in the same (time, FIFO)
        order — see :meth:`CalendarQueue.drain_until` — so the two
        spellings produce bit-identical decision streams and reports.
        """
        self._start_open_loop(
            **self._fires_kwargs(
                population, fire_times, fire_agents, until, feedback
            )
        )

    def step(self, bound: float | None) -> bool:
        """Process every cohort with quantized time ``<= bound``.

        Returns True while events remain past ``bound`` (the caller
        should step again with a later bound), False once the run is
        over — queue drained, or every remaining cohort lies beyond
        the run's ``until`` horizon.  ``bound=None`` runs to the end.
        """
        if self._open is None:
            raise ValueError("step() before start_fires()")
        return self._step_open_loop(bound)

    def finish(self) -> SimulationReport:
        """The report of a stepped run (after :meth:`step` returned False)."""
        if self._open is None:
            raise ValueError("finish() before start_fires()")
        return self._finish_open_loop()

    def _fires_kwargs(
        self,
        population: AgentPopulation,
        fire_times: np.ndarray,
        fire_agents: np.ndarray,
        until: float | None,
        feedback: FastFeedback | None,
    ) -> dict:
        """The open-loop engine arguments for a SoA fire schedule."""
        fire_agents = np.asarray(fire_agents, dtype=np.int64)
        fire_times = np.asarray(fire_times, dtype=np.float64)
        mode = self._admission_mode()
        if feedback is not None and mode != "array":
            raise ValueError(
                "FastFeedback offsets only enter scoring on the array "
                "admission path; this run resolved to framework "
                "admission (recorder/subscribers attached), where the "
                "offsets would update but never influence a decision"
            )
        base_scores = None
        if mode == "array":
            schema = _scoring_schema(self.framework.model)
            if schema.names != population.schema.names:
                raise ValueError(
                    "population schema does not match the scoring "
                    f"model's: {population.schema.names} vs "
                    f"{schema.names}"
                )
            base_scores = population.score_with(
                _innermost_batch_scorer(self.framework.model)
            )
        class_ids = population.profile_id[fire_agents].astype(np.int32)
        link_qids = link_base = None
        if self.links is not None:
            # Per-agent link state is SoA: one hash-derived base delay
            # and one queue id per agent, gathered per fire.
            agent_qids, agent_base = self._bind_links(
                population.profile_names,
                population.profile_id,
                population.packed_ips(),
            )
            link_qids = agent_qids[fire_agents]
            link_base = agent_base[fire_agents]
        per_fire_scores = None
        if base_scores is not None and feedback is None:
            per_fire_scores = base_scores[fire_agents]

        def score_hook(idx: np.ndarray, at: float) -> np.ndarray:
            gathered = base_scores[fire_agents[idx]]
            if feedback is None:
                return gathered
            offsets = feedback.offsets_for(fire_agents[idx], at)
            return np.clip(gathered + offsets, 0.0, 10.0)

        requests_of = None
        if mode == "framework":
            from repro.core.records import ClientRequest

            names = population.schema.names
            rows = population.features
            if self.recorder is not None:
                # Recorder runs are object-world by construction
                # (framework admission), so materialising every
                # agent's address for source metadata is in budget.
                profile_names = population.profile_names
                true = population.true_scores
                for agent, ip in enumerate(population.ip_strings()):
                    self.recorder.register_source(
                        ip,
                        profile_names[population.profile_id[agent]],
                        float(true[agent]),
                    )

            def requests_of(idx: np.ndarray):  # noqa: F811 - mode-specific
                agents = fire_agents[idx]
                ips = population.ip_strings(agents)
                return [
                    ClientRequest(
                        client_ip=ip,
                        resource="/index.html",
                        timestamp=float(fire_times[i]),
                        features=dict(
                            zip(names, rows[agent].tolist())
                        ),
                    )
                    for i, agent, ip in zip(idx.tolist(), agents.tolist(), ips)
                ]

        return dict(
            ts=fire_times,
            class_names=list(population.profile_names),
            class_ids=class_ids,
            agent_ids=fire_agents,
            n_agents=len(population),
            scores=per_fire_scores,
            score_hook=None if per_fire_scores is not None or mode != "array" else score_hook,
            requests_of=requests_of,
            until=until,
            feedback=feedback,
            link_qids=link_qids,
            link_base=link_base,
        )

    def _run_open_loop(self, **kwargs) -> SimulationReport:
        """The shared open-loop engine behind :meth:`run`/:meth:`run_fires`."""
        self._start_open_loop(**kwargs)
        self._step_open_loop(None)
        return self._finish_open_loop()

    def _start_open_loop(
        self,
        *,
        ts: np.ndarray,
        class_names: Sequence[str],
        class_ids: np.ndarray,
        agent_ids: np.ndarray,
        n_agents: int,
        scores: np.ndarray | None,
        requests_of,
        until: float | None,
        score_hook=None,
        feedback: FastFeedback | None = None,
        link_qids: np.ndarray | None = None,
        link_base: np.ndarray | None = None,
    ) -> None:
        """Reset run state and push the initial arrival schedule."""
        self._reset()
        n = int(ts.size)
        cpu_free = np.zeros(n_agents)
        hash_rate = self._per_class(class_names, self.hash_rates, self.default_hash_rate)
        patience = self._per_class(class_names, self.patiences, 30.0)
        if link_base is None:
            link_base = 0.0  # broadcasts as "no extra propagation"

        # Arrival times: one channel crossing per submitted request.
        # _push_grouped stable-sorts them, so equal-instant arrivals
        # keep trace order — the exact cohorts the callback engine's
        # arrival batching forms.  Linked requests instead enter their
        # uplink at the submit instant ("xmit"); the crossing decides
        # when — and whether — they arrive.
        if n:
            all_idx = np.arange(n, dtype=np.int64)
            if self._link_session is not None:
                linked = link_qids >= 0
                plain = all_idx[~linked]
                if plain.size:
                    self._push_grouped(
                        ts[plain] + self._delays(int(plain.size)),
                        "arrive",
                        (plain,),
                    )
                wired = all_idx[linked]
                if wired.size:
                    self._push_grouped(
                        ts[wired],
                        "xmit",
                        (wired, np.ones(wired.size, dtype=np.int64)),
                    )
            else:
                self._push_grouped(
                    ts + self._delays(n), "arrive", (all_idx,)
                )

        get_scores = score_hook
        if get_scores is None and scores is not None:
            get_scores = lambda idx, at: scores[idx]  # noqa: E731

        self._open = _OpenLoopState(
            ts=ts,
            class_names=class_names,
            class_ids=class_ids,
            agent_ids=agent_ids,
            cpu_free=cpu_free,
            hash_rate=hash_rate,
            patience=patience,
            get_scores=get_scores,
            requests_of=requests_of,
            until=until,
            feedback=feedback,
            link_qids=link_qids,
            link_base=link_base,
            n=n,
            model=self.server_model,
            ttl=self.framework.config.pow.ttl,
        )

    def _step_open_loop(self, bound: float | None) -> bool:
        """Drain cohorts up to ``bound``; True while events remain."""
        st = self._open
        until = st.until
        timer = self.phase_timer
        while self._queue:
            peek = self._queue.peek_time()
            if until is not None and peek > until:
                return False
            if bound is not None and peek > bound:
                return True
            when, segments = self._queue.pop_cohort()
            self._touch(when)
            for kind, payload in _merge_segments(segments):
                started = time.perf_counter() if timer is not None else 0.0
                if kind == "arrive":
                    self._process_arrivals(
                        when,
                        payload,
                        ts=st.ts,
                        class_names=st.class_names,
                        class_ids=st.class_ids,
                        agent_ids=st.agent_ids,
                        cpu_free=st.cpu_free,
                        hash_rate=st.hash_rate,
                        patience=st.patience,
                        get_scores=st.get_scores,
                        requests_of=st.requests_of,
                        until=until,
                        link_qids=st.link_qids,
                        link_base=st.link_base,
                    )
                elif kind == "xmit":
                    self._process_xmit(
                        when,
                        payload,
                        ts=st.ts,
                        class_ids=st.class_ids,
                        patience=st.patience,
                        link_qids=st.link_qids,
                        link_base=st.link_base,
                    )
                elif kind == "xmitsol":
                    self._process_xmitsol(
                        when,
                        payload,
                        ts=st.ts,
                        class_ids=st.class_ids,
                        class_names=st.class_names,
                        link_qids=st.link_qids,
                        link_base=st.link_base,
                    )
                else:  # solution
                    self._process_solutions(
                        when,
                        payload,
                        ts=st.ts,
                        class_ids=st.class_ids,
                        class_names=st.class_names,
                        agent_ids=st.agent_ids,
                        ttl=st.ttl,
                        model=st.model,
                        until=until,
                        feedback=st.feedback,
                        link_base=st.link_base,
                    )
                if timer is not None:
                    items = (
                        payload.size
                        if isinstance(payload, np.ndarray)
                        else payload[0].size
                    )
                    timer.observe(
                        kind,
                        time.perf_counter() - started,
                        items=int(items),
                    )
        return False

    def _finish_open_loop(self) -> SimulationReport:
        st = self._open
        duration = st.until if st.until is not None else self._now
        return SimulationReport(
            metrics=collector_from_buffers(self._buffers),
            duration=duration,
            requests=st.n,
            events_processed=self.events_processed,
            link_stats=self.link_stats,
        )

    def _process_arrivals(
        self,
        when: float,
        idx: np.ndarray,
        *,
        ts: np.ndarray,
        class_names: Sequence[str],
        class_ids: np.ndarray,
        agent_ids: np.ndarray,
        cpu_free: np.ndarray,
        hash_rate: np.ndarray,
        patience: np.ndarray,
        get_scores,
        requests_of,
        until: float | None,
        link_qids: np.ndarray | None = None,
        link_base: np.ndarray | float = 0.0,
    ) -> None:
        k = int(idx.size)
        self.arrival_batches += 1
        self.largest_arrival_batch = max(self.largest_arrival_batch, k)
        self.events_processed += k + 1  # arrivals + the drain
        cids = class_ids[idx]
        model = self.server_model
        # Server->client legs add the agent's propagation delay but are
        # modelled lossless (the uplink is the constrained direction).
        base = link_base[idx] if isinstance(link_base, np.ndarray) else 0.0

        # Decision order matters for stateful (load-adaptive) policies:
        # the callback engine charges the cohort's FIFO costs — which
        # feed the policy's load signal — *before* the batch admission,
        # so the array kernel must too, or the two engines' decision
        # streams drift apart.
        if not self.pow_enabled:
            dones = self._fifo(when, model.resource_cost, k)
            if get_scores is not None:
                cohort_scores = get_scores(idx, when)
                difficulties = self.framework.difficulties_for_scores(
                    cohort_scores
                ).astype(np.float64)
            else:
                cohort_scores, difficulties = self._admit_framework(
                    requests_of(idx), now=when
                )
            if self.decisions is not None:
                self.decisions.append(
                    (when, idx.copy(), cohort_scores.copy(),
                     difficulties.copy())
                )
            finish = dones + self._delays(k) + base
            self.events_processed += k
            out = self._mask_until(
                until, finish, cids, cohort_scores, difficulties, ts[idx]
            )
            finish, cids_m, scores_m, diffs_m, ts_m = out
            self._touch(finish)
            self._buffers.record(
                class_names,
                cids_m,
                ResponseStatus.SERVED,
                np.maximum(0.0, finish - ts_m),
                scores_m,
                diffs_m,
                np.zeros(finish.size),
            )
            return

        issue = self._fifo(when, model.challenge_cost, k)
        if get_scores is not None:
            cohort_scores = get_scores(idx, when)
            difficulties = self.framework.difficulties_for_scores(
                cohort_scores
            ).astype(np.float64)
        else:
            cohort_scores, difficulties = self._admit_framework(
                requests_of(idx), now=[float(t) for t in issue]
            )
        if self.decisions is not None:
            self.decisions.append(
                (when, idx.copy(), cohort_scores.copy(), difficulties.copy())
            )

        receipt = issue + self._delays(k) + base
        self.events_processed += k  # puzzle deliveries
        solve = self._decide_solve(class_names, cids, difficulties)

        refused = ~solve
        if refused.any():
            out = self._mask_until(
                until,
                receipt[refused],
                cids[refused],
                cohort_scores[refused],
                difficulties[refused],
                ts[idx][refused],
            )
            finish, cids_m, scores_m, diffs_m, ts_m = out
            self._touch(finish)
            self._buffers.record(
                class_names,
                cids_m,
                ResponseStatus.ABANDONED,
                np.maximum(0.0, finish - ts_m),
                scores_m,
                diffs_m,
                np.zeros(finish.size),
            )

        if not solve.any():
            return
        s_idx = idx[solve]
        s_receipt = receipt[solve]
        s_diff = difficulties[solve]
        s_scores = cohort_scores[solve]
        s_cids = cids[solve]
        attempts = sample_attempts_array(s_diff, self.rng)
        seconds = attempts / hash_rate[s_cids]
        solve_end, abandoned = self._solve_schedule(
            agent_ids[s_idx], cpu_free, s_receipt, seconds, patience[s_cids]
        )

        if abandoned.any():
            give_up = s_receipt[abandoned] + patience[s_cids][abandoned]
            out = self._mask_until(
                until,
                give_up,
                s_cids[abandoned],
                s_scores[abandoned],
                s_diff[abandoned],
                ts[s_idx][abandoned],
                attempts[abandoned],
            )
            finish, cids_m, scores_m, diffs_m, ts_m, attempts_m = out
            self._touch(finish)
            self._buffers.record(
                class_names,
                cids_m,
                ResponseStatus.ABANDONED,
                np.maximum(0.0, finish - ts_m),
                scores_m,
                diffs_m,
                attempts_m,
            )

        solving = ~abandoned
        if not solving.any():
            return
        payload = (
            s_idx[solving],
            issue[solve][solving],
            attempts[solving],
            s_diff[solving],
            s_scores[solving],
        )
        if self._link_session is not None:
            # Linked agents enter their uplink the instant solving
            # ends; the crossing (loss, queue) decides the submit time.
            on_link = link_qids[payload[0]] >= 0
            if on_link.any():
                self._push_grouped(
                    solve_end[solving][on_link],
                    "xmitsol",
                    tuple(col[on_link] for col in payload)
                    + (np.ones(int(on_link.sum()), dtype=np.int64),),
                )
            off_link = ~on_link
            if off_link.any():
                submit = (
                    solve_end[solving][off_link]
                    + self._delays(int(off_link.sum()))
                )
                self._push_grouped(
                    submit,
                    "solve",
                    tuple(col[off_link] for col in payload),
                )
            return
        submit = solve_end[solving] + self._delays(int(solving.sum()))
        self._push_grouped(submit, "solve", payload)

    def _process_solutions(
        self,
        when: float,
        payload: tuple,
        *,
        ts: np.ndarray,
        class_ids: np.ndarray,
        class_names: Sequence[str],
        agent_ids: np.ndarray,
        ttl: float,
        model: ServerModel,
        until: float | None,
        feedback: FastFeedback | None,
        link_base: np.ndarray | float = 0.0,
    ) -> None:
        idx, issued_at, attempts, difficulties, scores = payload
        k = int(idx.size)
        self.events_processed += k
        expired = kernels.ttl_mask(when, issued_at, ttl)
        costs = model.verify_cost + np.where(
            expired, 0.0, model.resource_cost
        )
        dones = self._fifo(when, costs, k)
        base = link_base[idx] if isinstance(link_base, np.ndarray) else 0.0
        finish = dones + self._delays(k) + base
        self.events_processed += k  # terminal responses
        status_codes = np.where(
            expired,
            _STATUS_CODES.index(ResponseStatus.EXPIRED),
            _SERVED,
        ).astype(np.int8)
        cids = class_ids[idx]
        out = self._mask_until(
            until,
            finish,
            cids,
            scores,
            difficulties,
            ts[idx],
            attempts,
            status_codes,
            agent_ids[idx],
        )
        finish, cids_m, scores_m, diffs_m, ts_m, attempts_m, codes_m, agents_m = out
        self._touch(finish)
        self._buffers.record(
            class_names,
            cids_m,
            codes_m,
            np.maximum(0.0, finish - ts_m),
            scores_m,
            diffs_m,
            attempts_m,
        )
        if feedback is not None:
            feedback.observe_served(agents_m[codes_m == _SERVED], when)

    # ------------------------------------------------------------------
    # Link crossings
    # ------------------------------------------------------------------
    def _process_xmit(
        self,
        when: float,
        payload: tuple,
        *,
        ts: np.ndarray,
        class_ids: np.ndarray,
        patience: np.ndarray,
        link_qids: np.ndarray,
        link_base: np.ndarray,
    ) -> None:
        """Request-leg uplink crossings: loss, queueing, retry, give-up.

        Requests the network swallows here were never admitted — they
        carry no score or difficulty — so give-ups land in
        :attr:`link_stats`, not the metrics.  A retry that would start
        past the client's patience window gives up instead: nobody
        retransmits a page request they have stopped waiting for.
        """
        idx, attempt = payload
        k = int(idx.size)
        self.events_processed += k
        session = self._link_session
        stats = session.stats
        stats.crossings += k
        qids = link_qids[idx]
        for qid in np.unique(qids):
            pos = np.nonzero(qids == qid)[0]
            profile = self.links.profile_of_queue(int(qid))
            lost = self.links.crossing_lost(
                idx[pos], attempt[pos], leg=0, loss_rate=profile.loss_rate
            )
            stats.lost += int(lost.sum())
            surv = pos[~lost]
            exits, accepted = session.cross(
                int(qid), when, int(surv.size)
            )
            stats.queue_dropped += int(surv.size) - accepted
            deliv = idx[surv[:accepted]]
            if deliv.size:
                self._push_grouped(
                    exits + link_base[deliv] + self._delays(int(deliv.size)),
                    "arrive",
                    (deliv,),
                )
            # Failed = lost + tail-dropped, in original crossing order
            # (a same-instant retry cohort re-enters the queue in the
            # order the callback engine would process it).
            failed = np.zeros(pos.size, dtype=bool)
            failed[np.nonzero(lost)[0]] = True
            failed[np.nonzero(~lost)[0][accepted:]] = True
            if not failed.any():
                continue
            f_pos = pos[failed]
            f_idx = idx[f_pos]
            f_att = attempt[f_pos]
            retry_at = when + profile.backoff * 2.0 ** (
                f_att.astype(np.float64) - 1.0
            )
            can = (f_att < 1 + profile.max_retries) & (
                (retry_at - ts[f_idx]) <= patience[class_ids[f_idx]]
            )
            stats.retries += int(can.sum())
            stats.request_give_ups += int((~can).sum())
            if can.any():
                self._push_grouped(
                    retry_at[can], "xmit", (f_idx[can], f_att[can] + 1)
                )

    def _process_xmitsol(
        self,
        when: float,
        payload: tuple,
        *,
        ts: np.ndarray,
        class_ids: np.ndarray,
        class_names: Sequence[str],
        link_qids: np.ndarray,
        link_base: np.ndarray,
    ) -> None:
        """Solution-leg uplink crossings.

        Same loss/queue/retry mechanics as the request leg, with two
        differences: the client already sank the solving work, so it
        retries until ``max_retries`` regardless of patience (TTL
        expiry — not impatience — punishes lateness), and a final
        give-up *is* recorded in the metrics as ABANDONED: the puzzle
        was issued and solved, so scores and difficulties exist.
        """
        idx, issued_at, attempts, difficulties, scores, attempt = payload
        k = int(idx.size)
        self.events_processed += k
        session = self._link_session
        stats = session.stats
        stats.crossings += k
        qids = link_qids[idx]
        for qid in np.unique(qids):
            pos = np.nonzero(qids == qid)[0]
            profile = self.links.profile_of_queue(int(qid))
            lost = self.links.crossing_lost(
                idx[pos], attempt[pos], leg=1, loss_rate=profile.loss_rate
            )
            stats.lost += int(lost.sum())
            surv = pos[~lost]
            exits, accepted = session.cross(
                int(qid), when, int(surv.size)
            )
            stats.queue_dropped += int(surv.size) - accepted
            deliv = surv[:accepted]
            if deliv.size:
                submit = (
                    exits
                    + link_base[idx[deliv]]
                    + self._delays(int(deliv.size))
                )
                self._push_grouped(
                    submit,
                    "solve",
                    (
                        idx[deliv],
                        issued_at[deliv],
                        attempts[deliv],
                        difficulties[deliv],
                        scores[deliv],
                    ),
                )
            failed = np.zeros(pos.size, dtype=bool)
            failed[np.nonzero(lost)[0]] = True
            failed[np.nonzero(~lost)[0][accepted:]] = True
            if not failed.any():
                continue
            f_pos = pos[failed]
            f_att = attempt[f_pos]
            can = f_att < 1 + profile.max_retries
            stats.retries += int(can.sum())
            give_up = f_pos[~can]
            if give_up.size:
                stats.solution_give_ups += int(give_up.size)
                self._touch(when)
                self._buffers.record(
                    class_names,
                    class_ids[idx[give_up]],
                    ResponseStatus.ABANDONED,
                    np.maximum(0.0, when - ts[idx[give_up]]),
                    scores[give_up],
                    difficulties[give_up],
                    attempts[give_up],
                )
            retry = f_pos[can]
            if retry.size:
                retry_at = when + profile.backoff * 2.0 ** (
                    attempt[retry].astype(np.float64) - 1.0
                )
                self._push_grouped(
                    retry_at,
                    "xmitsol",
                    (
                        idx[retry],
                        issued_at[retry],
                        attempts[retry],
                        difficulties[retry],
                        scores[retry],
                        attempt[retry] + 1,
                    ),
                )

    # ------------------------------------------------------------------
    # Closed loop
    # ------------------------------------------------------------------
    def run_sessions(self, sessions, until: float | None = None):
        """Drive closed-loop sessions; drop-in for ``ClosedLoopSimulation.run``."""
        from repro.net.sim.closedloop import ClosedLoopReport

        sessions = list(sessions)
        if not sessions:
            raise ValueError("need at least one session")
        if self.links is not None and not self.links.delay_only:
            # Closed-loop exchanges have no request identity to key
            # loss hashes on and no give-up semantics; only the
            # propagation-delay part of a link is defined here.
            raise ValueError(
                "closed-loop runs support delay-only link profiles; "
                "lossy or bandwidth-capped links need the open-loop "
                "engines (run/run_fires)"
            )
        # The callback closed-loop server model has no load signal, so
        # the fast engine must not feed one either.
        self._reset(observe_load=False)
        m = len(sessions)
        class_names: list[str] = []
        class_index: dict[str, int] = {}
        cids = np.empty(m, dtype=np.int32)
        start = np.empty(m)
        think = np.empty(m)
        exchanges = np.empty(m, dtype=np.int64)
        rate = np.empty(m)
        patience = np.empty(m)
        for i, session in enumerate(sessions):
            profile = session.client.profile
            cid = class_index.setdefault(profile.name, len(class_names))
            if cid == len(class_names):
                class_names.append(profile.name)
            cids[i] = cid
            start[i] = session.start
            think[i] = session.think_time
            exchanges[i] = session.exchanges
            rate[i] = self.hash_rates.get(profile.name, profile.hash_rate)
            patience[i] = profile.patience
            if self.recorder is not None:
                self.recorder.register_source(
                    session.client.ip,
                    profile.name,
                    session.client.true_score,
                )

        base = np.zeros(m)
        if self.links is not None:
            import ipaddress

            packed = np.array(
                [int(ipaddress.ip_address(s.client.ip)) for s in sessions],
                dtype=np.int64,
            )
            qids = self.links.queue_ids(class_names)[cids]
            base = self.links.base_delays(packed, qids)

        mode = self._admission_mode()
        scores = None
        requests = None
        if mode == "array":
            # The schema must be the *scoring* model's — a transparent
            # wrapper (score cache) declares none, and falling back to
            # the default would vectorize features in the wrong column
            # order for a custom-schema model.
            scorer = _innermost_batch_scorer(self.framework.model)
            schema = _scoring_schema(self.framework.model)
            matrix = schema.vectorize_batch(
                [s.client.features for s in sessions]
            )
            scores = np.asarray(
                scorer.score_batch(matrix), dtype=np.float64
            )
        else:
            from repro.core.records import ClientRequest

            def requests(idx: np.ndarray, begin_ts: np.ndarray):
                return [
                    ClientRequest(
                        client_ip=sessions[i].client.ip,
                        resource="/session",
                        timestamp=float(t),
                        features=sessions[i].client.features,
                    )
                    for i, t in zip(idx.tolist(), begin_ts.tolist())
                ]

        completed = 0
        model = self.server_model

        # First exchange of every session.
        begin = start.copy()
        arrive = begin + self._delays(m) + base
        remaining = exchanges.copy()
        self._push_grouped(
            arrive,
            "cl_arrive",
            (np.arange(m, dtype=np.int64), begin, remaining),
        )

        while self._queue:
            peek = self._queue.peek_time()
            if until is not None and peek > until:
                break
            when, segments = self._queue.pop_cohort()
            self._touch(when)
            for kind, payload in _merge_segments(segments):
                if kind == "cl_arrive":
                    idx, begin_ts, rem = payload
                    k = int(idx.size)
                    self.arrival_batches += 1
                    self.largest_arrival_batch = max(
                        self.largest_arrival_batch, k
                    )
                    self.events_processed += k + 1
                    issue = self._fifo(when, model.challenge_cost, k)
                    if scores is not None:
                        cohort_scores = scores[idx]
                        difficulties = self.framework.difficulties_for_scores(
                            cohort_scores
                        ).astype(np.float64)
                    else:
                        cohort_scores, difficulties = self._admit_framework(
                            requests(idx, begin_ts),
                            now=[float(t) for t in issue],
                        )
                    receipt = issue + self._delays(k) + base[idx]
                    self.events_processed += k
                    attempts = sample_attempts_array(difficulties, self.rng)
                    seconds = attempts / rate[idx]
                    # Closed-loop clients abandon on expected grind time
                    # alone (their CPU is otherwise idle): sample
                    # exceeding patience ends the exchange at
                    # receipt + patience.
                    abandoned = seconds > patience[idx]
                    if abandoned.any():
                        finish = receipt[abandoned] + patience[idx][abandoned]
                        completed += self._finish_sessions(
                            when,
                            class_names,
                            cids,
                            idx[abandoned],
                            begin_ts[abandoned],
                            rem[abandoned],
                            ResponseStatus.ABANDONED,
                            finish,
                            cohort_scores[abandoned],
                            difficulties[abandoned],
                            attempts[abandoned],
                            think,
                            until,
                            base,
                        )
                    solving = ~abandoned
                    if solving.any():
                        submit = (
                            receipt[solving]
                            + seconds[solving]
                            + self._delays(int(solving.sum()))
                            + base[idx[solving]]
                        )
                        self._push_grouped(
                            submit,
                            "cl_redeem",
                            (
                                idx[solving],
                                begin_ts[solving],
                                rem[solving],
                                attempts[solving],
                                cohort_scores[solving],
                                difficulties[solving],
                            ),
                        )
                else:  # cl_redeem
                    idx, begin_ts, rem, attempts, cohort_scores, difficulties = payload
                    k = int(idx.size)
                    self.events_processed += k
                    dones = self._fifo(
                        when,
                        model.verify_cost + model.resource_cost,
                        k,
                    )
                    finish = dones + self._delays(k) + base[idx]
                    completed += self._finish_sessions(
                        when,
                        class_names,
                        cids,
                        idx,
                        begin_ts,
                        rem,
                        ResponseStatus.SERVED,
                        finish,
                        cohort_scores,
                        difficulties,
                        attempts,
                        think,
                        until,
                        base,
                    )

        duration = until if until is not None else self._now
        return ClosedLoopReport(
            metrics=collector_from_buffers(self._buffers),
            duration=duration,
            sessions=m,
            completed_exchanges=completed,
        )

    def _finish_sessions(
        self,
        when: float,
        class_names: Sequence[str],
        cids: np.ndarray,
        idx: np.ndarray,
        begin_ts: np.ndarray,
        rem: np.ndarray,
        status: ResponseStatus,
        finish: np.ndarray,
        scores: np.ndarray,
        difficulties: np.ndarray,
        attempts: np.ndarray,
        think: np.ndarray,
        until: float | None,
        base: np.ndarray,
    ) -> int:
        out = self._mask_until(
            until, finish, idx, begin_ts, rem, scores, difficulties, attempts
        )
        finish, idx, begin_ts, rem, scores, difficulties, attempts = out
        self._touch(finish)
        self.events_processed += int(finish.size)
        self._buffers.record(
            class_names,
            cids[idx],
            status,
            np.maximum(0.0, finish - begin_ts),
            scores,
            difficulties,
            attempts,
        )
        again = rem - 1 > 0
        if again.any():
            pauses = np.where(
                think[idx[again]] > 0,
                self.rng.exponential(np.maximum(think[idx[again]], 1e-300)),
                0.0,
            )
            next_begin = finish[again] + pauses
            arrive = (
                next_begin
                + self._delays(int(again.sum()))
                + base[idx[again]]
            )
            self._push_grouped(
                arrive,
                "cl_arrive",
                (idx[again], next_begin, rem[again] - 1),
            )
        return int(finish.size)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _push_grouped(
        self, times: np.ndarray, kind: str, payload: tuple
    ) -> None:
        """Push payload columns grouped into per-bucket segments.

        Grouping uses integer bucket *indices* (``ceil(t / tick)``) but
        each segment is pushed at its earliest member's raw time —
        quantization onto the grid happens exactly once, inside
        :class:`CalendarQueue`, so events are never bumped a second
        tick by re-quantizing an already-on-grid value.
        """
        if times.size == 0:
            return
        order = np.argsort(times, kind="stable")
        times = times[order]
        payload = tuple(column[order] for column in payload)
        if self.tick is None:
            keyed = times
        else:
            keyed = np.ceil(times / self.tick)
        boundaries = np.nonzero(np.diff(keyed))[0] + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [times.size]])
        if kind == "arrive":
            # The only single-column event kind; everything else
            # ("solve", "xmit*", "cl_*") carries a tuple payload.
            for lo, hi in zip(starts, ends):
                self._queue.push(float(times[lo]), (kind, payload[0][lo:hi]))
        else:
            for lo, hi in zip(starts, ends):
                self._queue.push(
                    float(times[lo]),
                    (kind, tuple(col[lo:hi] for col in payload)),
                )

    @staticmethod
    def _per_class(
        class_names: Sequence[str],
        overrides: Mapping[str, float],
        default: float,
    ) -> np.ndarray:
        return np.array(
            [float(overrides.get(name, default)) for name in class_names]
        )


def _merge_segments(segments: list) -> list:
    """Concatenate adjacent same-kind segments of one cohort.

    Segments pop in push order (the heap's seq order); merging only
    *adjacent* runs keeps that order — arrivals still precede
    same-instant solutions pushed later, and vice versa.
    """
    merged: list = []
    for kind, payload in segments:
        if merged and merged[-1][0] == kind:
            prev = merged[-1][1]
            if isinstance(prev, tuple):
                merged[-1] = (
                    kind,
                    tuple(
                        np.concatenate([a, b])
                        for a, b in zip(prev, payload)
                    ),
                )
            else:
                merged[-1] = (kind, np.concatenate([prev, payload]))
        else:
            merged.append((kind, payload))
    return merged


def _walk_model_chain(model):
    """Yield ``model`` and each wrapped model, outermost first.

    The one traversal rule for model wrapper chains (``.base`` for
    feedback wrappers, ``.inner`` for caches), cycle-guarded.  Every
    chain inspection in this module goes through it so the rule cannot
    drift between them.
    """
    node, seen = model, set()
    while node is not None and id(node) not in seen:
        seen.add(id(node))
        yield node
        node = getattr(node, "base", None) or getattr(node, "inner", None)


def _scoring_schema(model):
    """The feature schema of the model that actually scores.

    Transparent wrappers (score caches) declare no ``schema`` but may
    still be the node providing ``score_batch``, so schema and scorer
    must be resolved independently.
    """
    for node in _walk_model_chain(model):
        schema = getattr(node, "schema", None)
        if schema is not None:
            return schema
    from repro.reputation.features import DEFAULT_SCHEMA

    return DEFAULT_SCHEMA


def _innermost_batch_scorer(model):
    """Unwrap score-transparent wrappers down to a ``score_batch`` model.

    A :class:`~repro.reputation.caching.CachedModel` returns the same
    values as its base (the cache changes cost, not scores), so the
    array path scores through the base directly.  Stateful wrappers
    (behavioural feedback) advertise ``scoring_is_stateful`` and are
    rejected by the engine before this is ever called.
    """
    for node in _walk_model_chain(model):
        if hasattr(node, "score_batch"):
            return node
    raise TypeError(
        f"model {type(model).__name__} exposes no score_batch anywhere "
        "in its wrapper chain; use framework admission"
    )
