"""End-to-end simulation of the framework in a client-server network.

:class:`Simulation` replays a :class:`~repro.traffic.trace.Trace`
through an :class:`~repro.core.framework.AIPoWFramework` over a modelled
network, reproducing the paper's environment (DESIGN.md §2):

* **network** — each leg of the request/challenge/solution/response
  exchange crosses a :class:`~repro.net.sim.channel.Channel`;
* **server** — a single FIFO queue with distinct costs for issuing a
  challenge, verifying a solution, and serving the resource (issuing and
  verifying are cheap; serving is the expensive step PoW protects);
* **client CPU** — per-address serialisation: a client grinding one
  puzzle cannot simultaneously grind another, which is exactly how PoW
  throttles flooding sources;
* **solving** — geometric attempt sampling via
  :class:`~repro.net.sim.solvetime.SolveTimeModel`.

Clients abandon puzzles exceeding their profile's patience, and
per-profile *solve deciders* let attack models refuse puzzles outright
(a pure flood).  Every terminal outcome is emitted as a
:class:`~repro.core.records.ServedResponse` both to the simulation's
:class:`~repro.metrics.collector.MetricsCollector` and onto the
framework's event bus.

Batched admission: requests that reach the server at the same simulated
instant — bursts from flooding sources, synchronized bots, or simply a
fixed-delay channel collapsing simultaneous arrivals — are drained
through :meth:`AIPoWFramework.challenge_batch` as one batch instead of
walking the framework once per request.  The FIFO queue still charges
``challenge_cost`` per request and each puzzle is stamped with its own
FIFO-derived issue time, so for the (time-invariant) shipped models the
batch produces the same decisions and puzzles the scalar walk would.
Two deliberate approximations: scoring and channel-delay draws happen
at the arrival instant rather than each request's (at most
milliseconds-later) issue time, so a model whose state shifts inside
that window — e.g. live behavioural feedback — may see marginally
staler state, and the simulation RNG is consumed in a different order
than pre-batching versions of this module (still fully deterministic
per seed).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Mapping

from repro.core.events import EventKind
from repro.core.framework import AIPoWFramework, Challenge
from repro.core.records import ResponseStatus, ServedResponse
from repro.metrics.collector import MetricsCollector
from repro.metrics.timeseries import TimelineCollector
from repro.policies.adaptive import LoadAdaptivePolicy
from repro.net.sim.channel import Channel, FixedDelayChannel
from repro.net.sim.engine import EventEngine
from repro.net.sim.links import LinkSet, LinkStats
from repro.net.sim.solvetime import SolveTimeModel
from repro.traffic.trace import Trace, TraceEntry

__all__ = ["ServerModel", "Simulation", "SimulationReport"]

#: Decides whether a client solves a puzzle of the given difficulty.
SolveDecider = Callable[[int], bool]


@dataclasses.dataclass(frozen=True, slots=True)
class ServerModel:
    """Server-side work costs, in seconds of FIFO service time.

    ``challenge_cost`` covers scoring, policy lookup and puzzle
    generation; ``verify_cost`` the lightweight solution check;
    ``resource_cost`` the actual work of serving the requested resource
    — the expensive step a DDoS tries to trigger en masse.
    """

    challenge_cost: float = 0.0002
    verify_cost: float = 0.0001
    resource_cost: float = 0.002

    def __post_init__(self) -> None:
        for field in ("challenge_cost", "verify_cost", "resource_cost"):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be >= 0")


@dataclasses.dataclass
class SimulationReport:
    """Outcome of one simulation run.

    ``link_stats`` carries the network-layer outcome counters of a
    link-enabled run (:class:`~repro.net.sim.links.LinkStats`) and is
    ``None`` on ideal-network runs.  Requests the network swallowed
    before admission appear only there — they never reach the metrics.
    """

    metrics: MetricsCollector
    duration: float
    requests: int
    events_processed: int
    link_stats: LinkStats | None = None

    @property
    def served(self) -> int:
        return self.metrics.overall.served

    @property
    def goodput(self) -> float:
        """Served responses per second of simulated time."""
        return self.served / self.duration if self.duration > 0 else 0.0


class Simulation:
    """Replays traces through the framework over a modelled network.

    Parameters
    ----------
    framework:
        The configured server pipeline.  Its
        :attr:`~repro.core.config.FrameworkConfig.timing` provides the
        default hash rate for the solve-time model.
    channel:
        One-way delay model; defaults to the calibrated fixed delay.
    server_model:
        FIFO service costs.
    seed:
        Seed for all randomness this run introduces (delays, solve
        sampling, solve decisions).
    pow_enabled:
        When False, the server skips the whole PoW exchange and serves
        every request directly — the "no defense" baseline of the
        throttling experiment.
    solve_deciders:
        Optional per-profile hooks; returning False makes that client
        drop the puzzle (counted as ABANDONED).
    hash_rates:
        Optional per-profile hash-rate overrides (evaluations/second).
    patiences:
        Optional per-profile patience overrides in seconds (how long a
        client grinds one puzzle before abandoning); default 30 s.
    timeline:
        Optional :class:`TimelineCollector` receiving every terminal
        response with its completion time (attack-onset analysis).
    load_reference:
        Server backlog (seconds of queued work) that counts as load
        1.0 when feeding a :class:`LoadAdaptivePolicy`.
    recorder:
        Optional :class:`~repro.replay.TraceRecorder`, attached to the
        framework's event bus; submitted trace entries register their
        profile and ground-truth score with it, so the recorded v2
        trace carries the same metadata as the input workload.
    engine:
        ``"callback"`` (default) runs the reference
        :class:`EventEngine` loop; ``"fast"`` delegates the whole run
        to the vectorized cohort core
        (:class:`~repro.net.sim.fastsim.FastSimulation`) behind this
        same API.  Decision streams are bit-identical between the two
        (except load-adaptive policies under solving traffic, whose
        decisions depend on queue timing and so inherit the timing
        stream's seed-sensitivity); timing randomness is drawn from a
        different (numpy) stream, so latency samples agree
        statistically rather than bit for bit.
        The callback engine remains the reference implementation and
        is required for ``timeline`` collection (it emits per-response
        events).
    links:
        Optional :class:`~repro.net.sim.links.LinkSet` assigning
        per-population access links (per-agent RTT, loss, shared
        bandwidth, retries) on top of the channel.  Both engines drive
        the same link kernels, so decision parity holds under links
        exactly as documented in DESIGN.md §1.6; network-layer
        outcomes land in :attr:`SimulationReport.link_stats`.
    """

    def __init__(
        self,
        framework: AIPoWFramework,
        channel: Channel | None = None,
        server_model: ServerModel | None = None,
        seed: int = 1234,
        pow_enabled: bool = True,
        solve_deciders: Mapping[str, SolveDecider] | None = None,
        hash_rates: Mapping[str, float] | None = None,
        patiences: Mapping[str, float] | None = None,
        timeline: TimelineCollector | None = None,
        load_reference: float = 0.1,
        recorder=None,
        engine: str = "callback",
        links: LinkSet | None = None,
    ) -> None:
        if load_reference <= 0:
            raise ValueError(
                f"load_reference must be > 0, got {load_reference}"
            )
        if engine not in ("callback", "fast"):
            raise ValueError(
                f"engine must be 'callback' or 'fast', got {engine!r}"
            )
        if engine == "fast" and timeline is not None:
            raise ValueError(
                "timeline collection needs the callback engine "
                "(per-response events); use engine='callback'"
            )
        self.framework = framework
        timing = framework.config.timing
        self.channel = channel or FixedDelayChannel(timing.network_overhead / 4)
        self.server_model = server_model or ServerModel()
        self.solve_time = SolveTimeModel(timing)
        self.engine = EventEngine()
        self.engine_kind = engine
        self.rng = random.Random(seed)
        self.pow_enabled = pow_enabled
        self.solve_deciders = dict(solve_deciders or {})
        self.hash_rates = dict(hash_rates or {})
        self.patiences = dict(patiences or {})
        self.timeline = timeline
        self.load_reference = load_reference
        self.recorder = recorder
        self.links = links
        self._link_session = links.session() if links is not None else None
        self._link_cache: dict[tuple[str, str], tuple[int, float]] = {}
        self._entry_rids: dict[int, int] = {}
        self._next_rid = 0
        self._fast = None
        if engine == "fast":
            from repro.net.sim.fastsim import FastSimulation

            # The fast core owns the recorder attachment in this mode;
            # attaching here too would double-capture every decision.
            self._fast = FastSimulation(
                framework,
                channel=self.channel,
                server_model=self.server_model,
                seed=seed,
                pow_enabled=pow_enabled,
                solve_deciders=self.solve_deciders,
                hash_rates=self.hash_rates,
                patiences=self.patiences,
                load_reference=load_reference,
                recorder=recorder,
                links=links,
            )
        elif recorder is not None:
            recorder.attach(framework.events)

        self._server_busy_until = 0.0
        self._cpu_free_at: dict[str, float] = {}
        self._profiles: dict[str, str] = {}
        self.metrics = MetricsCollector(classifier=self._classify)
        self._requests = 0
        self._arrival_batch: list[TraceEntry] = []
        #: Number of same-timestep arrival batches drained so far.
        self.arrival_batches = 0
        #: Size of the largest same-timestep arrival batch seen.
        self.largest_arrival_batch = 0

    # ------------------------------------------------------------------
    # Bookkeeping helpers
    # ------------------------------------------------------------------
    def _classify(self, response: ServedResponse) -> str:
        return self._profiles.get(response.decision.request.client_ip, "unknown")

    def _server_complete(self, arrival: float, cost: float) -> float:
        """FIFO server: when work arriving at ``arrival`` finishes.

        Also feeds the backlog-derived load signal to a
        :class:`LoadAdaptivePolicy`, when one is installed.
        """
        backlog = max(0.0, self._server_busy_until - arrival)
        start = max(arrival, self._server_busy_until)
        self._server_busy_until = start + cost
        policy = self.framework.policy
        if isinstance(policy, LoadAdaptivePolicy):
            policy.observe_load(backlog / self.load_reference)
        return self._server_busy_until

    def _delay(self) -> float:
        # Channel contract backstop: a negative delay would schedule
        # an event before its cause.
        return max(0.0, self.channel.one_way_delay(self.rng))

    def _link_of(self, profile: str, ip: str) -> tuple[int, float]:
        """``(queue_id, base_delay)`` of one client under :attr:`links`.

        Calls the same vectorized hash kernels as the fast engine on
        one-element arrays, so the scalar reference's delays are
        bit-identical to the SoA path's by construction.
        """
        if self.links is None:
            return -1, 0.0
        key = (profile, ip)
        hit = self._link_cache.get(key)
        if hit is None:
            import ipaddress

            import numpy as np

            qid = int(self.links.queue_ids([profile])[0])
            base = 0.0
            if qid >= 0:
                base = float(
                    self.links.base_delays(
                        np.array(
                            [int(ipaddress.ip_address(ip))], dtype=np.int64
                        ),
                        np.array([qid], dtype=np.int64),
                    )[0]
                )
            hit = (qid, base)
            self._link_cache[key] = hit
        return hit

    def _finish(
        self,
        challenge: Challenge,
        status: ResponseStatus,
        now: float,
        attempts: int = 0,
    ) -> None:
        """Emit a terminal outcome for one request."""
        response = ServedResponse(
            decision=challenge.decision,
            status=status,
            latency=max(0.0, now - challenge.decision.request.timestamp),
            solve_attempts=attempts,
            body=(
                f"resource:{challenge.decision.request.resource}"
                if status is ResponseStatus.SERVED
                else ""
            ),
        )
        self.metrics.observe(response)
        if self.timeline is not None:
            profile = self._profiles.get(
                challenge.decision.request.client_ip, "unknown"
            )
            self.timeline.observe(profile, response, at=now)
        self.framework.events.emit(
            EventKind.RESPONSE_SERVED, now, response=response
        )

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def submit(self, entry: TraceEntry) -> None:
        """Schedule one trace entry's arrival at its request timestamp."""
        if self._fast is not None:
            raise ValueError(
                "engine='fast' consumes the whole trace passed to "
                "run(); pre-submitted entries would be silently "
                "dropped — include them in the trace instead"
            )
        self._profiles[entry.request.client_ip] = entry.profile
        if self.recorder is not None:
            self.recorder.register_source(
                entry.request.client_ip, entry.profile, entry.true_score
            )
        self._requests += 1
        rid = self._next_rid
        self._next_rid += 1
        qid, _ = self._link_of(entry.profile, entry.request.client_ip)
        if qid < 0:
            self.engine.schedule_at(
                entry.request.timestamp + self._delay(),
                lambda: self._on_server_receive(entry),
            )
            return
        # Linked clients enter their uplink at the submit instant; the
        # crossing (loss, queueing, retries) decides when — and
        # whether — the request arrives.  The loss hash is keyed on
        # the submission index, which matches the fast engine's
        # request index for the same workload.
        self._entry_rids[id(entry)] = rid
        self.engine.schedule_at(
            entry.request.timestamp,
            lambda: self._transmit_request(entry, rid, 1),
        )

    def _transmit_request(
        self, entry: TraceEntry, rid: int, attempt: int
    ) -> None:
        """One request-leg uplink crossing (scalar mirror of the SoA path).

        Give-ups are counted in :attr:`SimulationReport.link_stats`
        only — the request was never admitted, so there is no decision
        to aggregate.  A retry that would start past the client's
        patience window gives up instead.
        """
        now = self.engine.now
        qid, base = self._link_of(entry.profile, entry.request.client_ip)
        profile = self.links.profile_of_queue(qid)
        session = self._link_session
        stats = session.stats
        stats.crossings += 1
        lost = bool(
            self.links.crossing_lost(
                [rid], [attempt], leg=0, loss_rate=profile.loss_rate
            )[0]
        )
        if lost:
            stats.lost += 1
        else:
            exits, accepted = session.cross(qid, now, 1)
            if accepted:
                self.engine.schedule_at(
                    float(exits[0]) + base + self._delay(),
                    lambda: self._on_server_receive(entry),
                )
                return
            stats.queue_dropped += 1
        retry_at = now + profile.backoff * 2.0 ** (attempt - 1)
        patience = self.patiences.get(entry.profile, 30.0)
        if attempt < 1 + profile.max_retries and (
            retry_at - entry.request.timestamp
        ) <= patience:
            stats.retries += 1
            self.engine.schedule_at(
                retry_at,
                lambda: self._transmit_request(entry, rid, attempt + 1),
            )
        else:
            stats.request_give_ups += 1

    def _transmit_solution(
        self,
        entry: TraceEntry,
        challenge: Challenge,
        attempts: int,
        rid: int,
        attempt: int,
    ) -> None:
        """One solution-leg uplink crossing.

        The client already sank the solving work, so it retries until
        ``max_retries`` regardless of patience (TTL expiry punishes
        lateness); a final give-up is recorded as ABANDONED — the
        puzzle was issued and solved, so the decision exists.
        """
        now = self.engine.now
        qid, base = self._link_of(entry.profile, entry.request.client_ip)
        profile = self.links.profile_of_queue(qid)
        session = self._link_session
        stats = session.stats
        stats.crossings += 1
        lost = bool(
            self.links.crossing_lost(
                [rid], [attempt], leg=1, loss_rate=profile.loss_rate
            )[0]
        )
        if lost:
            stats.lost += 1
        else:
            exits, accepted = session.cross(qid, now, 1)
            if accepted:
                self.engine.schedule_at(
                    float(exits[0]) + base + self._delay(),
                    lambda: self._on_server_receive_solution(
                        challenge, attempts
                    ),
                )
                return
            stats.queue_dropped += 1
        if attempt < 1 + profile.max_retries:
            stats.retries += 1
            self.engine.schedule_at(
                now + profile.backoff * 2.0 ** (attempt - 1),
                lambda: self._transmit_solution(
                    entry, challenge, attempts, rid, attempt + 1
                ),
            )
        else:
            stats.solution_give_ups += 1
            self._finish(
                challenge, ResponseStatus.ABANDONED, now, attempts=attempts
            )

    def _on_server_receive(self, entry: TraceEntry) -> None:
        # Coalesce every arrival sharing this simulated instant into one
        # admission batch.  The drain callback is scheduled at the same
        # timestamp when the first arrival lands; FIFO ordering among
        # equal timestamps guarantees it runs after all of them have
        # registered, so the batch is complete when it fires.
        self._arrival_batch.append(entry)
        if len(self._arrival_batch) == 1:
            self.engine.schedule_at(self.engine.now, self._drain_arrivals)

    def _drain_arrivals(self) -> None:
        """Admit all same-timestep arrivals through the batch pipeline.

        Per-request FIFO costs are charged in arrival order (so each
        request keeps its own completion time and the backlog signal for
        load-adaptive policies is unchanged), then the whole batch is
        scored/issued via :meth:`AIPoWFramework.challenge_batch` with
        one puzzle timestamp per request.  Scoring happens here, at the
        arrival instant, rather than at each request's issue time — see
        the module docstring for what that approximates.
        """
        batch, self._arrival_batch = self._arrival_batch, []
        now = self.engine.now
        self.arrival_batches += 1
        self.largest_arrival_batch = max(
            self.largest_arrival_batch, len(batch)
        )
        requests = [entry.request for entry in batch]

        if not self.pow_enabled:
            dones = [
                self._server_complete(now, self.server_model.resource_cost)
                for _ in batch
            ]
            challenges = self.framework.challenge_batch(requests, now=now)
            for entry, done, challenge in zip(batch, dones, challenges):
                # Server->client legs add the client's link propagation
                # delay but are modelled lossless (the uplink is the
                # constrained direction).
                _, base = self._link_of(
                    entry.profile, entry.request.client_ip
                )
                self.engine.schedule_at(
                    done + self._delay() + base,
                    lambda c=challenge: self._finish(
                        c, ResponseStatus.SERVED, self.engine.now
                    ),
                )
            return

        issue_times = [
            self._server_complete(now, self.server_model.challenge_cost)
            for _ in batch
        ]
        challenges = self.framework.challenge_batch(
            requests, now=issue_times
        )
        for entry, issue_at, challenge in zip(batch, issue_times, challenges):
            _, base = self._link_of(entry.profile, entry.request.client_ip)
            self.engine.schedule_at(
                issue_at + self._delay() + base,
                lambda e=entry, c=challenge: self._on_client_receive_puzzle(
                    e, c
                ),
            )

    def _on_client_receive_puzzle(
        self, entry: TraceEntry, challenge: Challenge
    ) -> None:
        now = self.engine.now
        difficulty = challenge.decision.difficulty
        profile = entry.profile

        decider = self.solve_deciders.get(profile)
        if decider is not None and not decider(difficulty):
            self._finish(challenge, ResponseStatus.ABANDONED, now)
            return

        ip = entry.request.client_ip
        patience = self.patiences.get(profile, 30.0)
        hash_rate = self.hash_rates.get(profile)
        sample = self.solve_time.sample(difficulty, self.rng, hash_rate)
        start = max(now, self._cpu_free_at.get(ip, 0.0))
        solve_end = start + sample.seconds

        if solve_end - now > patience:
            give_up_at = now + patience
            self._cpu_free_at[ip] = give_up_at
            self.engine.schedule_at(
                give_up_at,
                lambda: self._finish(
                    challenge,
                    ResponseStatus.ABANDONED,
                    self.engine.now,
                    attempts=sample.attempts,
                ),
            )
            return

        self._cpu_free_at[ip] = solve_end
        qid, _ = self._link_of(profile, ip)
        if qid >= 0:
            # The solution enters the uplink the instant solving ends;
            # the crossing decides the submit time.
            rid = self._entry_rids[id(entry)]
            self.engine.schedule_at(
                solve_end,
                lambda: self._transmit_solution(
                    entry, challenge, sample.attempts, rid, 1
                ),
            )
            return
        self.engine.schedule_at(
            solve_end + self._delay(),
            lambda: self._on_server_receive_solution(
                challenge, sample.attempts
            ),
        )

    def _on_server_receive_solution(
        self, challenge: Challenge, attempts: int
    ) -> None:
        now = self.engine.now
        expired = (
            challenge.puzzle.age(now) > self.framework.config.pow.ttl
        )
        cost = self.server_model.verify_cost
        if not expired:
            cost += self.server_model.resource_cost
        done = self._server_complete(now, cost)
        status = (
            ResponseStatus.EXPIRED if expired else ResponseStatus.SERVED
        )
        ip = challenge.decision.request.client_ip
        _, base = self._link_of(self._profiles.get(ip, ""), ip)
        self.engine.schedule_at(
            done + self._delay() + base,
            lambda: self._finish(challenge, status, self.engine.now, attempts),
        )

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run(self, trace: Trace, until: float | None = None) -> SimulationReport:
        """Replay ``trace`` to completion (or ``until``) and report."""
        if self._fast is not None:
            report = self._fast.run(trace, until=until)
            self.metrics = report.metrics
            self._requests = report.requests
            self.arrival_batches = self._fast.arrival_batches
            self.largest_arrival_batch = self._fast.largest_arrival_batch
            return report
        for entry in trace:
            self.submit(entry)
        self.engine.run(until=until)
        return SimulationReport(
            metrics=self.metrics,
            duration=self.engine.now,
            requests=self._requests,
            events_processed=self.engine.processed_count,
            link_stats=(
                self._link_session.stats if self._link_session else None
            ),
        )
