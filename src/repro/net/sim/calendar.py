"""Bucketed calendar-queue scheduler for cohort-based simulation.

The callback :class:`~repro.net.sim.engine.EventEngine` orders events in
a binary heap and dispatches them one Python callback at a time — ideal
for correctness, hopeless for a million agents.  A *calendar queue*
(Brown, CACM 1988) instead hashes events into time buckets; the
vectorized simulator exploits the structure by dequeuing a whole bucket
— a *cohort* of same-instant events — in one operation and processing
it with array code.

:class:`CalendarQueue` keeps the exact ordering contract of the heap
engine: cohorts pop in strictly increasing time order, and items within
a cohort keep FIFO (insertion) order, which is precisely the heap's
``(time, seq)`` order flattened.  A property test
(``tests/net/test_calendar.py``) checks this equivalence against
``heapq`` on random schedules.

With ``tick`` set, event times are quantized *up* onto a uniform grid
(never down: an event may run up to one tick late, never early, which
preserves causality).  Quantization is what merges near-simultaneous
events — a flash crowd's arrivals, a wave of solve completions — into
the large cohorts the vectorized simulator feeds to
:meth:`~repro.core.framework.AIPoWFramework.challenge_batch`.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Iterator

from repro.core.errors import SimulationError

__all__ = ["CalendarQueue"]


class CalendarQueue:
    """Time-bucketed FIFO priority queue over ``(time, insertion order)``.

    Parameters
    ----------
    tick:
        Optional bucket width in seconds.  ``None`` keeps exact event
        times (every distinct timestamp is its own cohort); a positive
        tick quantizes times up onto the ``tick`` grid so events within
        one grid step share a cohort.
    start:
        Scheduling before ``start`` raises — mirroring the engine's
        no-past-events rule.
    """

    def __init__(self, tick: float | None = None, start: float = 0.0) -> None:
        if tick is not None and tick <= 0:
            raise SimulationError(f"tick must be > 0, got {tick}")
        self.tick = tick
        self._floor = float(start)
        self._buckets: dict[float, list[Any]] = {}
        self._times: list[float] = []  # heap of bucket keys
        self._len = 0

    # ------------------------------------------------------------------
    def _key(self, when: float) -> float:
        """Quantize ``when`` up onto the tick grid (identity when exact)."""
        if not math.isfinite(when):
            raise SimulationError(f"event time must be finite, got {when!r}")
        if when < self._floor:
            raise SimulationError(
                f"cannot schedule at {when} before current time {self._floor}"
            )
        if self.tick is None:
            return when
        return math.ceil(when / self.tick) * self.tick

    def push(self, when: float, item: Any) -> None:
        """Schedule ``item`` at time ``when`` (quantized up to the grid)."""
        key = self._key(when)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [item]
            heapq.heappush(self._times, key)
        else:
            bucket.append(item)
        self._len += 1

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def peek_time(self) -> float | None:
        """Time of the next cohort, or ``None`` when empty."""
        return self._times[0] if self._times else None

    def pop_cohort(self) -> tuple[float, list[Any]]:
        """Remove and return the earliest cohort as ``(time, items)``.

        Items come back in insertion order.  Popping advances the
        queue's clock floor: later pushes must be at or after the
        popped time.
        """
        if not self._times:
            raise SimulationError("pop from an empty CalendarQueue")
        key = heapq.heappop(self._times)
        items = self._buckets.pop(key)
        self._len -= len(items)
        self._floor = max(self._floor, key)
        return key, items

    def drain(self) -> Iterator[tuple[float, list[Any]]]:
        """Yield cohorts in time order until the queue empties.

        New events pushed while draining are dequeued in their proper
        order — the loop keeps going until genuinely empty.
        """
        while self._len:
            yield self.pop_cohort()

    def drain_until(self, bound: float) -> Iterator[tuple[float, list[Any]]]:
        """Yield cohorts with quantized time ``<= bound``, then stop.

        The epoch-slicing primitive of the parallel driver: draining a
        queue in consecutive ``drain_until`` windows visits exactly the
        cohorts an uninterrupted :meth:`drain` would, in the same
        (time, FIFO) order — events only ever schedule at or after the
        cohort that causes them, so a follow-on event either lands in
        the current window (and pops here, in order) or in a later one.
        The bound compares against *quantized* cohort keys: a window
        boundary never splits a cohort.
        """
        while self._times and self._times[0] <= bound:
            yield self.pop_cohort()
