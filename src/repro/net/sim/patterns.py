"""Vectorized fire schedules for large-scale scenarios.

A *fire schedule* is the SoA form of an open-loop workload: two
parallel arrays ``(times, agents)`` meaning "agent ``agents[i]`` sends
one request at ``times[i]``".  The builders here are the numpy
counterparts of :mod:`repro.traffic.arrivals` — same processes
(Poisson, on/off pulses, ramps) plus the shapes the million-agent
scenarios need (synchronized flash waves, diurnal rate curves).

All builders return schedules sorted by time (stable, so equal-time
fires keep agent order) and are deterministic per generator state.

Poisson schedules use the conditional-uniform construction: the number
of arrivals in a window is Poisson(rate x window), and given the count
the arrival instants are i.i.d. uniform over the window — which
vectorises to two numpy draws instead of a per-event exponential walk.

Fire times are *send* instants at the client.  What the server sees is
shaped downstream: channel delay always, and — when the campaign's
``ScaleSpec.links`` assigns the population an access-network profile
(:mod:`repro.net.sim.links`) — per-agent RTT, loss-and-retry
reshaping, and shared-uplink queueing on top.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "FireSchedule",
    "flash_waves",
    "poisson_fires",
    "pulse_fires",
    "rate_curve_fires",
    "diurnal_fires",
    "ramp_fires",
    "merge_schedules",
]

#: ``(times, agents)`` parallel arrays, time-sorted.
FireSchedule = tuple[np.ndarray, np.ndarray]


def _sorted(times: np.ndarray, agents: np.ndarray) -> FireSchedule:
    order = np.argsort(times, kind="stable")
    return times[order], agents[order]


def flash_waves(
    agents: np.ndarray,
    rng: np.random.Generator,
    *,
    start: float = 0.0,
    waves: int = 1,
    wave_gap: float = 1.0,
    jitter: float = 0.05,
) -> FireSchedule:
    """Synchronized stampede: every agent fires once per wave.

    Each wave ``w`` is centred at ``start + w * wave_gap``; individual
    fires land uniformly within ``[wave, wave + jitter]`` — a flash
    crowd is near-simultaneous, not instantaneous.  ``jitter=0`` makes
    the wave a single simulated instant.
    """
    if waves < 1:
        raise ValueError(f"waves must be >= 1, got {waves}")
    if wave_gap < 0 or jitter < 0:
        raise ValueError("wave_gap and jitter must be >= 0")
    agents = np.asarray(agents, dtype=np.int64)
    blocks_t, blocks_a = [], []
    for wave in range(waves):
        base = start + wave * wave_gap
        offsets = (
            rng.uniform(0.0, jitter, agents.size) if jitter > 0 else 0.0
        )
        blocks_t.append(np.full(agents.size, base) + offsets)
        blocks_a.append(agents)
    return _sorted(np.concatenate(blocks_t), np.concatenate(blocks_a))


def poisson_fires(
    agents: np.ndarray,
    rates: np.ndarray,
    duration: float,
    rng: np.random.Generator,
    *,
    start: float = 0.0,
) -> FireSchedule:
    """Independent Poisson processes, one per agent, at ``rates[i]``."""
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    agents = np.asarray(agents, dtype=np.int64)
    rates = np.broadcast_to(np.asarray(rates, dtype=np.float64), agents.shape)
    counts = rng.poisson(rates * duration)
    total = int(counts.sum())
    times = rng.uniform(start, start + duration, total)
    owners = np.repeat(agents, counts)
    return _sorted(times, owners)


def pulse_fires(
    agents: np.ndarray,
    rates: np.ndarray,
    duration: float,
    rng: np.random.Generator,
    *,
    start: float = 0.0,
    on_seconds: float = 1.0,
    off_seconds: float = 4.0,
) -> FireSchedule:
    """Pulsing on/off waves: Poisson at ``rates`` during ON windows.

    The vectorized sibling of
    :func:`repro.traffic.arrivals.onoff_arrivals`: windows alternate
    deterministically, arrivals within an ON window are Poisson.
    """
    if on_seconds <= 0 or off_seconds < 0:
        raise ValueError("on_seconds must be > 0 and off_seconds >= 0")
    blocks_t, blocks_a = [], []
    window_start = start
    end = start + duration
    while window_start < end:
        window = min(on_seconds, end - window_start)
        t, a = poisson_fires(
            agents, rates, window, rng, start=window_start
        )
        blocks_t.append(t)
        blocks_a.append(a)
        window_start += on_seconds + off_seconds
    return _sorted(np.concatenate(blocks_t), np.concatenate(blocks_a))


def rate_curve_fires(
    agents: np.ndarray,
    peak_rates: np.ndarray,
    duration: float,
    rng: np.random.Generator,
    shape,
    *,
    start: float = 0.0,
) -> FireSchedule:
    """Inhomogeneous Poisson by thinning a peak-rate process.

    ``shape(t)`` maps elapsed time (array, in ``[0, duration]``) to an
    acceptance probability in [0, 1]; fires survive with that
    probability — the standard thinning construction, vectorised.
    """
    times, owners = poisson_fires(
        agents, peak_rates, duration, rng, start=start
    )
    accept = np.asarray(shape(times - start), dtype=np.float64)
    keep = rng.random(times.size) < accept
    return times[keep], owners[keep]


def diurnal_fires(
    agents: np.ndarray,
    peak_rates: np.ndarray,
    duration: float,
    rng: np.random.Generator,
    *,
    start: float = 0.0,
    period: float | None = None,
    trough: float = 0.15,
) -> FireSchedule:
    """Day/night rate curve: sinusoid between ``trough`` and 1.0.

    ``period`` defaults to the full duration (one day compressed into
    the run); ``trough`` is the night-time fraction of the peak rate.
    """
    if not 0.0 <= trough <= 1.0:
        raise ValueError(f"trough must be in [0, 1], got {trough}")
    cycle = duration if period is None else period

    def shape(t: np.ndarray) -> np.ndarray:
        phase = 0.5 - 0.5 * np.cos(2.0 * np.pi * t / cycle)
        return trough + (1.0 - trough) * phase

    return rate_curve_fires(
        agents, peak_rates, duration, rng, shape, start=start
    )


def ramp_fires(
    agents: np.ndarray,
    peak_rates: np.ndarray,
    duration: float,
    rng: np.random.Generator,
    *,
    start: float = 0.0,
) -> FireSchedule:
    """Linear 0 → peak ramp (attack onset), by thinning."""
    return rate_curve_fires(
        agents,
        peak_rates,
        duration,
        rng,
        lambda t: t / duration,
        start=start,
    )


def merge_schedules(*schedules: FireSchedule) -> FireSchedule:
    """Interleave several fire schedules into one time-sorted stream."""
    live = [s for s in schedules if s[0].size]
    if not live:
        return np.empty(0), np.empty(0, dtype=np.int64)
    times = np.concatenate([s[0] for s in live])
    agents = np.concatenate([s[1] for s in live])
    return _sorted(times, agents)
