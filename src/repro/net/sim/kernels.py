"""Residual per-cohort kernels with an optional compiled backend.

After vectorization (DESIGN §1.5) the fastsim hot loop spends its time
in a handful of small array kernels that run once per cohort: the FIFO
running sum, the patience/TTL comparison masks, and geometric solve
sampling.  This module gives each kernel two interchangeable
implementations:

* a **pure-numpy** version — always present, the tested default, and
  the reference the parity suites pin down bit-for-bit;
* an optional **numba-jitted** version, compiled only when ``numba``
  imports.  The jitted variants are parity-asserted against the numpy
  versions on deterministic samples at import time; any mismatch (or
  any compile failure) silently keeps the numpy backend.  The
  environment this repo targets ships no compiler toolchain, so numpy
  is the default everywhere numbers are reported.

Bit-exactness is part of the kernel contract, not a nicety: FIFO
completion times feed the load-adaptive policy and the TTL comparison
(where one ULP flips a decision), and the geometric sampler's outputs
enter the decision stream parity checks.  The numba FIFO variant is the
same left-associated running sum as ``np.cumsum``; the geometric
variant evaluates the identical ``ceil(log u / log1p(-2**-d))``
expression.  Callers own RNG consumption — :func:`geometric_attempts`
takes pre-drawn uniforms, so backend choice can never shift a random
stream.

``python -m repro kernels`` microbenches every kernel on every
available backend (:mod:`repro.bench.kernels`).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "NUMBA_AVAILABLE",
    "active_backend",
    "backends",
    "fifo_running_sum",
    "geometric_attempts",
    "patience_mask",
    "ttl_mask",
]


# ----------------------------------------------------------------------
# Pure-numpy reference implementations (always available)
# ----------------------------------------------------------------------
def _fifo_running_sum_numpy(
    start: float, costs: np.ndarray | float, count: int
) -> np.ndarray:
    """Left-associated running sum of ``costs`` seeded with ``start``.

    ``out[i] = start + costs[0] + ... + costs[i]`` with the additions
    performed strictly left to right — the vector form of the callback
    engine's scalar FIFO recurrence (see ``FastSimulation._fifo``).
    ``costs`` may be a scalar (uniform per-item cost) or a vector.
    """
    seeded = np.empty(count + 1)
    seeded[0] = start
    seeded[1:] = costs
    return np.cumsum(seeded)[1:]


def _geometric_attempts_numpy(
    difficulties: np.ndarray, uniforms: np.ndarray
) -> np.ndarray:
    """Inverse-CDF geometric attempt counts from pre-drawn uniforms.

    ``ceil(ln U / ln(1 - 2**-d))`` for strictly positive difficulties;
    the ``U == 0`` edge is nudged to the smallest positive float (the
    array equivalent of redrawing).  Callers draw ``uniforms``
    themselves so RNG consumption is identical across backends.
    """
    p = np.exp2(-np.asarray(difficulties, dtype=np.float64))
    u = np.maximum(uniforms, np.nextafter(0.0, 1.0))
    return np.maximum(1.0, np.ceil(np.log(u) / np.log1p(-p)))


def _patience_mask_numpy(
    solve_end: np.ndarray, receipt: np.ndarray, patience: np.ndarray
) -> np.ndarray:
    """True where grinding past ``receipt + patience`` → client abandons."""
    return (solve_end - receipt) > patience


def _ttl_mask_numpy(
    now: float, issued_at: np.ndarray, ttl: float
) -> np.ndarray:
    """True where a solution arrives after its puzzle's TTL window."""
    return (now - issued_at) > ttl


_NUMPY = {
    "fifo_running_sum": _fifo_running_sum_numpy,
    "geometric_attempts": _geometric_attempts_numpy,
    "patience_mask": _patience_mask_numpy,
    "ttl_mask": _ttl_mask_numpy,
}
_NUMBA: dict[str, object] = {}

#: True when the numba package imports (regardless of whether the
#: jitted variants passed parity and became the active backend).
NUMBA_AVAILABLE = False
_BACKEND = "numpy"

# Active dispatch targets — rebound once, at import time, if the numba
# variants compile and pass parity.
fifo_running_sum = _fifo_running_sum_numpy
geometric_attempts = _geometric_attempts_numpy
patience_mask = _patience_mask_numpy
ttl_mask = _ttl_mask_numpy


def active_backend() -> str:
    """``"numpy"`` or ``"numba"`` — whichever the module dispatches to."""
    return _BACKEND


def backends() -> dict[str, dict[str, object]]:
    """Kernel name → {backend name → callable}, for the microbench.

    Every kernel always has a ``"numpy"`` entry; ``"numba"`` entries
    appear only when the jitted variants compiled and passed parity.
    """
    out: dict[str, dict[str, object]] = {
        name: {"numpy": fn} for name, fn in _NUMPY.items()
    }
    for name, fn in _NUMBA.items():
        out[name]["numba"] = fn
    return out


# ----------------------------------------------------------------------
# Optional numba backend (auto-selected, parity-asserted)
# ----------------------------------------------------------------------
def _parity_ok() -> bool:
    """Bit-compare every numba variant against numpy on fixed samples."""
    rng = np.random.default_rng(0xC0FFEE)
    start = 3.7
    costs = rng.random(257)
    d = rng.integers(1, 24, 257).astype(np.float64)
    u = rng.random(257)
    receipt = rng.random(257) * 10.0
    solve_end = receipt + rng.random(257) * 5.0
    patience = np.full(257, 2.5)
    issued = rng.random(257) * 10.0
    checks = (
        ("fifo_running_sum", (start, costs, 257)),
        ("fifo_running_sum", (start, 0.0002, 257)),
        ("geometric_attempts", (d, u)),
        ("patience_mask", (solve_end, receipt, patience)),
        ("ttl_mask", (7.0, issued, 5.0)),
    )
    for name, args in checks:
        if not np.array_equal(_NUMPY[name](*args), _NUMBA[name](*args)):
            return False
    return True


def _try_enable_numba() -> None:
    global NUMBA_AVAILABLE, _BACKEND, _NUMBA
    global fifo_running_sum, geometric_attempts, patience_mask, ttl_mask
    try:
        import numba
    except ImportError:
        return
    NUMBA_AVAILABLE = True
    try:
        njit = numba.njit(cache=True)

        @njit
        def _fifo_jit(start, costs, out):  # pragma: no cover - needs numba
            acc = start
            for i in range(costs.size):
                acc = acc + costs[i]
                out[i] = acc

        @njit
        def _geom_jit(d, u, out):  # pragma: no cover - needs numba
            tiny = np.nextafter(0.0, 1.0)
            for i in range(d.size):
                p = np.exp2(-d[i])
                ui = u[i] if u[i] > tiny else tiny
                a = np.ceil(np.log(ui) / np.log1p(-p))
                out[i] = a if a > 1.0 else 1.0

        @njit
        def _cmp_jit(lhs, rhs, out):  # pragma: no cover - needs numba
            for i in range(lhs.size):
                out[i] = lhs[i] > rhs[i]

        def _fifo_numba(start, costs, count):
            arr = np.ascontiguousarray(
                np.broadcast_to(
                    np.asarray(costs, dtype=np.float64), (count,)
                )
            )
            out = np.empty(count)
            _fifo_jit(float(start), arr, out)
            return out

        def _geom_numba(difficulties, uniforms):
            d = np.ascontiguousarray(difficulties, dtype=np.float64)
            out = np.empty(d.size)
            _geom_jit(d, np.ascontiguousarray(uniforms), out)
            return out

        def _patience_numba(solve_end, receipt, patience):
            out = np.empty(solve_end.size, dtype=np.bool_)
            _cmp_jit(
                np.ascontiguousarray(solve_end - receipt),
                np.ascontiguousarray(patience, dtype=np.float64),
                out,
            )
            return out

        def _ttl_numba(now, issued_at, ttl):
            k = issued_at.size
            out = np.empty(k, dtype=np.bool_)
            _cmp_jit(
                np.full(k, float(now)) - np.ascontiguousarray(issued_at),
                np.full(k, float(ttl)),
                out,
            )
            return out

        _NUMBA = {
            "fifo_running_sum": _fifo_numba,
            "geometric_attempts": _geom_numba,
            "patience_mask": _patience_numba,
            "ttl_mask": _ttl_numba,
        }
        if not _parity_ok():  # pragma: no cover - needs numba
            _NUMBA = {}
            return
        fifo_running_sum = _fifo_numba  # pragma: no cover - needs numba
        geometric_attempts = _geom_numba
        patience_mask = _patience_numba
        ttl_mask = _ttl_numba
        _BACKEND = "numba"
    except Exception:  # pragma: no cover - compile failure → fallback
        _NUMBA = {}


_try_enable_numba()
