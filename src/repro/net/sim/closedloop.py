"""Closed-loop client sessions for the simulator.

The trace-driven :class:`~repro.net.sim.simulation.Simulation` is
*open-loop*: requests arrive on a fixed schedule regardless of how the
server responds.  Real users are closed-loop — they wait for a page,
think, then click again — which changes the dynamics fundamentally:
PoW-induced latency *reduces a closed-loop client's own offered load*,
an effect the open-loop model cannot show.

:class:`ClosedLoopSimulation` drives sessions instead of traces: each
client repeatedly (request → solve → response → think) for a fixed
number of exchanges.  It reuses the same framework, channel, solve-time
and server-queue models as the open-loop simulation, so results are
directly comparable.

Like the open-loop simulation, requests reaching the server at the same
simulated instant (e.g. many sessions starting together) are admitted
through :meth:`AIPoWFramework.challenge_batch` in one batch, with each
puzzle stamped at its own FIFO-derived issue time.  Scoring and delay
draws happen at the arrival instant (not each request's issue time) —
the same deliberate approximation documented in
:mod:`repro.net.sim.simulation`.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Mapping, Sequence

from repro.core.events import EventKind
from repro.core.framework import AIPoWFramework, Challenge
from repro.core.records import ResponseStatus, ServedResponse
from repro.metrics.collector import MetricsCollector
from repro.net.sim.channel import Channel, FixedDelayChannel
from repro.net.sim.engine import EventEngine
from repro.net.sim.simulation import ServerModel
from repro.net.sim.solvetime import SolveTimeModel
from repro.traffic.generator import SimClientSpec

__all__ = ["SessionSpec", "ClosedLoopReport", "ClosedLoopSimulation"]


@dataclasses.dataclass(frozen=True, slots=True)
class SessionSpec:
    """One closed-loop client session.

    Parameters
    ----------
    client:
        The concrete client (address, features, profile).
    exchanges:
        Number of request/response cycles the session attempts.
    think_time:
        Mean seconds between receiving a response and the next request
        (exponentially distributed).
    start:
        Session start time.
    """

    client: SimClientSpec
    exchanges: int = 10
    think_time: float = 1.0
    start: float = 0.0

    def __post_init__(self) -> None:
        if self.exchanges < 1:
            raise ValueError(f"exchanges must be >= 1, got {self.exchanges}")
        if self.think_time < 0:
            raise ValueError(f"think_time must be >= 0, got {self.think_time}")
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")


@dataclasses.dataclass
class ClosedLoopReport:
    """Outcome of a closed-loop run."""

    metrics: MetricsCollector
    duration: float
    sessions: int
    completed_exchanges: int

    @property
    def throughput(self) -> float:
        """Served exchanges per second of simulated time."""
        served = self.metrics.overall.served
        return served / self.duration if self.duration > 0 else 0.0


class ClosedLoopSimulation:
    """Session-driven simulation sharing the open-loop server model."""

    def __init__(
        self,
        framework: AIPoWFramework,
        channel: Channel | None = None,
        server_model: ServerModel | None = None,
        seed: int = 4321,
        hash_rates: Mapping[str, float] | None = None,
        recorder=None,
        engine: str = "callback",
        links=None,
    ) -> None:
        if engine not in ("callback", "fast"):
            raise ValueError(
                f"engine must be 'callback' or 'fast', got {engine!r}"
            )
        if links is not None and not links.delay_only:
            # Closed-loop exchanges have no request identity to key
            # loss hashes on and no give-up semantics; only the
            # propagation-delay part of a link is defined here.
            raise ValueError(
                "closed-loop runs support delay-only link profiles; "
                "lossy or bandwidth-capped links need the open-loop "
                "simulations"
            )
        self.framework = framework
        self.recorder = recorder
        self.engine_kind = engine
        self.links = links
        self._link_base: dict[tuple[str, str], float] = {}
        self._fast = None
        if engine == "fast":
            from repro.net.sim.fastsim import FastSimulation

            # The fast core owns the recorder attachment in this mode.
            self._fast = FastSimulation(
                framework,
                channel=channel,
                server_model=server_model,
                seed=seed,
                hash_rates=dict(hash_rates or {}),
                recorder=recorder,
                links=links,
            )
        elif recorder is not None:
            recorder.attach(framework.events)
        timing = framework.config.timing
        self.channel = channel or FixedDelayChannel(timing.network_overhead / 4)
        self.server_model = server_model or ServerModel()
        self.solve_time = SolveTimeModel(timing)
        self.engine = EventEngine()
        self.rng = random.Random(seed)
        self.hash_rates = dict(hash_rates or {})
        self.metrics = MetricsCollector(classifier=self._classify)
        self._profiles: dict[str, str] = {}
        self._server_busy_until = 0.0
        self._completed = 0
        self._admission_batch: list[tuple] = []
        #: Number of same-timestep admission batches drained so far.
        self.admission_batches = 0
        #: Size of the largest same-timestep admission batch seen.
        self.largest_admission_batch = 0

    def _classify(self, response: ServedResponse) -> str:
        return self._profiles.get(
            response.decision.request.client_ip, "unknown"
        )

    def _delay(self) -> float:
        # Channel contract backstop: a negative delay would schedule
        # an event before its cause.
        return max(0.0, self.channel.one_way_delay(self.rng))

    def _base_of(self, session: SessionSpec) -> float:
        """The session's per-agent link propagation delay (0 = no link).

        Same hash kernel as the fast engine, evaluated on one-element
        arrays, so both engines add bit-identical delays per leg.
        """
        if self.links is None:
            return 0.0
        key = (session.client.profile.name, session.client.ip)
        hit = self._link_base.get(key)
        if hit is None:
            import ipaddress

            import numpy as np

            qid = int(self.links.queue_ids([key[0]])[0])
            hit = 0.0
            if qid >= 0:
                hit = float(
                    self.links.base_delays(
                        np.array(
                            [int(ipaddress.ip_address(key[1]))],
                            dtype=np.int64,
                        ),
                        np.array([qid], dtype=np.int64),
                    )[0]
                )
            self._link_base[key] = hit
        return hit

    def _server_complete(self, arrival: float, cost: float) -> float:
        start = max(arrival, self._server_busy_until)
        self._server_busy_until = start + cost
        return self._server_busy_until

    # ------------------------------------------------------------------
    def add_session(self, session: SessionSpec) -> None:
        """Register a session; its first request fires at ``session.start``."""
        if self._fast is not None:
            raise ValueError(
                "engine='fast' consumes the whole session list passed "
                "to run(); pre-added sessions would be silently "
                "dropped — include them in the run() argument instead"
            )
        self._profiles[session.client.ip] = session.client.profile.name
        if self.recorder is not None:
            self.recorder.register_source(
                session.client.ip,
                session.client.profile.name,
                session.client.true_score,
            )
        self.engine.schedule_at(
            session.start,
            lambda: self._begin_exchange(session, remaining=session.exchanges),
        )

    def _begin_exchange(self, session: SessionSpec, remaining: int) -> None:
        if remaining <= 0:
            return
        from repro.core.records import ClientRequest

        now = self.engine.now
        request = ClientRequest(
            client_ip=session.client.ip,
            resource="/session",
            timestamp=now,
            features=session.client.features,
        )
        arrive = now + self._delay() + self._base_of(session)
        self.engine.schedule_at(
            arrive,
            lambda: self._serve(session, request, remaining),
        )

    def _serve(self, session: SessionSpec, request, remaining: int) -> None:
        # Coalesce same-instant server arrivals into one admission
        # batch; the drain runs at the same timestamp after all of them
        # (FIFO among equal timestamps), mirroring the open-loop
        # simulation's batching.
        now = self.engine.now
        issue_at = self._server_complete(now, self.server_model.challenge_cost)
        self._admission_batch.append((session, request, remaining, issue_at))
        if len(self._admission_batch) == 1:
            self.engine.schedule_at(now, self._drain_admissions)

    def _drain_admissions(self) -> None:
        """Issue challenges for all same-timestep arrivals in one batch."""
        batch, self._admission_batch = self._admission_batch, []
        self.admission_batches += 1
        self.largest_admission_batch = max(
            self.largest_admission_batch, len(batch)
        )
        challenges = self.framework.challenge_batch(
            [request for _, request, _, _ in batch],
            now=[issue_at for _, _, _, issue_at in batch],
        )
        for (session, _request, remaining, issue_at), challenge in zip(
            batch, challenges
        ):
            self.engine.schedule_at(
                issue_at + self._delay() + self._base_of(session),
                lambda s=session, c=challenge, r=remaining: self._solve(
                    s, c, r
                ),
            )

    def _solve(
        self, session: SessionSpec, challenge: Challenge, remaining: int
    ) -> None:
        now = self.engine.now
        profile = session.client.profile
        rate = self.hash_rates.get(profile.name, profile.hash_rate)
        sample = self.solve_time.sample(
            challenge.decision.difficulty, self.rng, rate
        )
        if sample.seconds > profile.patience:
            finish_at = now + profile.patience
            self.engine.schedule_at(
                finish_at,
                lambda: self._finish(
                    session, challenge, ResponseStatus.ABANDONED,
                    remaining, sample.attempts,
                ),
            )
            return
        submit_at = now + sample.seconds + self._delay() + self._base_of(session)
        self.engine.schedule_at(
            submit_at,
            lambda: self._redeem(session, challenge, remaining, sample.attempts),
        )

    def _redeem(
        self,
        session: SessionSpec,
        challenge: Challenge,
        remaining: int,
        attempts: int,
    ) -> None:
        now = self.engine.now
        cost = self.server_model.verify_cost + self.server_model.resource_cost
        done = self._server_complete(now, cost)
        self.engine.schedule_at(
            done + self._delay() + self._base_of(session),
            lambda: self._finish(
                session, challenge, ResponseStatus.SERVED, remaining, attempts
            ),
        )

    def _finish(
        self,
        session: SessionSpec,
        challenge: Challenge,
        status: ResponseStatus,
        remaining: int,
        attempts: int,
    ) -> None:
        now = self.engine.now
        response = ServedResponse(
            decision=challenge.decision,
            status=status,
            latency=max(0.0, now - challenge.decision.request.timestamp),
            solve_attempts=attempts,
        )
        self.metrics.observe(response)
        self.framework.events.emit(
            EventKind.RESPONSE_SERVED, now, response=response
        )
        self._completed += 1
        if remaining - 1 > 0:
            think = (
                self.rng.expovariate(1.0 / session.think_time)
                if session.think_time > 0
                else 0.0
            )
            self.engine.schedule_at(
                now + think,
                lambda: self._begin_exchange(session, remaining - 1),
            )

    # ------------------------------------------------------------------
    def run(
        self, sessions: Sequence[SessionSpec], until: float | None = None
    ) -> ClosedLoopReport:
        """Drive ``sessions`` to completion (or ``until``)."""
        if not sessions:
            raise ValueError("need at least one session")
        if self._fast is not None:
            report = self._fast.run_sessions(sessions, until=until)
            self.metrics = report.metrics
            self._completed = report.completed_exchanges
            self.admission_batches = self._fast.admission_batches
            self.largest_admission_batch = self._fast.largest_admission_batch
            return report
        for session in sessions:
            self.add_session(session)
        self.engine.run(until=until)
        return ClosedLoopReport(
            metrics=self.metrics,
            duration=self.engine.now,
            sessions=len(sessions),
            completed_exchanges=self._completed,
        )
