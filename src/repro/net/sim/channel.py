"""Network channel models: one-way delay sampling.

The paper's testbed is "a simple networked client-server environment";
its fixed overhead shows up as the ~31 ms floor on 1-difficult puzzles.
Channels model the network half of that floor.  Each model samples
*one-way* delays; a request/challenge/solution/response exchange crosses
the channel four times.
"""

from __future__ import annotations

import random
from typing import Protocol, runtime_checkable

__all__ = [
    "Channel",
    "FixedDelayChannel",
    "UniformJitterChannel",
    "LognormalChannel",
]


@runtime_checkable
class Channel(Protocol):
    """Samples one-way network delays in seconds.

    ``one_way_delay`` is the required scalar hook.  The shipped
    channels additionally implement ``delay_array(rng, count)`` — a
    numpy-generator batch draw — so the vectorized simulator can
    sample a whole cohort's crossings in one call; third-party
    scalar-only channels fall back to a per-draw loop there.

    Contract (both hooks):

    * every delay is **finite and >= 0** — the simulators additionally
      clamp at zero on every use, so a misbehaving channel can shrink
      a delay but can never schedule an event in the past;
    * ``delay_array(rng, count)`` returns a ``float64`` array of shape
      ``(count,)``.  The dtype matters: link composition adds channel
      delays to hash-derived float64 link delays, and a narrower dtype
      would make the scalar and vectorized engines round differently.
    """

    def one_way_delay(self, rng: random.Random) -> float: ...


class FixedDelayChannel:
    """Constant one-way delay — the deterministic default.

    The default quarter of :attr:`~repro.core.config.TimingConfig.network_overhead`
    makes four crossings sum to the calibrated overhead exactly.
    """

    def __init__(self, delay: float = 0.030 / 4) -> None:
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.delay = delay

    def one_way_delay(self, rng: random.Random) -> float:
        return self.delay

    def delay_array(self, rng, count: int):
        """Batch draw: the constant, broadcastable (no RNG consumed)."""
        import numpy as np

        return np.full(count, self.delay, dtype=np.float64)


class UniformJitterChannel:
    """Base delay plus uniform jitter in ``[0, jitter]`` seconds."""

    def __init__(self, base: float = 0.006, jitter: float = 0.003) -> None:
        if base < 0:
            raise ValueError(f"base must be >= 0, got {base}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.base = base
        self.jitter = jitter

    def one_way_delay(self, rng: random.Random) -> float:
        return self.base + rng.uniform(0.0, self.jitter)

    def delay_array(self, rng, count: int):
        """Batch draw from a numpy generator (same distribution)."""
        return self.base + rng.uniform(0.0, self.jitter, count)


class LognormalChannel:
    """Heavy-tailed delays: ``exp(N(mu, sigma))`` seconds.

    Internet one-way delays are right-skewed; this model exercises the
    framework's behaviour under realistic tail latency.
    """

    def __init__(self, median: float = 0.0075, sigma: float = 0.35) -> None:
        if median <= 0:
            raise ValueError(f"median must be > 0, got {median}")
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        import math

        self.mu = math.log(median)
        self.sigma = sigma

    def one_way_delay(self, rng: random.Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)

    def delay_array(self, rng, count: int):
        """Batch draw from a numpy generator (same distribution)."""
        return rng.lognormal(self.mu, self.sigma, count)
