"""Struct-of-arrays agent populations for the vectorized simulator.

The object-per-client :class:`~repro.traffic.generator.SimClientSpec`
path mints a Python dict of features per client — fine for hundreds,
hopeless for a million.  :class:`AgentPopulation` keeps the same world
model (per-profile Beta intensities, the corpus feature process, one
fixed feature vector per client) as parallel numpy arrays: column ``i``
of every array describes agent ``i``.

Agents carry no Python identity on the hot path; IP strings are
materialised lazily (:meth:`ip_strings`) only when something needs
interop with the object world — recording a trace, or building a
:class:`~repro.traffic.trace.Trace` so the callback reference engine
can run the identical workload (:meth:`to_trace`).
"""

from __future__ import annotations

import dataclasses
import ipaddress
from typing import Iterable, Sequence

import numpy as np

from repro.reputation.dataset import synthesize_feature_matrix
from repro.reputation.features import DEFAULT_SCHEMA, FeatureSchema
from repro.traffic.profiles import ClientProfile

__all__ = ["AgentPopulation"]


@dataclasses.dataclass
class AgentPopulation:
    """A mixed client population as struct-of-arrays.

    Attributes
    ----------
    profiles:
        The distinct :class:`ClientProfile` objects, indexed by the
        values in :attr:`profile_id`.
    profile_id:
        ``int32[n]`` — which profile each agent belongs to.
    intensity:
        ``float64[n]`` — latent maliciousness in [0, 1] (ground-truth
        score is ``10 * intensity``).
    features:
        ``float64[n, k]`` — raw feature rows in schema column order,
        fixed at mint time exactly like ``SimClientSpec.features``.
    ip_index:
        ``int64[n]`` — offset of each agent's address inside its
        profile's subnet; strings are derived on demand.
    """

    profiles: tuple[ClientProfile, ...]
    profile_id: np.ndarray
    intensity: np.ndarray
    features: np.ndarray
    ip_index: np.ndarray
    schema: FeatureSchema = dataclasses.field(default_factory=lambda: DEFAULT_SCHEMA)

    def __post_init__(self) -> None:
        n = len(self.profile_id)
        for name in ("intensity", "ip_index"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} must have one entry per agent")
        if self.features.shape != (n, len(self.schema)):
            raise ValueError(
                f"features must be ({n}, {len(self.schema)}), "
                f"got {self.features.shape}"
            )
        if n and (self.profile_id.min() < 0 or self.profile_id.max() >= len(self.profiles)):
            raise ValueError("profile_id out of range")

    # ------------------------------------------------------------------
    # Minting
    # ------------------------------------------------------------------
    @classmethod
    def make(
        cls,
        populations: Iterable[tuple[ClientProfile, int]],
        seed: int = 42,
        schema: FeatureSchema | None = None,
        noise_sd: float = 3.4,
    ) -> "AgentPopulation":
        """Mint ``(profile, count)`` populations in one vectorised pass.

        Addresses are unique within each profile's subnet (sampled
        without replacement), matching
        :func:`~repro.traffic.generator.make_population`'s invariant.
        """
        schema = schema or DEFAULT_SCHEMA
        rng = np.random.default_rng(seed)
        profiles: list[ClientProfile] = []
        pid_blocks: list[np.ndarray] = []
        intensity_blocks: list[np.ndarray] = []
        ip_blocks: list[np.ndarray] = []
        for profile, count in populations:
            if count < 1:
                raise ValueError(f"population count must be >= 1, got {count}")
            pid = len(profiles)
            profiles.append(profile)
            pid_blocks.append(np.full(count, pid, dtype=np.int32))
            intensity_blocks.append(
                rng.beta(profile.intensity_alpha, profile.intensity_beta, count)
            )
            ip_blocks.append(_sample_host_offsets(profile.subnet, count, rng))
        profile_id = np.concatenate(pid_blocks)
        intensity = np.concatenate(intensity_blocks)
        features = synthesize_feature_matrix(
            intensity, rng, noise_sd=noise_sd, schema=schema
        )
        return cls(
            profiles=tuple(profiles),
            profile_id=profile_id,
            intensity=intensity,
            features=features,
            ip_index=np.concatenate(ip_blocks),
            schema=schema,
        )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.profile_id)

    @property
    def true_scores(self) -> np.ndarray:
        """Ground-truth reputation per agent (``10 * intensity``)."""
        return 10.0 * self.intensity

    @property
    def profile_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.profiles)

    def per_agent(self, attribute: str) -> np.ndarray:
        """Broadcast a numeric profile attribute onto agents.

        ``population.per_agent("hash_rate")`` is the ``float64[n]``
        vector of each agent's profile hash rate; same for
        ``patience`` and ``request_rate``.
        """
        table = np.array(
            [float(getattr(p, attribute)) for p in self.profiles]
        )
        return table[self.profile_id]

    def subset(self, indices: np.ndarray) -> "AgentPopulation":
        """A new population holding only ``indices`` (in that order).

        Profiles and schema are shared; the per-agent arrays are fancy-
        indexed copies, so the subset is safe to ship across process
        boundaries.  Addresses (and therefore packed IPs, link hashes,
        and ground truth) are preserved per agent — a shard's sub-
        population behaves identically to the same agents inside the
        full population.
        """
        indices = np.asarray(indices, dtype=np.int64)
        return AgentPopulation(
            profiles=self.profiles,
            profile_id=self.profile_id[indices],
            intensity=self.intensity[indices],
            features=self.features[indices],
            ip_index=self.ip_index[indices],
            schema=self.schema,
        )

    def score_with(self, model) -> np.ndarray:
        """Model scores for every agent in one vectorised pass.

        Requires a model with the ``score_batch`` raw-matrix API (all
        shipped :class:`~repro.reputation.base.BaseReputationModel`
        subclasses).  Features are fixed per agent, so one pass gives
        the agent's score for the whole run — the key admission-cost
        amortisation of the vectorized simulator.
        """
        scorer = getattr(model, "score_batch", None)
        if scorer is None:
            raise TypeError(
                f"model {type(model).__name__} has no score_batch; "
                "stateful wrappers must be scored per request via the "
                "framework admission path"
            )
        model_schema = getattr(model, "schema", None)
        if model_schema is not None and model_schema.names != self.schema.names:
            # Feature rows are consumed positionally; a column-order
            # mismatch would silently score garbage.
            raise ValueError(
                "population schema does not match the model's: "
                f"{self.schema.names} vs {model_schema.names}"
            )
        return np.asarray(scorer(self.features), dtype=np.float64)

    def packed_ips(self) -> np.ndarray:
        """Integer-packed address per agent (``int64[n]``), vectorised.

        ``int(ipaddress.ip_address(ip_strings()[i]))`` for every agent
        without minting a single string: the profile subnet's network
        address plus the agent's host offset.  This is the hash input
        for per-agent link delays (:mod:`repro.net.sim.links`) — both
        engines derive the same integers, so hash-keyed draws agree
        bit-for-bit.
        """
        bases = np.array(
            [
                int(ipaddress.ip_network(p.subnet).network_address)
                for p in self.profiles
            ],
            dtype=np.int64,
        )
        return bases[self.profile_id] + self.ip_index.astype(np.int64)

    def ip_strings(self, agents: Sequence[int] | None = None) -> list[str]:
        """Dotted-quad addresses for ``agents`` (default: everyone).

        Deliberately lazy — a million-agent run only pays for string
        addresses when something (a recorder, a Trace export) needs
        them.
        """
        if agents is None:
            indices = range(len(self))
        else:
            indices = [int(a) for a in agents]
        bases = [
            int(ipaddress.ip_network(p.subnet).network_address)
            for p in self.profiles
        ]
        out = []
        for i in indices:
            packed = bases[self.profile_id[i]] + int(self.ip_index[i])
            out.append(str(ipaddress.ip_address(packed)))
        return out

    def to_trace(self, fire_times: np.ndarray, fire_agents: np.ndarray):
        """Materialise a fire schedule as an object-world ``Trace``.

        One :class:`~repro.traffic.trace.TraceEntry` per fire, with the
        agent's fixed feature mapping — how the megasim bench hands the
        *identical* workload to the callback reference engine.  Cost is
        linear in fires; intended for parity runs, not the hot path.
        """
        from repro.core.records import ClientRequest
        from repro.traffic.trace import Trace, TraceEntry

        ips = self.ip_strings()
        names = self.schema.names
        rows = self.features
        true = self.true_scores
        profile_names = self.profile_names
        entries = []
        for order, (when, agent) in enumerate(
            zip(fire_times.tolist(), fire_agents.tolist()), start=1
        ):
            entries.append(
                TraceEntry(
                    request=ClientRequest(
                        client_ip=ips[agent],
                        resource="/index.html",
                        timestamp=float(when),
                        features=dict(zip(names, rows[agent].tolist())),
                        request_id=f"fire-{order}",
                    ),
                    profile=profile_names[self.profile_id[agent]],
                    true_score=float(true[agent]),
                )
            )
        return Trace(entries)


def _sample_host_offsets(
    subnet: str, count: int, rng: np.random.Generator
) -> np.ndarray:
    """``count`` distinct host offsets within ``subnet`` (no .0 host).

    For blocks much larger than ``count`` this samples with a retry
    loop (collisions are rare); for tight blocks it falls back to a
    partial permutation.  Either way the result is deterministic per
    generator state.
    """
    network = ipaddress.ip_network(subnet)
    space = network.num_addresses - 2  # skip network/broadcast-ish hosts
    if space < count:
        raise ValueError(
            f"subnet {subnet} has {space} usable hosts, need {count}"
        )
    if count * 4 >= space:
        return rng.permutation(space)[:count] + 1
    picks = rng.integers(1, space + 1, size=int(count * 1.1) + 16)
    unique = np.unique(picks)
    while unique.size < count:
        extra = rng.integers(1, space + 1, size=count)
        unique = np.unique(np.concatenate([unique, extra]))
    chosen = rng.permutation(unique)[:count]
    return chosen.astype(np.int64)
