"""Vectorized lossy-link layer: per-agent RTT, capacity, loss, retries.

Channels (:mod:`repro.net.sim.channel`) model the *backbone*: one
delay distribution shared by every client.  Real client populations
are heterogeneous — a datacenter bot sits microseconds from the
server while a cell-edge phone adds tens of milliseconds, drops
packets, and shares a congested uplink with its whole cell.  This
module models that access network, shaped like the trace-driven
``Link`` of congestion-control simulators (SNIPPETS.md Snippet 1):

* **per-agent propagation delay** — a lognormal one-way RTT share,
  derived deterministically from the agent's packed IP address
  (:meth:`LinkSet.base_delays`), so the SoA fast engine and the scalar
  callback engine agree bit-for-bit without coordinating a sampling
  order;
* **trace-driven capacity** — a piecewise-constant uplink rate
  (:class:`BandwidthTrace`) with a FIFO transmission queue; queued
  work adds bufferbloat delay and a full queue tail-drops
  (:meth:`LinkSession.cross`);
* **random loss** — each client→server crossing is lost with the
  profile's ``loss_rate``, decided by a counter-based hash of
  ``(request id, leg, attempt)`` rather than an RNG stream, again so
  both engines draw identical losses;
* **retransmission** — lost or dropped crossings are retried with
  exponential backoff up to ``max_retries``; request-leg retries also
  give up once the next attempt would land past the client's patience
  window, and solution-leg retries race the puzzle TTL (a late
  redemption expires server-side).

A :class:`LinkSet` assigns one :class:`LinkProfile` per population
profile.  Two populations assigned the same *named* profile share one
transmission queue — the shared-bottleneck case where an attack's own
volume congests the benign clients (and the attacker's own solution
submissions, degrading its solver turnaround).

Engine contract
---------------
All state lives in :class:`LinkSession` (per-run) as plain floats per
queue; per-agent state is struct-of-arrays.  The scalar engines call
the same vectorized kernels with one-element arrays, which is what
makes fast-vs-callback decision parity bit-exact: there is exactly one
implementation of every arithmetic path.  See DESIGN.md §1.6 for the
parity envelope (what is bit-identical, what drifts and why).
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

import numpy as np

__all__ = [
    "BandwidthTrace",
    "LinkProfile",
    "LinkSet",
    "LinkSession",
    "LinkStats",
    "LINK_PROFILES",
    "resolve_link_profile",
]


# ----------------------------------------------------------------------
# Deterministic hashing: the engines' shared randomness
# ----------------------------------------------------------------------
_SPLIT_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SPLIT_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SPLIT_M2 = np.uint64(0x94D049BB133111EB)


def _mix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer over a uint64 array (wrapping arithmetic)."""
    x = (x + _SPLIT_GAMMA).astype(np.uint64)
    x ^= x >> np.uint64(30)
    x *= _SPLIT_M1
    x ^= x >> np.uint64(27)
    x *= _SPLIT_M2
    x ^= x >> np.uint64(31)
    return x


def _uniform01(h: np.ndarray) -> np.ndarray:
    """Map uint64 hashes onto the open interval (0, 1)."""
    return ((h >> np.uint64(11)).astype(np.float64) + 0.5) * 2.0**-53


def _norm_ppf(u: np.ndarray) -> np.ndarray:
    """Inverse standard-normal CDF (Acklam's rational approximation).

    Max absolute error ~1.15e-9 — far below what an RTT draw can
    resolve — and, crucially, a *deterministic* pure-numpy expression:
    both engines evaluate the identical float path, so sampled delays
    are bit-equal between scalar and vector callers.
    """
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    u = np.asarray(u, dtype=np.float64)
    out = np.empty_like(u)
    low, high = 0.02425, 1.0 - 0.02425

    lo = u < low
    if lo.any():
        q = np.sqrt(-2.0 * np.log(u[lo]))
        out[lo] = (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    hi = u > high
    if hi.any():
        q = np.sqrt(-2.0 * np.log(1.0 - u[hi]))
        out[hi] = -(
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    mid = ~(lo | hi)
    if mid.any():
        q = u[mid] - 0.5
        r = q * q
        out[mid] = (
            ((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]
        ) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
        )
    return out


# ----------------------------------------------------------------------
# Capacity traces
# ----------------------------------------------------------------------
class BandwidthTrace:
    """Piecewise-constant uplink capacity in requests per second.

    ``rates[j]`` holds for ``t in [times[j], times[j+1])``; the final
    rate extends forever.  The vectorized engine looks the rate up
    once per cohort (at the cohort instant), which is exact for
    ``tick=None`` runs — a cohort then *is* a single instant — and a
    documented cohort-level approximation under a quantization tick.
    """

    def __init__(self, times, rates) -> None:
        self.times = np.asarray(times, dtype=np.float64)
        self.rates = np.asarray(rates, dtype=np.float64)
        if self.times.ndim != 1 or self.times.shape != self.rates.shape:
            raise ValueError("times and rates must be parallel 1-D arrays")
        if self.times.size == 0:
            raise ValueError("trace needs at least one segment")
        if self.times[0] != 0.0:
            raise ValueError(
                f"trace must start at t=0, got {self.times[0]}"
            )
        if np.any(np.diff(self.times) <= 0):
            raise ValueError("trace times must be strictly increasing")
        if np.any(self.rates <= 0):
            raise ValueError("trace rates must be > 0 requests/s")

    @classmethod
    def constant(cls, rate: float) -> "BandwidthTrace":
        """A flat-capacity link."""
        return cls([0.0], [float(rate)])

    def rate_at(self, t: float) -> float:
        """Capacity holding at time ``t`` (requests per second)."""
        j = int(np.searchsorted(self.times, t, side="right")) - 1
        return float(self.rates[max(j, 0)])


# ----------------------------------------------------------------------
# Profiles
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class LinkProfile:
    """Access-network parameters for one client population.

    Parameters
    ----------
    rtt_median / rtt_sigma:
        Per-agent one-way propagation delay: lognormal with the given
        median and log-space sigma, derived deterministically from the
        agent's packed IP (``sigma=0`` pins every agent to the
        median).  Applied to every leg the agent's traffic crosses, on
        top of the run's channel delay — links *compose with*
        channels, they do not replace them.
    loss_rate:
        Probability an individual client→server crossing is lost
        (request and solution legs; server→client legs are modelled
        lossless — the uplink is the constrained direction).
    bandwidth / queue_seconds:
        Optional shared uplink capacity (:class:`BandwidthTrace`) with
        a FIFO transmission queue holding at most ``queue_seconds`` of
        queued work; deeper backlog tail-drops the crossing.  ``None``
        means uncapped (no queueing, no bufferbloat).
    max_retries / backoff:
        Lost or dropped crossings retry after
        ``backoff * 2**(attempt-1)`` seconds, at most ``max_retries``
        times.  Request-leg retries additionally give up once the next
        attempt would start later than the client's patience window;
        solution-leg retries race the puzzle TTL instead.
    note:
        One-line description for catalogues (CLI ``--list-links``).
    """

    rtt_median: float = 0.001
    rtt_sigma: float = 0.0
    loss_rate: float = 0.0
    bandwidth: BandwidthTrace | None = None
    queue_seconds: float = 0.25
    max_retries: int = 3
    backoff: float = 0.2
    note: str = ""

    def __post_init__(self) -> None:
        if self.rtt_median <= 0:
            raise ValueError(f"rtt_median must be > 0, got {self.rtt_median}")
        if self.rtt_sigma < 0:
            raise ValueError(f"rtt_sigma must be >= 0, got {self.rtt_sigma}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(
                f"loss_rate must be in [0, 1), got {self.loss_rate}"
            )
        if self.queue_seconds <= 0:
            raise ValueError(
                f"queue_seconds must be > 0, got {self.queue_seconds}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff <= 0:
            raise ValueError(f"backoff must be > 0, got {self.backoff}")

    @property
    def lossless_unlimited(self) -> bool:
        """True when the profile only adds propagation delay."""
        return self.loss_rate == 0.0 and self.bandwidth is None


#: Built-in link profiles, the catalogue behind ``ScaleSpec.links``
#: and ``repro campaign --link``.  Two populations naming the *same*
#: profile share one transmission queue (the shared-bottleneck case).
LINK_PROFILES: dict[str, LinkProfile] = {
    "datacenter": LinkProfile(
        rtt_median=0.0005,
        rtt_sigma=0.1,
        note="sub-millisecond wired clients; no loss, no cap",
    ),
    "broadband": LinkProfile(
        rtt_median=0.008,
        rtt_sigma=0.3,
        loss_rate=0.001,
        note="residential last mile: ~8 ms one-way, rare loss",
    ),
    "lossy-mobile": LinkProfile(
        rtt_median=0.040,
        rtt_sigma=0.5,
        loss_rate=0.02,
        max_retries=3,
        backoff=0.2,
        note="cellular clients: 40 ms median one-way, heavy-tailed, "
        "2% loss with backoff retries",
    ),
    "congested-uplink": LinkProfile(
        rtt_median=0.020,
        rtt_sigma=0.35,
        loss_rate=0.005,
        bandwidth=BandwidthTrace.constant(4000.0),
        queue_seconds=0.3,
        max_retries=3,
        backoff=0.25,
        note="shared 4000 req/s uplink with a 300 ms queue: "
        "bufferbloat, tail drops, congestion coupling",
    ),
}


def resolve_link_profile(profile: "LinkProfile | str") -> LinkProfile:
    """A :class:`LinkProfile` from an instance or a catalogue name."""
    if isinstance(profile, LinkProfile):
        return profile
    try:
        return LINK_PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown link profile {profile!r}; "
            f"builtins: {', '.join(sorted(LINK_PROFILES))}"
        ) from None


# ----------------------------------------------------------------------
# Run state
# ----------------------------------------------------------------------
@dataclasses.dataclass
class LinkStats:
    """Network-layer outcomes of one run.

    Requests the network swallowed before any admission happened are
    counted here, *not* in the simulation's metrics — a never-admitted
    request has no score or difficulty to aggregate.  Solution-leg
    give-ups do reach the metrics (as ABANDONED: the puzzle was issued
    and solved), and are mirrored here for the network-side view.
    """

    crossings: int = 0
    lost: int = 0
    queue_dropped: int = 0
    retries: int = 0
    request_give_ups: int = 0
    solution_give_ups: int = 0

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    def publish(self, registry) -> None:
        """Fold these outcomes into ``link_*_total`` registry counters.

        Call once per finished run: counters only ever increase, so a
        second publish of the same stats would double-count.
        """
        from repro.obs.registry import METRIC_CATALOG

        for field, metric in (
            ("crossings", "link_crossings_total"),
            ("lost", "link_lost_total"),
            ("queue_dropped", "link_queue_dropped_total"),
            ("retries", "link_retries_total"),
            ("request_give_ups", "link_request_give_ups_total"),
            ("solution_give_ups", "link_solution_give_ups_total"),
        ):
            counter = registry.counter(metric, METRIC_CATALOG[metric])
            value = getattr(self, field)
            if value:
                counter.inc(value)

    def summary(self) -> str:
        return (
            f"{self.crossings:,} uplink crossings: {self.lost:,} lost, "
            f"{self.queue_dropped:,} queue-dropped, "
            f"{self.retries:,} retries, "
            f"{self.request_give_ups:,} requests given up in the "
            f"network, {self.solution_give_ups:,} solutions given up"
        )


class LinkSet:
    """Immutable per-population link assignment.

    Parameters
    ----------
    assignments:
        ``population profile name -> LinkProfile | catalogue name``.
        Profiles without an entry keep the ideal (channel-only) path.
        Assignments sharing a catalogue *name* (or the same
        :class:`LinkProfile` instance) share one transmission queue.
    seed:
        Salt for the per-agent delay and per-crossing loss hashes.
    """

    def __init__(
        self,
        assignments: Mapping[str, "LinkProfile | str"],
        seed: int = 0,
    ) -> None:
        if not assignments:
            raise ValueError("LinkSet needs at least one assignment")
        self.seed = int(seed)
        self._delay_salt = np.uint64((self.seed * 2 + 1) & 0xFFFFFFFFFFFFFFFF)
        self._loss_salt = np.uint64((self.seed * 2 + 2) & 0xFFFFFFFFFFFFFFFF)
        self.assignments: dict[str, LinkProfile] = {}
        tokens: dict[object, int] = {}
        self._queue_profiles: list[LinkProfile] = []
        self._queue_of: dict[str, int] = {}
        for population, profile in assignments.items():
            resolved = resolve_link_profile(profile)
            token = profile if isinstance(profile, str) else id(resolved)
            if token not in tokens:
                tokens[token] = len(self._queue_profiles)
                self._queue_profiles.append(resolved)
            self.assignments[population] = resolved
            self._queue_of[population] = tokens[token]

    # -- catalogue ----------------------------------------------------
    @property
    def delay_only(self) -> bool:
        """True when every assigned profile only adds propagation delay."""
        return all(
            p.lossless_unlimited for p in self.assignments.values()
        )

    def queue_count(self) -> int:
        return len(self._queue_profiles)

    def profile_of_queue(self, queue_id: int) -> LinkProfile:
        return self._queue_profiles[queue_id]

    def queue_ids(self, class_names) -> np.ndarray:
        """Per-class transmission-queue id (``-1`` = no link)."""
        return np.array(
            [self._queue_of.get(name, -1) for name in class_names],
            dtype=np.int64,
        )

    # -- per-agent state ----------------------------------------------
    def base_delays(
        self, packed_ips: np.ndarray, queue_ids: np.ndarray
    ) -> np.ndarray:
        """Per-agent one-way propagation delays, hash-derived.

        ``exp(log(median) + sigma * ppf(u))`` with ``u`` a SplitMix64
        hash of the packed IP — a lognormal sample that depends only
        on (seed, address, profile), never on visit order, so the SoA
        population mint and the callback engine's lazy per-IP lookup
        produce identical floats.  Agents with ``queue_id < 0`` get 0.
        """
        packed = np.asarray(packed_ips, dtype=np.uint64)
        qids = np.asarray(queue_ids, dtype=np.int64)
        delays = np.zeros(packed.shape, dtype=np.float64)
        for qid, profile in enumerate(self._queue_profiles):
            mask = qids == qid
            if not mask.any():
                continue
            if profile.rtt_sigma == 0.0:
                delays[mask] = profile.rtt_median
                continue
            u = _uniform01(_mix64(packed[mask] ^ self._delay_salt))
            delays[mask] = profile.rtt_median * np.exp(
                profile.rtt_sigma * _norm_ppf(u)
            )
        return delays

    def crossing_lost(
        self,
        request_ids: np.ndarray,
        attempts: np.ndarray,
        leg: int,
        loss_rate: float,
    ) -> np.ndarray:
        """Deterministic per-crossing loss decisions.

        Hash of ``(seed, request id, leg, attempt)`` compared against
        ``loss_rate`` — a counter-based draw, so the decision for a
        given crossing is identical regardless of which engine (or
        cohort batching) evaluates it.
        """
        if loss_rate <= 0.0:
            return np.zeros(np.asarray(request_ids).shape, dtype=bool)
        key = (
            np.asarray(request_ids, dtype=np.uint64) * np.uint64(2)
            + np.uint64(leg)
        )
        h = _mix64(
            _mix64(key ^ self._loss_salt)
            ^ np.asarray(attempts, dtype=np.uint64)
        )
        return _uniform01(h) < loss_rate

    def session(self) -> "LinkSession":
        """Fresh mutable queue state for one run."""
        return LinkSession(self)


class LinkSession:
    """Mutable per-run transmission-queue state (one float per queue).

    The FIFO recurrence mirrors the server model's: a crossing
    arriving at ``t`` starts transmitting at ``max(t, busy)`` and
    holds the link for ``1/rate`` seconds.  A crossing that would find
    more than ``queue_seconds`` of backlog already queued is
    tail-dropped.  :meth:`cross` computes a whole same-instant cohort
    with one seeded running sum — the same left-associated additions
    the one-at-a-time scalar caller performs — so exits and drop
    decisions are bit-identical between cohort and sequential
    evaluation (``tests/net/test_links.py`` pins this).
    """

    def __init__(self, links: LinkSet) -> None:
        self.links = links
        self.busy = np.zeros(links.queue_count(), dtype=np.float64)
        self.stats = LinkStats()

    def cross(
        self, queue_id: int, when: float, count: int
    ) -> tuple[np.ndarray, int]:
        """Transmit ``count`` crossings entering queue ``queue_id`` at ``when``.

        Returns ``(exits, accepted)``: link-exit times for the first
        ``accepted`` crossings (in entry order) and the count accepted;
        the remainder are tail-dropped.  Uncapped links exit
        immediately (``exits == when``) and never drop.
        """
        profile = self.links.profile_of_queue(queue_id)
        if profile.bandwidth is None:
            return np.full(count, when, dtype=np.float64), count
        if count == 0:
            return np.empty(0, dtype=np.float64), 0
        service = 1.0 / profile.bandwidth.rate_at(when)
        busy = float(self.busy[queue_id])
        seeded = np.empty(count + 1)
        seeded[0] = max(when, busy)
        seeded[1:] = service
        dones = np.cumsum(seeded)[1:]
        # Backlog seen by crossing i is what is still queued when it
        # arrives: the previous crossing's completion minus ``when``
        # (clamped at zero).  Within a same-instant cohort backlog only
        # grows, so the accepted set is a prefix.
        busy_before = np.empty(count)
        busy_before[0] = busy
        busy_before[1:] = dones[:-1]
        backlog = np.maximum(0.0, busy_before - when)
        over = backlog > profile.queue_seconds
        accepted = int(np.argmax(over)) if over.any() else count
        if accepted > 0:
            self.busy[queue_id] = float(dones[accepted - 1])
        return dones[:accepted], accepted
