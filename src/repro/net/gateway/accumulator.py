"""The micro-batching accumulator at the heart of the admission gateway.

Concurrent ``REQUEST`` arrivals are individually cheap to *receive* but
expensive to *admit* (score → policy → puzzle issuance).  The
accumulator turns the per-request admission cost into a per-batch one:
arrivals queue as :class:`~repro.net.gateway.shedding.PendingAdmission`
entries, a single dispatcher coroutine coalesces them — flushing when
``max_batch`` requests have gathered or when ``batch_window`` seconds
have passed since the batch opened, whichever comes first — and the
whole batch is admitted through one ``admit_batch`` call (the gateway
wires this to :meth:`AIPoWFramework.challenge_batch`, whose decisions
are bit-identical to the scalar path).

Overload is explicit, not accidental: the queue is bounded at
``queue_limit`` and a pluggable :class:`ShedPolicy` picks the victim
when it is full.  Shed requests resolve to a :class:`ShedOutcome`
instead of a challenge — every submitted request gets exactly one
resolution, admitted or shed, including at shutdown.

Single-threaded by design: ``submit`` and the dispatcher both run on
the gateway's event loop, so no locks guard the queue.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Callable, Sequence

from repro.core.records import ClientRequest
from repro.net.gateway.shedding import (
    DropNewest,
    PendingAdmission,
    ShedOutcome,
    ShedPolicy,
)

__all__ = ["MicroBatcher"]

#: admit_batch: list of requests -> one result per request, same order.
AdmitBatch = Callable[[Sequence[ClientRequest]], Sequence[object]]
#: on_shed: (pending, reason, queue_depth) -> None
ShedHook = Callable[[PendingAdmission, str, int], None]
#: on_flush: (batch_size, queue_depth_before_flush, results) -> None
FlushHook = Callable[[int, int, Sequence[object]], None]


class MicroBatcher:
    """Coalesces submitted requests into bounded admission batches.

    Parameters
    ----------
    admit_batch:
        Synchronous callable admitting a whole batch; returns one
        result per request in order.  Runs on the event loop — it is
        the serial section, everything else overlaps with I/O.
    max_batch:
        Flush as soon as this many requests are waiting.
    batch_window:
        Maximum seconds a batch stays open waiting for company after
        its first request arrives.  ``0`` disables coalescing delay:
        every flush takes whatever is queued right now.
    queue_limit:
        Bound on requests waiting for admission; beyond it the shed
        policy picks a victim.
    shed_policy:
        Victim selection when full; defaults to :class:`DropNewest`.
    on_shed / on_flush:
        Observability hooks (events, metrics).  Exceptions propagate —
        wire them through :class:`~repro.core.events.EventBus` or
        another isolating layer if observers may fail.
    """

    def __init__(
        self,
        admit_batch: AdmitBatch,
        *,
        max_batch: int = 64,
        batch_window: float = 0.002,
        queue_limit: int = 256,
        shed_policy: ShedPolicy | None = None,
        on_shed: ShedHook | None = None,
        on_flush: FlushHook | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if batch_window < 0:
            raise ValueError(
                f"batch_window must be >= 0, got {batch_window}"
            )
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.admit_batch = admit_batch
        self.max_batch = max_batch
        self.batch_window = batch_window
        self.queue_limit = queue_limit
        self.shed_policy: ShedPolicy = shed_policy or DropNewest()
        self.on_shed = on_shed
        self.on_flush = on_flush
        self._pending: deque[PendingAdmission] = deque()
        self._arrival: asyncio.Event = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._closed = False
        self.submitted_count = 0
        self.admitted_count = 0
        self.shed_count = 0
        self.flush_count = 0

    # ------------------------------------------------------------------
    # Producer side (connection handlers)
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Requests currently waiting for admission."""
        return len(self._pending)

    def submit(self, request: ClientRequest) -> "asyncio.Future":
        """Queue ``request`` for batched admission.

        Returns a future resolving to the ``admit_batch`` result for
        this request, or to a :class:`ShedOutcome` when the request (or
        a queued victim, whose own future gets the outcome) is shed.
        """
        loop = asyncio.get_running_loop()
        pending = PendingAdmission(
            request=request, future=loop.create_future(),
            enqueued_at=loop.time(),
        )
        if self._closed:
            self._resolve_shed(pending, "gateway shutting down")
            return pending.future
        self.submitted_count += 1
        if len(self._pending) >= self.queue_limit:
            victim = self.shed_policy.select_victim(self._pending, pending)
            if victim is not pending:
                try:
                    self._pending.remove(victim)
                except ValueError:  # pragma: no cover - policy bug guard
                    victim = pending
            self._resolve_shed(victim, "admission queue full")
            if victim is pending:
                return pending.future
        self._pending.append(pending)
        self._arrival.set()
        return pending.future

    def _resolve_shed(self, pending: PendingAdmission, reason: str) -> None:
        self.shed_count += 1
        if not pending.future.done():
            pending.future.set_result(
                ShedOutcome(reason=reason, policy=self.shed_policy.name)
            )
        if self.on_shed is not None:
            self.on_shed(pending, reason, len(self._pending))

    # ------------------------------------------------------------------
    # Dispatcher side
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the dispatcher coroutine on the running loop.

        Recreates the internal wakeup event so a batcher stopped on one
        event loop can be restarted on another (the gateway does this
        on a start → stop → start cycle).
        """
        if self._task is not None:
            raise RuntimeError("dispatcher already started")
        self._closed = False
        self._arrival = asyncio.Event()
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="gateway-micro-batcher"
        )

    async def stop(self) -> None:
        """Stop dispatching; outstanding requests resolve as shed."""
        self._closed = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        while self._pending:
            self._resolve_shed(
                self._pending.popleft(), "gateway shutting down"
            )

    async def _run(self) -> None:
        while True:
            await self._arrival.wait()
            self._arrival.clear()
            if not self._pending:
                continue
            await self._gather_window()
            while self._pending:
                self.flush_once()

    async def _gather_window(self) -> None:
        """Hold the batch open for stragglers, up to ``batch_window``."""
        if self.batch_window <= 0:
            return
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.batch_window
        while len(self._pending) < self.max_batch:
            remaining = deadline - loop.time()
            if remaining <= 0:
                return
            self._arrival.clear()
            try:
                await asyncio.wait_for(self._arrival.wait(), remaining)
            except asyncio.TimeoutError:
                return

    def flush_once(self) -> int:
        """Admit one batch of up to ``max_batch`` queued requests.

        Exposed for the flush edge-case tests; the dispatcher calls it
        in a drain loop, so an oversize burst becomes several
        back-to-back full batches followed by the remainder.  Returns
        the number of requests admitted (0 when the queue is empty —
        an empty batch never reaches ``admit_batch``).
        """
        if not self._pending:
            return 0
        depth_before = len(self._pending)
        size = min(depth_before, self.max_batch)
        batch = [self._pending.popleft() for _ in range(size)]
        try:
            results = self.admit_batch([p.request for p in batch])
        except Exception as exc:  # noqa: BLE001 - fail the whole batch
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return size
        if len(results) != size:  # pragma: no cover - admit contract guard
            mismatch = RuntimeError(
                f"admit_batch returned {len(results)} results "
                f"for {size} requests"
            )
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(mismatch)
            return size
        for pending, result in zip(batch, results):
            if not pending.future.done():
                pending.future.set_result(result)
        self.admitted_count += size
        self.flush_count += 1
        if self.on_flush is not None:
            self.on_flush(size, depth_before, results)
        return size
