"""Asyncio admission gateway: micro-batched serving of the live protocol.

:class:`GatewayServer` is the event-loop replacement for the
thread-per-connection :class:`~repro.net.live.server.LiveServer`.  It
speaks the identical line protocol — an unmodified
:class:`~repro.net.live.client.LiveClient` works against either — but
admits concurrent arrivals through the
:class:`~repro.net.gateway.accumulator.MicroBatcher`: requests landing
within one batching window are coalesced and driven through
:meth:`AIPoWFramework.challenge_batch` (the ~7x vectorised admission
path), while ``verify``/``redeem`` stays on the fast scalar path since
each solution hashes a distinct nonce anyway.

Overload behaviour is part of the contract, not an accident: the
admission queue is bounded, a pluggable shed policy picks victims when
it fills, shed requests get an explicit ``ERR shed: ...`` reply, and
every shed emits a ``REQUEST_SHED`` event through the framework's
:class:`~repro.core.events.EventBus` plus counters/histograms into an
optional :class:`~repro.metrics.collector.GatewayMetrics`.

Threading model: :meth:`start` runs the event loop on one background
thread and all framework calls happen on that thread, so — unlike the
threaded server — the shared replay cache and RNG need no lock.  The
public facade (``start``/``stop``/context manager/``address``) matches
``LiveServer`` so the two front-ends are drop-in interchangeable in
tests, benchmarks, and the CLI.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque

from repro.core.errors import ProtocolError, ReproError
from repro.core.events import EventKind
from repro.core.framework import AIPoWFramework, Challenge
from repro.core.records import ClientRequest
from repro.metrics.collector import GatewayMetrics
from repro.net.gateway.accumulator import MicroBatcher
from repro.net.gateway.shedding import (
    PendingAdmission,
    ShedOutcome,
    ShedPolicy,
)
from repro.net.live import protocol
from repro.pow.puzzle import Solution

__all__ = ["GatewayServer"]


class GatewayServer:
    """Micro-batching TCP front-end for the framework.

    Use exactly like :class:`~repro.net.live.server.LiveServer`::

        with GatewayServer(framework, max_batch=64) as server:
            body = LiveClient(server.address).fetch("/index.html", {})

    Parameters
    ----------
    framework:
        The configured pipeline to expose.  The gateway owns its use:
        all calls run on the gateway's event-loop thread.
    host / port:
        Bind address; port 0 picks a free port.
    max_batch / batch_window / queue_limit / shed_policy:
        Accumulator tuning; see
        :class:`~repro.net.gateway.accumulator.MicroBatcher`.
    admission:
        Optional :class:`~repro.core.admission.AdmissionControl`
        pre-filter, checked before enqueueing — same semantics and
        ``ERR admission: ...`` reply as the threaded server.
    io_timeout:
        Per-connection timeout for each read, in seconds.
    metrics:
        Optional :class:`~repro.metrics.collector.GatewayMetrics`
        receiving queue depths, batch sizes and shed counts.
    recorder:
        Optional :class:`~repro.replay.TraceRecorder`, attached to the
        framework's event bus so every admission decision (admitted or
        shed) is captured as a replayable v2 trace entry.  Costs
        nothing when omitted — with no subscribers the framework skips
        event construction entirely.
    tracer:
        Optional :class:`~repro.obs.tracing.RequestTracer`, attached to
        the framework's event bus so 1-in-N requests are recorded as
        structured spans (accept → flush → score → ... → verify).
        Same zero-cost-when-omitted contract as ``recorder``.
    """

    def __init__(
        self,
        framework: AIPoWFramework,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_batch: int = 64,
        batch_window: float = 0.002,
        queue_limit: int = 256,
        shed_policy: ShedPolicy | None = None,
        admission=None,
        io_timeout: float = 30.0,
        metrics: GatewayMetrics | None = None,
        recorder=None,
        tracer=None,
    ) -> None:
        if io_timeout <= 0:
            raise ValueError(f"io_timeout must be > 0, got {io_timeout}")
        self.framework = framework
        self.recorder = recorder
        if recorder is not None:
            recorder.attach(framework.events)
        self.tracer = tracer
        if tracer is not None:
            tracer.attach(framework.events)
        self.host = host
        self.port = port
        self.io_timeout = io_timeout
        self.admission = admission
        self.metrics = metrics
        self.responses: deque = deque(maxlen=10_000)
        self.batcher = MicroBatcher(
            self._admit_batch,
            max_batch=max_batch,
            batch_window=batch_window,
            queue_limit=queue_limit,
            shed_policy=shed_policy,
            on_shed=self._on_shed,
            on_flush=self._on_flush,
        )
        self._address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    # ------------------------------------------------------------------
    # Accumulator hooks (all run on the event-loop thread)
    # ------------------------------------------------------------------
    def _admit_batch(
        self, requests: list[ClientRequest]
    ) -> list[Challenge | ReproError]:
        try:
            return self.framework.challenge_batch(requests)
        except ReproError:
            # One bad request (e.g. feature-schema mismatch) must not
            # poison its co-batched neighbours: re-admit the batch
            # scalar, isolating the failure to the offender.  Events
            # for stages the batch attempt already passed are re-emitted
            # by the retry; only this failure path pays that.
            results: list[Challenge | ReproError] = []
            for request in requests:
                try:
                    results.append(self.framework.challenge(request))
                except ReproError as exc:
                    results.append(exc)
            return results

    def _on_shed(
        self, pending: PendingAdmission, reason: str, queue_depth: int
    ) -> None:
        self.framework.events.emit(
            EventKind.REQUEST_SHED,
            time.time(),
            request=pending.request,
            reason=reason,
            policy=self.batcher.shed_policy.name,
            queue_depth=queue_depth,
        )
        if self.metrics is not None:
            self.metrics.observe_shed(reason, queue_depth=queue_depth)

    def _on_flush(
        self, batch_size: int, queue_depth: int, results: list
    ) -> None:
        if self.metrics is not None:
            # The scalar-fallback path returns ReproError entries for
            # requests whose admission failed; only real challenges
            # count as admitted.
            admitted = sum(
                1 for result in results if not isinstance(result, Exception)
            )
            self.metrics.observe_flush(
                batch_size, queue_depth, admitted=admitted
            )

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one live-protocol connection on the running loop.

        The same handler the TCP front-end uses, exposed for serving
        tiers that accept connections elsewhere — the multi-worker
        cluster passes accepted sockets in by file descriptor and
        drives them through here.
        """
        await self._handle(reader, writer)

    async def _read(self, reader: asyncio.StreamReader) -> str:
        return await asyncio.wait_for(
            protocol.read_line_async(reader), self.io_timeout
        )

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._exchange(reader, writer)
        except (ProtocolError, asyncio.TimeoutError, OSError):
            # A malformed, slow, or dropped peer affects only itself.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.TimeoutError):  # pragma: no cover
                pass

    async def _exchange(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        line = await self._read(reader)
        try:
            resource, features = protocol.parse_request(line)
        except ProtocolError as exc:
            await protocol.send_line_async(
                writer, protocol.encode_err(str(exc))
            )
            raise

        peer = writer.get_extra_info("peername")
        client_ip = peer[0] if peer else "0.0.0.0"
        if self.admission is not None:
            decision = self.admission.check(client_ip, time.time())
            if not decision.admitted:
                await protocol.send_line_async(
                    writer,
                    protocol.encode_err(f"admission: {decision.reason}"),
                )
                return
        request = ClientRequest(
            client_ip=client_ip,
            resource=resource,
            timestamp=time.time(),
            features=features,
        )
        # Latency is measured on the monotonic clock: the wall clock
        # can step (NTP) between accept and redeem, and the exchange
        # spans a client's whole solve time.  The wall timestamp above
        # stays authoritative for records and traces.
        accepted_mono = time.monotonic()

        outcome = await self.batcher.submit(request)
        if isinstance(outcome, ReproError):
            # This request failed admission; same reply the threaded
            # server gives, and only the offender pays it.
            await protocol.send_line_async(
                writer, protocol.encode_err(f"challenge: {outcome}")
            )
            return
        if isinstance(outcome, ShedOutcome):
            await protocol.send_line_async(
                writer, protocol.encode_err(f"shed: {outcome.reason}")
            )
            return
        challenge: Challenge = outcome
        await protocol.send_line_async(writer, challenge.puzzle.to_wire())

        solution_line = await self._read(reader)
        solution = Solution.from_wire(solution_line)
        now = time.time()
        elapsed = time.monotonic() - accepted_mono
        try:
            response = self.framework.redeem(
                challenge, solution, now=now, request_sent_at=now - elapsed
            )
        except ReproError as exc:
            await protocol.send_line_async(
                writer, protocol.encode_err(f"challenge: {exc}")
            )
            return
        self.responses.append(response)
        if response.served:
            await protocol.send_line_async(
                writer, protocol.encode_ok(response.body)
            )
        else:
            await protocol.send_line_async(
                writer, protocol.encode_err(response.status.value)
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self.batcher.start()
        server = await asyncio.start_server(
            self._handle,
            self.host,
            self.port,
            limit=protocol.MAX_LINE_BYTES + 1,
        )
        self._address = server.sockets[0].getsockname()[:2]
        self._ready.set()
        try:
            async with server:
                await self._shutdown.wait()
        finally:
            await self.drain()

    async def drain(self, grace: float = 1.0) -> None:
        """Stop admitting and give in-flight connections a short grace.

        Queued-but-unadmitted requests resolve as shed (their handlers
        deliver the ``ERR shed: ...`` reply); handlers already past
        admission get ``grace`` seconds of loop time to finish their
        exchange before ``asyncio.run`` cancels them.  Shared by the
        in-process server shutdown and the cluster workers' SIGTERM
        path.
        """
        await self.batcher.stop()
        current = asyncio.current_task()
        handlers = [
            task for task in asyncio.all_tasks() if task is not current
        ]
        if handlers:
            await asyncio.wait(handlers, timeout=grace)

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            self._startup_error = exc
            self._ready.set()

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) the server is bound to."""
        if self._address is None:
            raise RuntimeError("gateway not started")
        return self._address

    def start(self) -> "GatewayServer":
        """Start serving on a background event loop; returns self."""
        if self._thread is not None:
            raise RuntimeError("gateway already started")
        self._ready.clear()
        self._startup_error = None
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-gateway", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
            raise RuntimeError("gateway failed to start") from (
                self._startup_error
            )
        if self._address is None:
            raise RuntimeError("gateway did not come up within 10s")
        return self

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._thread is None:
            return
        if self._loop is not None and self._shutdown is not None:
            self._loop.call_soon_threadsafe(self._shutdown.set)
        self._thread.join(timeout=10.0)
        self._thread = None
        self._loop = None
        self._shutdown = None
        self._address = None

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
