"""Async admission gateway: the micro-batching serving tier.

The event-loop front-end that makes the vectorised
``challenge_batch`` admission path reachable by real concurrent
traffic — plus the bounded-queue/shedding overload behaviour a flood
defense must itself exhibit, and the load-generation client that
measures it.  :class:`GatewayCluster` scales the same front-end across
worker processes, one per admission-state shard, routed by client-IP
consistent hash.  See DESIGN.md §1.2–§1.3.
"""

from repro.net.gateway.accumulator import MicroBatcher
from repro.net.gateway.cluster import GatewayCluster, ShardWorker
from repro.net.gateway.loadgen import LoadGenerator, LoadReport
from repro.net.gateway.server import GatewayServer
from repro.net.gateway.shedding import (
    DropByReputationPrior,
    DropNewest,
    PendingAdmission,
    ShedOutcome,
    ShedPolicy,
)

__all__ = [
    "GatewayServer",
    "GatewayCluster",
    "ShardWorker",
    "MicroBatcher",
    "LoadGenerator",
    "LoadReport",
    "ShedPolicy",
    "ShedOutcome",
    "DropNewest",
    "DropByReputationPrior",
    "PendingAdmission",
]
