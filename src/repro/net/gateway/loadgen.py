"""Multi-connection async load generator for the live protocol.

The measurement client behind the ``thr-live`` experiment: opens many
concurrent connections against any live-protocol front-end (the
threaded :class:`~repro.net.live.server.LiveServer` or the
:class:`~repro.net.gateway.server.GatewayServer`), runs full
request → puzzle → solve → redeem exchanges on each, and reports
admission throughput plus latency quantiles.  Shed and
admission-dropped replies (``ERR shed: ...`` / ``ERR admission: ...``)
are counted separately from protocol errors so overload experiments
can assert *graceful* degradation, not just degradation.

One event loop drives every connection, so the generator's own
overhead is the same no matter which server is under test — the
difference in a comparison run is the server architecture, not the
client.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from typing import Mapping, Sequence

from repro.core.errors import ProtocolError
from repro.metrics.histogram import SampleSet
from repro.net.live import protocol
from repro.pow.puzzle import Puzzle
from repro.pow.solver import HashSolver

__all__ = ["LoadGenerator", "LoadReport"]


@dataclasses.dataclass(slots=True)
class LoadReport:
    """Aggregate outcome of one load-generation run."""

    attempted: int = 0
    served: int = 0
    shed: int = 0
    admission_dropped: int = 0
    rejected: int = 0
    errors: int = 0
    #: Exchanges ended deliberately after the challenge (``solve=False``
    #: admission-throughput runs) — the server's admission work is done,
    #: no solution was submitted.
    challenged: int = 0
    elapsed: float = 0.0
    latencies: SampleSet = dataclasses.field(default_factory=SampleSet)
    #: Puzzle difficulty of every challenge received, in receipt order —
    #: lets callers assert batch-vs-scalar admission parity.
    difficulties: list = dataclasses.field(default_factory=list)

    @property
    def completed(self) -> int:
        """Requests that got a definitive reply (served or shed)."""
        return (
            self.served + self.shed + self.admission_dropped
            + self.rejected + self.challenged
        )

    @property
    def throughput(self) -> float:
        """Completed exchanges per second of wall-clock run time."""
        return self.completed / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def served_throughput(self) -> float:
        """Successfully served exchanges per second."""
        return self.served / self.elapsed if self.elapsed > 0 else 0.0

    def latency_quantile(self, q: float) -> float:
        """End-to-end latency quantile over served requests (seconds)."""
        return self.latencies.quantile(q)


class LoadGenerator:
    """Drives ``connections`` concurrent solver clients at a server.

    Parameters
    ----------
    address:
        (host, port) of a live-protocol server.
    connections:
        Concurrent connections kept in flight.
    requests_per_connection:
        Exchanges each connection performs sequentially (the protocol
        is connect-per-request, like :class:`LiveClient`).
    features:
        Feature mapping sent with every request.
    resource:
        Resource path requested.
    nonce_bits:
        Solver search width.
    timeout:
        Per-read timeout in seconds.
    bind_ips:
        Optional local source addresses, assigned to connections
        round-robin.  On Linux the whole ``127.0.0.0/8`` block is
        loopback, so a sharded-gateway experiment can present many
        distinct client IPs (``127.0.0.1``, ``127.0.0.2``, ...) from
        one host — each IP then routes consistently to its shard, the
        way distinct real clients would.
    solve:
        When False, each exchange stops after receiving the puzzle
        (counted under ``challenged``): the server has done all its
        admission work, and the generator's own cost stays minimal —
        the mode the ``thr-shard`` scaling measurement uses so the
        *server*, not the load generator, is the saturated side.
    """

    def __init__(
        self,
        address: tuple[str, int],
        *,
        connections: int = 64,
        requests_per_connection: int = 4,
        features: Mapping[str, float] | None = None,
        resource: str = "/index.html",
        nonce_bits: int = 32,
        timeout: float = 30.0,
        bind_ips: Sequence[str] | None = None,
        solve: bool = True,
    ) -> None:
        if connections < 1:
            raise ValueError(f"connections must be >= 1, got {connections}")
        if requests_per_connection < 1:
            raise ValueError(
                "requests_per_connection must be >= 1, "
                f"got {requests_per_connection}"
            )
        self.address = address
        self.connections = connections
        self.requests_per_connection = requests_per_connection
        self.features = dict(features or {})
        self.resource = resource
        self.solver = HashSolver(nonce_bits=nonce_bits)
        self.timeout = timeout
        self.bind_ips = list(bind_ips) if bind_ips else []
        self.solve = solve

    async def _exchange(self, report: LoadReport, bind_ip: str | None) -> None:
        report.attempted += 1
        started = time.perf_counter()
        local_addr = (bind_ip, 0) if bind_ip else None
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(
                    *self.address, local_addr=local_addr
                ),
                self.timeout,
            )
        except (OSError, asyncio.TimeoutError):
            report.errors += 1
            return
        try:
            await protocol.send_line_async(
                writer,
                protocol.encode_request(self.resource, self.features),
            )
            reply = await asyncio.wait_for(
                protocol.read_line_async(reader), self.timeout
            )
            if reply.startswith("ERR "):
                reason = reply[4:]
                if reason.startswith("shed:"):
                    report.shed += 1
                elif reason.startswith("admission:"):
                    report.admission_dropped += 1
                else:
                    report.errors += 1
                return
            puzzle = Puzzle.from_wire(reply)
            report.difficulties.append(puzzle.difficulty)
            if not self.solve:
                report.challenged += 1
                report.latencies.add(time.perf_counter() - started)
                return
            my_ip = writer.get_extra_info("sockname")[0]
            solution = self.solver.solve(puzzle, my_ip)
            await protocol.send_line_async(writer, solution.to_wire())
            ok, _body = protocol.parse_reply(
                await asyncio.wait_for(
                    protocol.read_line_async(reader), self.timeout
                )
            )
        except (ProtocolError, OSError, asyncio.TimeoutError):
            report.errors += 1
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.TimeoutError):  # pragma: no cover
                pass
        if ok:
            report.served += 1
            report.latencies.add(time.perf_counter() - started)
        else:
            report.rejected += 1

    async def _worker(self, report: LoadReport, index: int) -> None:
        bind_ip = (
            self.bind_ips[index % len(self.bind_ips)]
            if self.bind_ips
            else None
        )
        for _ in range(self.requests_per_connection):
            await self._exchange(report, bind_ip)

    async def _run(self) -> LoadReport:
        report = LoadReport()
        started = time.perf_counter()
        await asyncio.gather(
            *(
                self._worker(report, index)
                for index in range(self.connections)
            )
        )
        report.elapsed = time.perf_counter() - started
        return report

    def run(self) -> LoadReport:
        """Run the full load from a fresh event loop; returns the report."""
        return asyncio.run(self._run())
