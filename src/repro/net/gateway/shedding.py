"""Load-shedding policies for the admission gateway.

When the gateway's admission queue is full, *something* has to give.  A
:class:`ShedPolicy` decides which pending request to sacrifice — the
incoming one (classic drop-newest / tail drop) or a queued one that a
cheap prior says is less worth admitting (drop-by-reputation-prior).

The policy only ever sees :class:`PendingAdmission` wrappers; it must
not block, score through the AI model, or touch the framework — the
whole point of shedding is to bound work *before* the expensive
pipeline runs.  Selection is O(queue) at worst and runs on the event
loop.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from typing import Callable, Protocol, Sequence

from repro.core.records import ClientRequest

__all__ = [
    "PendingAdmission",
    "ShedOutcome",
    "ShedPolicy",
    "DropNewest",
    "DropByReputationPrior",
    "DropByGlobalReputation",
]


@dataclasses.dataclass(slots=True)
class PendingAdmission:
    """One request waiting in the gateway's admission queue."""

    request: ClientRequest
    future: "asyncio.Future"
    enqueued_at: float


@dataclasses.dataclass(frozen=True, slots=True)
class ShedOutcome:
    """Terminal outcome for a request the gateway refused to admit.

    Resolved into the pending request's future in place of a
    :class:`~repro.core.framework.Challenge`; the connection handler
    relays ``reason`` to the client as an ``ERR shed: ...`` frame.
    """

    reason: str
    policy: str


class ShedPolicy(Protocol):
    """Chooses the victim when the admission queue is full."""

    name: str

    def select_victim(
        self,
        queued: Sequence[PendingAdmission],
        incoming: PendingAdmission,
    ) -> PendingAdmission:
        """Return the pending admission to shed.

        ``queued`` is the current queue in arrival order (read-only);
        ``incoming`` is the request that found the queue full.  The
        returned object must be ``incoming`` or an element of
        ``queued``.
        """
        ...  # pragma: no cover - protocol definition


class DropNewest:
    """Tail drop: the request that found the queue full is the victim.

    The baseline policy — O(1), never reorders the queue, and gives
    earlier arrivals strict priority.  Under a flood this sheds honest
    latecomers and attackers alike.
    """

    name = "drop-newest"

    def select_victim(
        self,
        queued: Sequence[PendingAdmission],
        incoming: PendingAdmission,
    ) -> PendingAdmission:
        return incoming


class DropByReputationPrior:
    """Shed the pending request a cheap prior distrusts the most.

    ``prior`` maps a :class:`ClientRequest` to a suspicion score
    (higher = shed first), mirroring the reputation model's score
    orientation without paying for real scoring on the shed path.  The
    default prior is *in-queue multiplicity*: the number of pending
    requests already queued from the same address — a flooding source
    fills the queue with its own requests and becomes its own victim,
    while a single queued request from a quiet address is never
    preferred over the incoming one.

    Ties go to the newest contender (the incoming request), so under a
    uniform prior this degrades to :class:`DropNewest` rather than
    churning the queue.
    """

    name = "drop-reputation"

    def __init__(
        self,
        prior: Callable[[ClientRequest], float] | None = None,
    ) -> None:
        self._prior = prior

    def select_victim(
        self,
        queued: Sequence[PendingAdmission],
        incoming: PendingAdmission,
    ) -> PendingAdmission:
        if self._prior is None:
            counts: dict[str, int] = {}
            for pending in queued:
                ip = pending.request.client_ip
                counts[ip] = counts.get(ip, 0) + 1
            ip = incoming.request.client_ip
            counts[ip] = counts.get(ip, 0) + 1
            prior = lambda request: float(counts[request.client_ip])  # noqa: E731
        else:
            prior = self._prior

        victim = incoming
        worst = prior(incoming.request)
        for pending in queued:
            score = prior(pending.request)
            if score > worst:
                victim, worst = pending, score
        return victim


class DropByGlobalReputation:
    """Shed by *cluster-wide* behavioural reputation from a shared store.

    The in-queue multiplicity prior only sees one worker's queue: a
    botnet spraying connections across shards keeps per-queue
    multiplicity low everywhere and hides from it.  When workers share
    an admission state store (``--state-server``), the feedback
    namespace already holds every client's behavioural offset — this
    policy consults it, so overload on one shard sheds by the *global*
    reputation a client earned anywhere in the cluster.

    Offsets are cached per IP for ``cache_ttl`` seconds, bounding the
    shed path to at most one store round trip per distinct address per
    TTL window (a shed decision tolerates slightly stale reputation;
    an unbounded-latency shed path would not tolerate a lookup per
    queued entry per decision).  Primary key is the cached offset
    (higher = more hostile = shed first); in-queue multiplicity breaks
    offset ties, and full ties go to the incoming request so an
    all-neutral queue degrades to drop-newest.
    """

    name = "drop-global-reputation"

    #: Offsets cached at most this many distinct IPs; beyond it the
    #: oldest half is dropped (a shed storm from few IPs stays cheap).
    cache_limit = 4096

    def __init__(
        self,
        store,
        *,
        namespace: str = "feedback",
        cache_ttl: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if cache_ttl < 0:
            raise ValueError(f"cache_ttl must be >= 0, got {cache_ttl}")
        self._states = store.namespace(namespace)
        self.cache_ttl = cache_ttl
        self._clock = clock
        self._cache: dict[str, tuple[float, float]] = {}

    def _offset(self, client_ip: str) -> float:
        now = self._clock()
        hit = self._cache.get(client_ip)
        if hit is not None and now - hit[0] <= self.cache_ttl:
            return hit[1]
        state = self._states.get(client_ip)
        offset = float(state[0]) if state else 0.0
        if len(self._cache) >= self.cache_limit:
            for stale in list(self._cache)[: self.cache_limit // 2]:
                del self._cache[stale]
        self._cache[client_ip] = (now, offset)
        return offset

    def select_victim(
        self,
        queued: Sequence[PendingAdmission],
        incoming: PendingAdmission,
    ) -> PendingAdmission:
        counts: dict[str, int] = {}
        for pending in queued:
            ip = pending.request.client_ip
            counts[ip] = counts.get(ip, 0) + 1
        ip = incoming.request.client_ip
        counts[ip] = counts.get(ip, 0) + 1

        def rank(pending: PendingAdmission) -> tuple[float, int]:
            request = pending.request
            return (
                self._offset(request.client_ip),
                counts[request.client_ip],
            )

        victim = incoming
        worst = rank(incoming)
        for pending in queued:
            score = rank(pending)
            if score > worst:
                victim, worst = pending, score
        return victim
