"""Multi-worker admission gateway: one process per state shard.

The single-process :class:`~repro.net.gateway.server.GatewayServer`
is GIL-bound — micro-batching buys vectorised admission, but one core
is still one core.  :class:`GatewayCluster` scales it out without
giving up the state model:

* the parent binds the TCP listener and runs a thin accept loop;
* each accepted connection is routed by **client-IP consistent hash**
  (the same :class:`~repro.state.HashRing` the sharded store uses) and
  handed to the owning worker *by file descriptor* over an
  ``AF_UNIX``/``SOCK_SEQPACKET`` control channel — the parent never
  proxies a byte of payload;
* each worker process builds the identical pipeline from a
  :class:`~repro.core.spec.FrameworkSpec` over its own
  :class:`~repro.state.InMemoryStateStore` and serves its connections
  through an ordinary :class:`GatewayServer` core (micro-batcher, shed
  policy, metrics and all).

Because a client's every connection lands on the same worker, all
per-client state — behavioural offsets, cached scores, issued-puzzle
replay seeds — lives wholly inside one shard, and admission decisions
are bit-identical to the single-process path (randomized policies
excepted: each worker owns an RNG stream, like any horizontally scaled
deployment).

Lifecycle: SIGTERM (or :meth:`GatewayCluster.stop`) stops the accept
loop, then each worker drains — queued admissions resolve as ``ERR
shed: ...``, in-flight exchanges get a grace period — persists its
shard's state snapshot into ``state_dir`` (when configured), ships its
:class:`~repro.metrics.collector.GatewayMetrics` summary to the parent
over the control channel, and exits 0.  The parent aggregates the
summaries via
:func:`~repro.metrics.collector.aggregate_gateway_summaries`.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import signal
import socket
import sys
import threading

from repro.core.spec import FrameworkSpec
from repro.metrics.collector import GatewayMetrics, aggregate_gateway_summaries
from repro.net.gateway.server import GatewayServer
from repro.net.gateway.shedding import (
    DropByGlobalReputation,
    DropByReputationPrior,
    DropNewest,
)
from repro.net.live import protocol
from repro.state import (
    HashRing,
    InMemoryStateStore,
    read_shard_file,
    state_dir_topology,
    write_shard_file,
)

__all__ = [
    "GatewayCluster",
    "ShardWorker",
    "make_shed_policy",
    "shard_trace_path",
]


def shard_trace_path(record_path, shard: int, shards: int) -> str:
    """Partial-trace path one worker records into before the merge."""
    return f"{os.fspath(record_path)}.shard-{shard}-of-{shards}"

#: Control-channel message tags (SOCK_SEQPACKET, one message per send).
_READY = b"READY"
_CONN = b"C"
_QUIT = b"QUIT"
_METRICS = b"M"
_SNAP = b"S"
_SPANS = b"T"

#: Spans shipped per control-channel message at shutdown; bounds each
#: SEQPACKET message well under the socket buffer (a span is ~1 kB).
_SPAN_CHUNK = 100


def make_shed_policy(name: str, store=None):
    """Shed policy from its CLI name (specs cross process boundaries).

    ``drop-global-reputation`` needs the worker's (shared) state store;
    the other policies ignore ``store``.
    """
    if name == "drop-reputation":
        return DropByReputationPrior()
    if name == "drop-newest":
        return DropNewest()
    if name == DropByGlobalReputation.name:
        if store is None:
            raise ValueError(
                f"{name!r} needs a shared state store (--state-server)"
            )
        return DropByGlobalReputation(store)
    raise ValueError(f"unknown shed policy {name!r}")


def make_worker_store(options: dict, registry=None):
    """The state store one gateway worker builds from cluster options.

    ``state_server`` (one ``host:port``/``unix:/path`` address, or a
    comma-separated list ring-sharded client-side) selects the
    networked backend; otherwise each worker owns a private
    :class:`~repro.state.InMemoryStateStore`.
    """
    state_server = options.get("state_server")
    if not state_server:
        return InMemoryStateStore()
    from repro.state.net import MultiNodeStateStore, RemoteStateStore

    addresses = [
        part.strip() for part in state_server.split(",") if part.strip()
    ]
    if not addresses:
        raise ValueError(f"no addresses in state_server={state_server!r}")
    if len(addresses) == 1:
        return RemoteStateStore(addresses[0], registry=registry)
    return MultiNodeStateStore(
        addresses,
        replicas=int(options.get("replicas", 64)),
        registry=registry,
    )


class ShardWorker:
    """One worker process: a gateway core fed connections by fd.

    Instantiated inside the child via :func:`_worker_entry`; everything
    it needs crosses the process boundary as picklable values (the
    spec, plain options, and the control socket).
    """

    def __init__(
        self,
        spec: FrameworkSpec,
        shard: int,
        shards: int,
        ctrl: socket.socket,
        options: dict,
    ) -> None:
        from repro.obs.registry import MetricsRegistry

        self.spec = spec
        self.shard = shard
        self.shards = shards
        self.ctrl = ctrl
        self.options = options
        self.gateway: GatewayServer | None = None
        self.registry = MetricsRegistry()
        self.metrics = GatewayMetrics(registry=self.registry)
        self.tracer = None

    # -- lifecycle -----------------------------------------------------
    def run(self) -> int:
        """Build the shard's framework, serve until shutdown; exit 0."""
        store = make_worker_store(self.options, registry=self.registry)
        framework = self.spec.build(store=store)
        state_dir = self.options.get("state_dir")
        if state_dir:
            snapshot = read_shard_file(
                state_dir,
                self.shard,
                self.shards,
                replicas=int(self.options.get("replicas", 64)),
            )
            if snapshot is not None:
                framework.restore(snapshot)
        recorder = None
        record_path = self.options.get("record_path")
        if record_path:
            from repro.replay.recorder import TraceRecorder

            recorder = TraceRecorder(id_prefix=f"w{self.shard}")
        trace_every = int(self.options.get("trace_every") or 0)
        if trace_every > 0:
            from repro.obs.tracing import RequestTracer

            self.tracer = RequestTracer(
                sample_every=trace_every,
                id_prefix=f"w{self.shard}",
                registry=self.registry,
            )
        self.gateway = GatewayServer(
            framework,
            max_batch=self.options.get("max_batch", 64),
            batch_window=self.options.get("batch_window", 0.002),
            queue_limit=self.options.get("queue_limit", 256),
            shed_policy=make_shed_policy(
                self.options.get("shed_policy", "drop-newest"), store=store
            ),
            io_timeout=self.options.get("io_timeout", 30.0),
            metrics=self.metrics,
            recorder=recorder,
            tracer=self.tracer,
        )
        try:
            self.ctrl.sendall(_READY)
        except OSError:
            return 1
        asyncio.run(self._serve())
        if state_dir:
            write_shard_file(
                state_dir,
                self.shard,
                self.shards,
                framework.snapshot(),
                replicas=int(self.options.get("replicas", 64)),
            )
        if recorder is not None:
            import dataclasses

            from repro.replay.recorder import spec_hash

            recorder.dump(
                shard_trace_path(record_path, self.shard, self.shards),
                config_hash=spec_hash(self.spec),
                meta={
                    "shard": self.shard,
                    "shards": self.shards,
                    "spec": dataclasses.asdict(self.spec),
                },
            )
        self._ship_metrics()
        close = getattr(store, "close", None)
        if close is not None:
            close()
        return 0

    async def _serve(self) -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        self.ctrl.setblocking(False)
        self.gateway.batcher.start()
        loop.add_reader(self.ctrl.fileno(), self._on_ctrl_readable, loop, stop)
        publisher: asyncio.Task | None = None
        publish_interval = float(self.options.get("publish_interval") or 0.0)
        if publish_interval > 0:
            publisher = loop.create_task(
                self._publish_snapshots(publish_interval)
            )
        try:
            await stop.wait()
        finally:
            if publisher is not None:
                publisher.cancel()
            loop.remove_reader(self.ctrl.fileno())
            await self.gateway.drain(
                grace=self.options.get("drain_grace", 5.0)
            )

    async def _publish_snapshots(self, interval: float) -> None:
        """Ship registry snapshots to the parent on a fixed cadence.

        The first snapshot goes out immediately so ``/metrics`` has
        data as soon as the cluster reports ready.  Sends are
        best-effort on the non-blocking control socket: a full buffer
        (parent scraping slowly) just drops that snapshot — the next
        interval carries the superseding one anyway.
        """
        while True:
            payload = _SNAP + json.dumps(self.registry.snapshot()).encode(
                "utf-8"
            )
            try:
                self.ctrl.send(payload)
            except (BlockingIOError, InterruptedError):
                pass
            except OSError:
                return
            await asyncio.sleep(interval)

    def _on_ctrl_readable(self, loop, stop: asyncio.Event) -> None:
        """Drain control messages: connection fds, QUIT, or parent EOF."""
        while True:
            try:
                msg, fds, _flags, _addr = socket.recv_fds(self.ctrl, 64, 8)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                stop.set()
                return
            if not msg and not fds:
                # Parent closed its write side: graceful shutdown.
                stop.set()
                return
            for fd in fds:
                loop.create_task(self._serve_connection(fd))
            if msg.startswith(_QUIT):
                stop.set()
                return

    async def _serve_connection(self, fd: int) -> None:
        try:
            sock = socket.socket(fileno=fd)
        except OSError:  # pragma: no cover - defensive
            os.close(fd)
            return
        sock.setblocking(False)
        try:
            reader, writer = await asyncio.open_connection(
                sock=sock, limit=protocol.MAX_LINE_BYTES + 1
            )
        except OSError:  # pragma: no cover - peer vanished already
            sock.close()
            return
        await self.gateway.handle_connection(reader, writer)

    def _ship_metrics(self) -> None:
        summary = self.metrics.summary()
        summary["shard"] = self.shard
        summary["responses"] = len(self.gateway.responses)
        try:
            self.ctrl.setblocking(True)
            if self.tracer is not None:
                spans = self.tracer.drain()
                for start in range(0, len(spans), _SPAN_CHUNK):
                    chunk = spans[start:start + _SPAN_CHUNK]
                    self.ctrl.sendall(
                        _SPANS + json.dumps(chunk).encode("utf-8")
                    )
            self.ctrl.sendall(_METRICS + json.dumps(summary).encode("utf-8"))
        except OSError:  # pragma: no cover - parent already gone
            pass
        finally:
            self.ctrl.close()


def _worker_entry(
    spec: FrameworkSpec,
    shard: int,
    shards: int,
    ctrl: socket.socket,
    options: dict,
) -> None:
    """Child-process entry point (module-level for spawn picklability)."""
    sys.exit(ShardWorker(spec, shard, shards, ctrl, options).run())


class GatewayCluster:
    """N gateway workers behind one listener, sharded by client IP.

    Use exactly like :class:`GatewayServer`::

        spec = FrameworkSpec(policy="policy-1")
        with GatewayCluster(spec, workers=4) as cluster:
            body = LiveClient(cluster.address).fetch("/index.html", {})

    Parameters
    ----------
    spec:
        Recipe every worker builds its framework from.
    workers:
        Worker process count; 1 is a valid (useful for parity testing)
        degenerate cluster.
    host / port:
        Bind address; port 0 picks a free port.
    max_batch / batch_window / queue_limit / shed_policy / io_timeout:
        Per-worker gateway tuning (``shed_policy`` by CLI name so it
        crosses the process boundary).
    state_dir:
        Directory of per-shard state snapshots: each worker restores
        its ``shard-I-of-N.json`` at boot (when present) and rewrites
        it at graceful shutdown.
    state_server:
        Address(es) of a running ``repro state serve`` instance — one
        ``host:port``/``unix:/path``, or a comma-separated list placed
        by consistent hash (:class:`~repro.state.MultiNodeStateStore`).
        Every worker shares the store, so behavioural offsets, cached
        scores, replay protection and the adaptive load posture become
        cluster-global and survive worker restarts; also enables the
        ``drop-global-reputation`` shed policy.  Mutually exclusive
        with ``state_dir`` (the server owns persistence).
    record_path:
        When set, every worker records its admission decisions
        (:class:`~repro.replay.TraceRecorder`) and writes a partial
        trace at graceful shutdown; the parent merges the partials
        into one timestamp-ordered v2 trace at ``record_path``
        (exposed as :attr:`recorded_trace`).
    drain_grace:
        Seconds each worker gives in-flight exchanges at shutdown.
    replicas:
        Virtual nodes per shard on the routing ring (must match any
        ``repro state restore`` that produced ``state_dir``).
    start_method:
        ``multiprocessing`` start method; default ``spawn`` — portable,
        thread-safe, and the only behaviour a production supervisor
        would see.
    startup_timeout:
        Seconds to wait for every worker's READY handshake.
    metrics_port:
        When set (0 picks a free port), the parent serves ``/metrics``,
        ``/healthz`` and ``/summary`` on ``metrics_host:metrics_port``:
        workers publish registry snapshots over the control channel
        every ``publish_interval`` seconds and the parent merges the
        latest snapshot per shard into one cluster-wide view (see
        :attr:`metrics_url`).
    metrics_host:
        Bind host for the introspection endpoint.
    publish_interval:
        Seconds between worker snapshot publications (only active when
        ``metrics_port`` is set).
    trace_every:
        Sample every Nth request into a structured span per worker
        (0 disables tracing).  Workers ship their spans to the parent
        at graceful shutdown; the merged list lands in
        :attr:`trace_spans` and — when ``trace_path`` is set — in a
        spans JSONL file readable by ``repro trace``.
    trace_path:
        Destination file for the merged span dump.
    """

    def __init__(
        self,
        spec: FrameworkSpec,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_batch: int = 64,
        batch_window: float = 0.002,
        queue_limit: int = 256,
        shed_policy: str = "drop-newest",
        io_timeout: float = 30.0,
        state_dir=None,
        state_server: str | None = None,
        record_path=None,
        drain_grace: float = 5.0,
        replicas: int = 64,
        start_method: str = "spawn",
        startup_timeout: float = 120.0,
        metrics_port: int | None = None,
        metrics_host: str = "127.0.0.1",
        publish_interval: float = 0.5,
        trace_every: int = 0,
        trace_path=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if trace_every < 0:
            raise ValueError(f"trace_every must be >= 0, got {trace_every}")
        if state_server and state_dir:
            raise ValueError(
                "state_dir and state_server are mutually exclusive: with a "
                "networked store the server owns persistence "
                "(repro state serve --snapshot)"
            )
        if shed_policy == DropByGlobalReputation.name:
            # Needs the shared store; workers build it per process.
            if not state_server:
                raise ValueError(
                    f"shed policy {shed_policy!r} needs --state-server"
                )
        else:
            make_shed_policy(shed_policy)  # validate the name up front
        self.spec = spec
        self.workers = workers
        self.host = host
        self.port = port
        self.ring = HashRing(workers, replicas=replicas)
        self.state_dir = state_dir
        self.start_method = start_method
        self.startup_timeout = startup_timeout
        self.options = {
            "max_batch": max_batch,
            "batch_window": batch_window,
            "queue_limit": queue_limit,
            "shed_policy": shed_policy,
            "io_timeout": io_timeout,
            "state_dir": os.fspath(state_dir) if state_dir else None,
            "state_server": state_server or None,
            "replicas": replicas,
            "record_path": os.fspath(record_path) if record_path else None,
            "drain_grace": drain_grace,
            # Workers only pay for snapshot publication when something
            # on the parent side is there to read it.
            "publish_interval": (
                publish_interval if metrics_port is not None else 0.0
            ),
            "trace_every": trace_every,
        }
        self.record_path = (
            os.fspath(record_path) if record_path else None
        )
        #: Merged decision trace after a graceful stop with recording on.
        self.recorded_trace = None
        self.metrics_port = metrics_port
        self.metrics_host = metrics_host
        self.trace_every = trace_every
        self.trace_path = os.fspath(trace_path) if trace_path else None
        #: Merged sampled spans after a graceful stop with tracing on.
        self.trace_spans: list[dict] = []
        self._listener: socket.socket | None = None
        self._address: tuple[str, int] | None = None
        self._ctrls: list[socket.socket] = []
        self._procs: list = []
        self._accept_thread: threading.Thread | None = None
        self._metrics_server = None
        self._snapshots: dict[int, dict] = {}
        self._snapshot_lock = threading.Lock()
        self._reader_stop = threading.Event()
        self._reader_thread: threading.Thread | None = None
        self.worker_summaries: list[dict] = []
        self.metrics_summary: dict = {}
        self.exit_codes: list[int | None] = []

    # -- routing -------------------------------------------------------
    def shard_for(self, client_ip: str) -> int:
        """The worker index a client's connections are routed to."""
        return self.ring.shard_for(client_ip)

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) the cluster listener is bound to."""
        if self._address is None:
            raise RuntimeError("cluster not started")
        return self._address

    # -- introspection -------------------------------------------------
    @property
    def metrics_url(self) -> str | None:
        """Base URL of the introspection endpoint (None when disabled)."""
        if self._metrics_server is None:
            return None
        return self._metrics_server.url

    def metrics_snapshot(self) -> dict:
        """Cluster-wide registry snapshot: latest per-shard views merged."""
        from repro.obs.registry import merge_snapshots

        with self._snapshot_lock:
            snapshots = [
                self._snapshots[shard] for shard in sorted(self._snapshots)
            ]
        return merge_snapshots(snapshots)

    def health(self) -> dict:
        """Liveness document for ``/healthz`` (503 unless status ok)."""
        alive = sum(1 for proc in self._procs if proc.is_alive())
        status = (
            "ok" if self._procs and alive == len(self._procs) else "degraded"
        )
        return {"status": status, "workers": self.workers, "alive": alive}

    def _snapshot_reader(self) -> None:
        """Collect worker snapshot publications off the control sockets.

        Runs on its own thread while the cluster serves; stopped (and
        joined) *before* the parent shuts the control channels down for
        teardown, so the shutdown-time span/metrics messages are left
        for :meth:`_read_summary` to consume in order.
        """
        import selectors

        selector = selectors.DefaultSelector()
        for shard, ctrl in enumerate(self._ctrls):
            selector.register(ctrl, selectors.EVENT_READ, shard)
        try:
            while not self._reader_stop.is_set():
                for key, _events in selector.select(timeout=0.2):
                    try:
                        message = key.fileobj.recv(1 << 20)
                    except OSError:
                        selector.unregister(key.fileobj)
                        continue
                    if not message:
                        # Worker died; its last snapshot stays visible.
                        selector.unregister(key.fileobj)
                        continue
                    if not message.startswith(_SNAP):
                        continue
                    try:
                        snapshot = json.loads(message[len(_SNAP):])
                    except ValueError:  # pragma: no cover - torn message
                        continue
                    with self._snapshot_lock:
                        self._snapshots[key.data] = snapshot
        finally:
            selector.close()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "GatewayCluster":
        """Bind, spawn the workers, wait for READY, begin accepting."""
        if self._listener is not None:
            raise RuntimeError("cluster already started")
        if self.state_dir is not None:
            # Fail before spawning anything: a state directory split
            # for a different worker count must be re-split, never
            # silently cold-started (the workers enforce this too).
            topology = state_dir_topology(self.state_dir)
            if topology is not None and topology != self.workers:
                raise ValueError(
                    f"{self.state_dir} holds state split for {topology} "
                    f"workers, cluster has {self.workers}; re-split with "
                    f"`repro state restore --workers {self.workers}`"
                )
        ctx = multiprocessing.get_context(self.start_method)
        listener = socket.create_server(
            (self.host, self.port), backlog=512, reuse_port=False
        )
        self._listener = listener
        self._address = listener.getsockname()[:2]
        try:
            for shard in range(self.workers):
                parent_sock, child_sock = socket.socketpair(
                    socket.AF_UNIX, socket.SOCK_SEQPACKET
                )
                proc = ctx.Process(
                    target=_worker_entry,
                    args=(
                        self.spec, shard, self.workers, child_sock,
                        self.options,
                    ),
                    name=f"repro-gateway-shard-{shard}",
                    daemon=True,
                )
                proc.start()
                child_sock.close()
                self._ctrls.append(parent_sock)
                self._procs.append(proc)
            for shard, ctrl in enumerate(self._ctrls):
                ctrl.settimeout(self.startup_timeout)
                try:
                    message = ctrl.recv(64)
                except (socket.timeout, OSError):
                    message = b""
                if message != _READY:
                    raise RuntimeError(
                        f"gateway worker {shard} failed to come up "
                        f"(exitcode {self._procs[shard].exitcode})"
                    )
                ctrl.settimeout(None)
            if self.metrics_port is not None:
                from repro.obs.http import MetricsHTTPServer

                self._reader_stop.clear()
                self._reader_thread = threading.Thread(
                    target=self._snapshot_reader,
                    name="repro-cluster-snapshots",
                    daemon=True,
                )
                self._reader_thread.start()
                self._metrics_server = MetricsHTTPServer(
                    self.metrics_snapshot,
                    host=self.metrics_host,
                    port=self.metrics_port,
                    health_provider=self.health,
                ).start()
        except BaseException:
            self._teardown(graceful=False)
            raise
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-cluster-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, addr = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            shard = self.ring.shard_for(addr[0])
            try:
                socket.send_fds(self._ctrls[shard], [_CONN], [conn.fileno()])
            except OSError:  # pragma: no cover - worker died
                pass
            finally:
                conn.close()

    def stop(self) -> None:
        """Graceful shutdown: drain workers, collect metrics (idempotent)."""
        if self._listener is None:
            return
        self._teardown(graceful=True)

    def _teardown(self, graceful: bool) -> None:
        if self._metrics_server is not None:
            self._metrics_server.close()
            self._metrics_server = None
        # The snapshot reader must be fully stopped before the control
        # channels shut down: once workers see parent EOF they start
        # shipping spans and the final summary, and those messages
        # belong to _read_summary, not the reader.
        self._reader_stop.set()
        if self._reader_thread is not None:
            self._reader_thread.join(timeout=10.0)
            self._reader_thread = None
        if self._listener is not None:
            self._listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=10.0)
            self._accept_thread = None
        summaries: list[dict] = []
        spans: list[dict] = []
        for ctrl in self._ctrls:
            try:
                ctrl.shutdown(socket.SHUT_WR)
            except OSError:
                pass
        for ctrl, proc in zip(self._ctrls, self._procs):
            if graceful:
                summary = self._read_summary(ctrl, spans)
                if summary is not None:
                    summaries.append(summary)
            ctrl.close()
            proc.join(timeout=30.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5.0)
            self.exit_codes.append(proc.exitcode)
        self._ctrls = []
        self._procs = []
        self._listener = None
        self._address = None
        if graceful:
            self.worker_summaries = summaries
            self.metrics_summary = aggregate_gateway_summaries(summaries)
            spans.sort(key=lambda span: span.get("accept_ts", 0.0))
            self.trace_spans = spans
            if self.trace_path is not None:
                self._dump_spans(spans)
            if self.record_path is not None:
                self.recorded_trace = self._merge_recordings()

    def _dump_spans(self, spans: list[dict]) -> None:
        from repro.obs.tracing import write_spans

        with open(self.trace_path, "w", encoding="utf-8") as handle:
            write_spans(
                handle,
                spans,
                meta={
                    "recorder": "cluster",
                    "workers": self.workers,
                    "sample_every": self.trace_every,
                },
            )

    def _merge_recordings(self):
        """Merge per-shard partial traces into one file at record_path."""
        from repro.traffic.trace import Trace, TraceHeader

        entries = []
        config_hash = ""
        spec_mapping = None
        for shard in range(self.workers):
            partial_path = shard_trace_path(
                self.record_path, shard, self.workers
            )
            try:
                partial = Trace.load_jsonl(partial_path)
            except OSError:  # pragma: no cover - worker died pre-dump
                continue
            entries.extend(partial.entries)
            if partial.header is not None:
                config_hash = partial.header.config_hash or config_hash
                spec_mapping = (
                    partial.header.meta.get("spec") or spec_mapping
                )
            os.unlink(partial_path)
        meta = {"recorder": "cluster", "workers": self.workers}
        if spec_mapping is not None:
            meta["spec"] = spec_mapping
        merged = Trace(
            entries,
            header=TraceHeader(config_hash=config_hash, meta=meta),
        )
        merged.dump_jsonl(self.record_path)
        return merged

    def _read_summary(
        self, ctrl: socket.socket, spans_out: list[dict] | None = None
    ) -> dict | None:
        """Read one worker's shutdown stream: span chunks, then summary.

        Snapshot publications still in flight are skipped; ``T`` span
        chunks accumulate into ``spans_out``; the ``M`` summary message
        terminates the stream.
        """
        ctrl.settimeout(30.0)
        try:
            while True:
                message = ctrl.recv(1 << 20)
                if not message:
                    return None
                if message.startswith(_SPANS):
                    if spans_out is not None:
                        chunk = json.loads(message[len(_SPANS):])
                        spans_out.extend(chunk)
                    continue
                if message.startswith(_METRICS):
                    return json.loads(message[len(_METRICS):])
        except (socket.timeout, OSError, ValueError):
            return None

    def __enter__(self) -> "GatewayCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
