"""Network substrates: the simulator, the live server, and the gateway.

``repro.net.sim`` provides the deterministic environment used for every
paper experiment; ``repro.net.live`` provides a real TCP server/client
pair exercising the same framework code path with real hashing;
``repro.net.gateway`` provides the asyncio micro-batching front-end
that serves the same protocol through ``challenge_batch``.
"""

from repro.net.gateway import GatewayServer, LoadGenerator
from repro.net.live import LiveClient, LiveServer
from repro.net.sim import (
    EventEngine,
    FixedDelayChannel,
    ServerModel,
    Simulation,
    SimulationReport,
    SolveTimeModel,
)

__all__ = [
    "EventEngine",
    "Simulation",
    "SimulationReport",
    "ServerModel",
    "SolveTimeModel",
    "FixedDelayChannel",
    "LiveServer",
    "LiveClient",
    "GatewayServer",
    "LoadGenerator",
]
