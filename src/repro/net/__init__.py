"""Network substrates: the discrete-event simulator and the live server.

``repro.net.sim`` provides the deterministic environment used for every
paper experiment; ``repro.net.live`` provides a real TCP server/client
pair exercising the same framework code path with real hashing.
"""

from repro.net.live import LiveClient, LiveServer
from repro.net.sim import (
    EventEngine,
    FixedDelayChannel,
    ServerModel,
    Simulation,
    SimulationReport,
    SolveTimeModel,
)

__all__ = [
    "EventEngine",
    "Simulation",
    "SimulationReport",
    "ServerModel",
    "SolveTimeModel",
    "FixedDelayChannel",
    "LiveServer",
    "LiveClient",
]
