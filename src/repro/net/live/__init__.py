"""Live TCP substrate: real sockets, real hashing, real latency."""

from repro.net.live.client import FetchResult, LiveClient
from repro.net.live.protocol import (
    MAX_LINE_BYTES,
    encode_err,
    encode_ok,
    encode_request,
    parse_reply,
    parse_request,
    read_line,
    send_line,
)
from repro.net.live.server import LiveServer

__all__ = [
    "LiveServer",
    "LiveClient",
    "FetchResult",
    "MAX_LINE_BYTES",
    "encode_request",
    "parse_request",
    "encode_ok",
    "encode_err",
    "parse_reply",
    "read_line",
    "send_line",
]
