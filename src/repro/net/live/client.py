"""Blocking client for the live protocol: the paper's *solver* role.

:class:`LiveClient` connects, sends a request, receives the puzzle,
grinds it with a real :class:`~repro.pow.solver.HashSolver`, submits the
solution, and returns the served body with end-to-end timing — one full
pass of the paper's Figure 1 over real sockets.
"""

from __future__ import annotations

import dataclasses
import socket
import time
from typing import Mapping

from repro.core.errors import ProtocolError
from repro.net.live import protocol
from repro.pow.puzzle import Puzzle
from repro.pow.solver import HashSolver

__all__ = ["LiveClient", "FetchResult"]


@dataclasses.dataclass(frozen=True, slots=True)
class FetchResult:
    """Outcome of one live exchange."""

    ok: bool
    body: str
    latency: float
    difficulty: int
    attempts: int
    solve_seconds: float


class LiveClient:
    """Connect-per-request client that solves puzzles honestly.

    Parameters
    ----------
    address:
        (host, port) of a :class:`~repro.net.live.server.LiveServer`.
    solver:
        Nonce grinder; defaults to a fresh 32-bit :class:`HashSolver`.
    timeout:
        Socket timeout in seconds.
    source_ip:
        Optional local address to bind outgoing connections to.  On
        Linux any ``127.0.0.0/8`` address is loopback, so tests and
        smoke tools can present distinct client IPs to a sharded
        gateway from a single host.
    """

    def __init__(
        self,
        address: tuple[str, int],
        solver: HashSolver | None = None,
        timeout: float = 30.0,
        source_ip: str | None = None,
    ) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.address = address
        self.solver = solver or HashSolver()
        self.timeout = timeout
        self.source_ip = source_ip

    def _connect(self) -> socket.socket:
        source = (self.source_ip, 0) if self.source_ip else None
        return socket.create_connection(
            self.address, timeout=self.timeout, source_address=source
        )

    def fetch(
        self, resource: str, features: Mapping[str, float]
    ) -> FetchResult:
        """Run one full request/solve/redeem exchange."""
        started = time.perf_counter()
        with self._connect() as sock:
            protocol.send_line(
                sock, protocol.encode_request(resource, features)
            )
            puzzle = Puzzle.from_wire(protocol.read_line(sock))

            # The server binds the puzzle to the address it sees; use the
            # same one (our side of this connection).
            my_ip = sock.getsockname()[0]
            solution = self.solver.solve(puzzle, my_ip)
            protocol.send_line(sock, solution.to_wire())

            ok, body = protocol.parse_reply(protocol.read_line(sock))
        return FetchResult(
            ok=ok,
            body=body,
            latency=time.perf_counter() - started,
            difficulty=puzzle.difficulty,
            attempts=solution.attempts,
            solve_seconds=solution.elapsed,
        )

    def fetch_raw(
        self,
        resource: str,
        features: Mapping[str, float],
        solution_line: str,
    ) -> tuple[bool, str]:
        """Send a request but submit ``solution_line`` verbatim.

        Test hook for failure injection (bad nonces, tampered frames);
        returns the parsed (ok, body/reason) reply.
        """
        with self._connect() as sock:
            protocol.send_line(
                sock, protocol.encode_request(resource, features)
            )
            Puzzle.from_wire(protocol.read_line(sock))  # consume the puzzle
            protocol.send_line(sock, solution_line)
            try:
                return protocol.parse_reply(protocol.read_line(sock))
            except ProtocolError:
                return False, "connection closed"
