"""Threaded TCP server running the framework pipeline for real.

:class:`LiveServer` wraps an :class:`~repro.core.framework.AIPoWFramework`
behind the line protocol of :mod:`repro.net.live.protocol`.  One thread
per connection; the framework itself is guarded by a lock (scoring is
read-only, but the replay cache and RNG are shared mutable state).

This is the wall-clock path of the reproduction: real sockets, real
hashes, real latency — used by the live examples and integration tests,
while large-scale experiments use the simulator.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from collections import deque

from repro.core.errors import ProtocolError, ReproError
from repro.core.framework import AIPoWFramework
from repro.core.records import ClientRequest
from repro.net.live import protocol
from repro.pow.puzzle import Solution

__all__ = ["LiveServer"]


class _ConnectionHandler(socketserver.BaseRequestHandler):
    """Runs the REQUEST → PUZZLE → SOLUTION → OK/ERR exchange."""

    def handle(self) -> None:  # noqa: D102 - socketserver contract
        server: "_FrameworkTCPServer" = self.server  # type: ignore[assignment]
        sock: socket.socket = self.request
        sock.settimeout(server.live.io_timeout)
        try:
            self._exchange(server, sock)
        except (ProtocolError, OSError):
            # A malformed or dropped peer only affects its own connection.
            return

    def _exchange(
        self, server: "_FrameworkTCPServer", sock: socket.socket
    ) -> None:
        line = protocol.read_line(sock)
        try:
            resource, features = protocol.parse_request(line)
        except ProtocolError as exc:
            protocol.send_line(sock, protocol.encode_err(str(exc)))
            raise

        client_ip = self.client_address[0]
        if server.live.admission is not None:
            decision = server.live.admission.check(client_ip, time.time())
            if not decision.admitted:
                protocol.send_line(
                    sock, protocol.encode_err(f"admission: {decision.reason}")
                )
                return
        request = ClientRequest(
            client_ip=client_ip,
            resource=resource,
            timestamp=time.time(),
            features=features,
        )
        # Latency deltas ride the monotonic clock (the wall clock can
        # step mid-exchange); the wall timestamp above stays the
        # record-keeping time.
        accepted_mono = time.monotonic()
        try:
            with server.live.lock:
                challenge = server.live.framework.challenge(request)
        except ReproError as exc:
            protocol.send_line(sock, protocol.encode_err(f"challenge: {exc}"))
            return

        protocol.send_line(sock, challenge.puzzle.to_wire())

        solution_line = protocol.read_line(sock)
        solution = Solution.from_wire(solution_line)
        now = time.time()
        elapsed = time.monotonic() - accepted_mono
        with server.live.lock:
            response = server.live.framework.redeem(
                challenge, solution, now=now, request_sent_at=now - elapsed
            )
        # Record before replying so a client that acts on the reply
        # immediately (tests, health checks) already sees the log entry.
        server.live.record(response)
        if response.served:
            protocol.send_line(sock, protocol.encode_ok(response.body))
        else:
            protocol.send_line(
                sock, protocol.encode_err(response.status.value)
            )


class _FrameworkTCPServer(socketserver.ThreadingTCPServer):
    """ThreadingTCPServer carrying a reference to the LiveServer."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, live: "LiveServer") -> None:
        super().__init__(address, _ConnectionHandler)
        self.live = live


class LiveServer:
    """A real TCP front-end for the framework.

    Use as a context manager in tests and examples::

        with LiveServer(framework) as server:
            client = LiveClient(server.address)
            body = client.fetch("/index.html", features)

    Parameters
    ----------
    framework:
        The configured pipeline to expose.
    host / port:
        Bind address; port 0 picks a free port.
    io_timeout:
        Per-socket timeout in seconds.
    admission:
        Optional :class:`~repro.core.admission.AdmissionControl`
        pre-filter; requests it drops get an ``ERR admission: ...``
        reply before any scoring happens.
    """

    def __init__(
        self,
        framework: AIPoWFramework,
        host: str = "127.0.0.1",
        port: int = 0,
        io_timeout: float = 30.0,
        admission=None,
    ) -> None:
        if io_timeout <= 0:
            raise ValueError(f"io_timeout must be > 0, got {io_timeout}")
        self.framework = framework
        self.io_timeout = io_timeout
        self.admission = admission
        self.lock = threading.Lock()
        self.responses: deque = deque(maxlen=10_000)
        self._tcp = _FrameworkTCPServer((host, port), self)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) the server is bound to."""
        return self._tcp.server_address[:2]

    def record(self, response) -> None:
        """Remember a completed exchange (bounded to the last 10 000).

        The bound lives in the deque's ``maxlen`` so trimming is O(1)
        per append instead of an O(n) ``del`` slice under the lock.
        """
        with self.lock:
            self.responses.append(response)

    def start(self) -> "LiveServer":
        """Start serving on a background thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, name="repro-live-server", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._thread is None:
            return
        self._tcp.shutdown()
        self._tcp.server_close()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "LiveServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
