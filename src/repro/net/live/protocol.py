"""Wire protocol for the live client-server demo.

A deliberately simple line-oriented ASCII protocol carrying the paper's
Figure 1 exchange over one TCP connection:

.. code-block:: text

    C -> S:  REQUEST <resource> <features-json>
    S -> C:  PUZZLE <version> <seed> <timestamp> <difficulty> <algo> <tag>
    C -> S:  SOLUTION <seed> <nonce> <attempts>
    S -> C:  OK <body>           (puzzle solved, resource served)
             ERR <reason>        (verification failed)

Frames are single ``\\n``-terminated lines; :func:`read_line` enforces a
length cap so a hostile peer cannot balloon server memory.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Mapping

from repro.core.errors import ProtocolError

__all__ = [
    "MAX_LINE_BYTES",
    "encode_request",
    "parse_request",
    "encode_ok",
    "encode_err",
    "parse_reply",
    "read_line",
    "send_line",
    "read_line_async",
    "send_line_async",
]

#: Upper bound on any single protocol line.
MAX_LINE_BYTES = 64 * 1024


def encode_request(resource: str, features: Mapping[str, float]) -> str:
    """Build a ``REQUEST`` frame."""
    if not resource.startswith("/"):
        raise ProtocolError(f"resource must start with '/': {resource!r}")
    payload = json.dumps(dict(features), separators=(",", ":"), sort_keys=True)
    return f"REQUEST {resource} {payload}"


def parse_request(line: str) -> tuple[str, dict[str, float]]:
    """Parse a ``REQUEST`` frame into (resource, features)."""
    parts = line.strip().split(" ", 2)
    if len(parts) != 3 or parts[0] != "REQUEST":
        raise ProtocolError(f"malformed request frame: {line[:80]!r}")
    _, resource, payload = parts
    if not resource.startswith("/"):
        raise ProtocolError(f"malformed resource in request: {resource!r}")
    try:
        features = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed feature JSON: {exc}") from exc
    if not isinstance(features, dict):
        raise ProtocolError("feature payload must be a JSON object")
    try:
        features = {str(k): float(v) for k, v in features.items()}
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"non-numeric feature value: {exc}") from exc
    return resource, features


def encode_ok(body: str) -> str:
    """Build an ``OK`` frame."""
    if "\n" in body:
        raise ProtocolError("reply body must be single-line")
    return f"OK {body}"


def encode_err(reason: str) -> str:
    """Build an ``ERR`` frame."""
    reason = reason.replace("\n", " ")
    return f"ERR {reason}"


def parse_reply(line: str) -> tuple[bool, str]:
    """Parse an ``OK``/``ERR`` frame into (success, body_or_reason)."""
    line = line.strip()
    if line.startswith("OK "):
        return True, line[3:]
    if line == "OK":
        return True, ""
    if line.startswith("ERR "):
        return False, line[4:]
    raise ProtocolError(f"malformed reply frame: {line[:80]!r}")


def read_line(sock: socket.socket, max_bytes: int = MAX_LINE_BYTES) -> str:
    """Read one ``\\n``-terminated line from ``sock``.

    Raises :class:`ProtocolError` on EOF mid-line or when the cap is
    exceeded.
    """
    chunks: list[bytes] = []
    total = 0
    while True:
        byte = sock.recv(1)
        if not byte:
            if total == 0:
                raise ProtocolError("connection closed before frame")
            raise ProtocolError("connection closed mid-frame")
        if byte == b"\n":
            return b"".join(chunks).decode("ascii", "replace")
        chunks.append(byte)
        total += 1
        if total > max_bytes:
            raise ProtocolError(f"frame exceeds {max_bytes} bytes")


def send_line(sock: socket.socket, line: str) -> None:
    """Send one frame, appending the terminator."""
    if "\n" in line:
        raise ProtocolError("frames must not contain newlines")
    sock.sendall(line.encode("ascii") + b"\n")


async def read_line_async(
    reader: asyncio.StreamReader, max_bytes: int = MAX_LINE_BYTES
) -> str:
    """Read one ``\\n``-terminated line from an asyncio stream.

    The asyncio counterpart of :func:`read_line`, used by the gateway:
    same frames, same cap, same :class:`ProtocolError` on EOF mid-frame
    or when the cap is exceeded — but buffered reads instead of the
    blocking byte-at-a-time loop.
    """
    try:
        raw = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise ProtocolError("connection closed before frame") from exc
        raise ProtocolError("connection closed mid-frame") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError(f"frame exceeds {max_bytes} bytes") from exc
    if len(raw) - 1 > max_bytes:
        raise ProtocolError(f"frame exceeds {max_bytes} bytes")
    return raw[:-1].decode("ascii", "replace")


async def send_line_async(writer: asyncio.StreamWriter, line: str) -> None:
    """Send one frame over an asyncio stream, appending the terminator."""
    if "\n" in line:
        raise ProtocolError("frames must not contain newlines")
    writer.write(line.encode("ascii") + b"\n")
    await writer.drain()
