"""WSGI middleware: drop the framework in front of any Python web app.

The paper's client issues *HTTP requests* (Figure 1 step 1).  This
middleware makes the framework deployable in that exact setting without
a custom protocol: wrap any WSGI application and unsolved requests
receive ``429 Too Many Requests`` carrying the puzzle in headers; the
client solves and retries with the solution attached.

Exchange:

1. Request without solution headers →
   ``429`` + ``X-PoW-Puzzle: <puzzle frame>`` (and a human-readable
   body).  The puzzle is bound to the peer address as usual.
2. Request with ``X-PoW-Puzzle`` (echoed) and ``X-PoW-Solution``
   headers → verified; on success the wrapped application runs, on
   failure ``403``.

Feature extraction is pluggable: by default, features come from a
JSON ``X-PoW-Features`` header (trusted-lab setting, as in the paper's
evaluation); production deployments supply a callable that derives
features from the environ (socket stats, headers, upstream intel).

The middleware is stateless across requests except for the verifier's
replay cache — exactly like the TCP server.
"""

from __future__ import annotations

import json
from typing import Callable, Iterable, Mapping

from repro.core.errors import ProtocolError, ReproError
from repro.core.framework import AIPoWFramework
from repro.core.records import ClientRequest
from repro.pow.puzzle import Puzzle, Solution

__all__ = ["PowMiddleware", "solve_challenge_headers"]

FeatureExtractor = Callable[[Mapping[str, object]], Mapping[str, float]]

#: Header names used by the exchange (WSGI environ form in parens).
PUZZLE_HEADER = "X-PoW-Puzzle"
SOLUTION_HEADER = "X-PoW-Solution"
FEATURES_HEADER = "X-PoW-Features"

_ENV_PUZZLE = "HTTP_X_POW_PUZZLE"
_ENV_SOLUTION = "HTTP_X_POW_SOLUTION"
_ENV_FEATURES = "HTTP_X_POW_FEATURES"


def _default_extractor(environ: Mapping[str, object]) -> dict[str, float]:
    """Features from the ``X-PoW-Features`` JSON header (may be empty)."""
    raw = environ.get(_ENV_FEATURES)
    if not raw:
        return {}
    try:
        data = json.loads(str(raw))
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed {FEATURES_HEADER} header: {exc}") from exc
    if not isinstance(data, dict):
        raise ProtocolError(f"{FEATURES_HEADER} must be a JSON object")
    try:
        return {str(k): float(v) for k, v in data.items()}
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"non-numeric feature value: {exc}") from exc


class PowMiddleware:
    """Wraps a WSGI app behind the AI-assisted PoW challenge.

    Parameters
    ----------
    app:
        The protected WSGI application.
    framework:
        The configured pipeline.
    feature_extractor:
        environ → feature mapping; defaults to the JSON header.
    clock:
        Time source (injectable for tests).
    admission:
        Optional :class:`~repro.core.admission.AdmissionControl`
        pre-filter — the same hook the TCP front-ends take, checked at
        the same point in the exchange (on the challenge request,
        before any scoring).  Dropped requests get ``429`` with a
        ``Retry-After`` header and *no* puzzle, so both front-ends
        shed identically.
    """

    def __init__(
        self,
        app,
        framework: AIPoWFramework,
        feature_extractor: FeatureExtractor | None = None,
        clock: Callable[[], float] | None = None,
        admission=None,
    ) -> None:
        import time

        self.app = app
        self.framework = framework
        self.extract = feature_extractor or _default_extractor
        self.clock = clock or time.time
        self.admission = admission

    # ------------------------------------------------------------------
    def __call__(self, environ, start_response) -> Iterable[bytes]:
        try:
            return self._dispatch(environ, start_response)
        except ProtocolError as exc:
            return self._respond(
                start_response, "400 Bad Request", str(exc)
            )
        except ReproError as exc:
            return self._respond(
                start_response, "500 Internal Server Error", str(exc)
            )

    def _dispatch(self, environ, start_response) -> Iterable[bytes]:
        if _ENV_SOLUTION in environ:
            return self._redeem(environ, start_response)
        return self._challenge(environ, start_response)

    def _request_from(self, environ) -> ClientRequest:
        client_ip = str(environ.get("REMOTE_ADDR", "") or "0.0.0.0")
        path = str(environ.get("PATH_INFO", "/") or "/")
        if not path.startswith("/"):
            path = "/" + path
        return ClientRequest(
            client_ip=client_ip,
            resource=path,
            timestamp=self.clock(),
            features=self.extract(environ),
        )

    def _challenge(self, environ, start_response) -> Iterable[bytes]:
        request = self._request_from(environ)
        if self.admission is not None:
            decision = self.admission.check(
                request.client_ip, request.timestamp
            )
            if not decision.admitted:
                import math

                body = f"admission: {decision.reason}\n".encode("ascii")
                start_response(
                    "429 Too Many Requests",
                    [
                        ("Content-Type", "text/plain"),
                        ("Content-Length", str(len(body))),
                        (
                            "Retry-After",
                            str(max(1, math.ceil(decision.retry_after))),
                        ),
                    ],
                )
                return [body]
        challenge = self.framework.challenge(request, now=request.timestamp)
        body = (
            f"proof of work required: difficulty "
            f"{challenge.decision.difficulty}\n"
        ).encode("ascii")
        start_response(
            "429 Too Many Requests",
            [
                ("Content-Type", "text/plain"),
                ("Content-Length", str(len(body))),
                (PUZZLE_HEADER, challenge.puzzle.to_wire()),
                ("Retry-After", "0"),
            ],
        )
        return [body]

    def _redeem(self, environ, start_response) -> Iterable[bytes]:
        puzzle_frame = environ.get(_ENV_PUZZLE)
        if not puzzle_frame:
            raise ProtocolError(
                f"{SOLUTION_HEADER} without {PUZZLE_HEADER}"
            )
        puzzle = Puzzle.from_wire(str(puzzle_frame))
        solution = Solution.from_wire(str(environ[_ENV_SOLUTION]))

        request = self._request_from(environ)
        # Reconstruct a challenge for this puzzle.  The decision's score
        # and policy are recomputed for audit purposes; verification
        # itself depends only on the puzzle tag, which binds the IP.
        from repro.core.framework import Challenge
        from repro.core.records import IssuerDecision

        decision = IssuerDecision(
            request=request,
            reputation_score=self.framework.model.score_request(request),
            difficulty=puzzle.difficulty,
            policy_name=self.framework.policy.name,
            model_name=self.framework.model.name,
        )
        response = self.framework.redeem(
            Challenge(decision, puzzle), solution, now=self.clock()
        )
        if not response.served:
            return self._respond(
                start_response, "403 Forbidden", response.status.value
            )
        return self.app(environ, start_response)

    @staticmethod
    def _respond(start_response, status: str, message: str) -> Iterable[bytes]:
        body = (message + "\n").encode("ascii", "replace")
        start_response(
            status,
            [
                ("Content-Type", "text/plain"),
                ("Content-Length", str(len(body))),
            ],
        )
        return [body]


def solve_challenge_headers(
    puzzle_frame: str,
    client_ip: str,
    nonce_bits: int = 32,
) -> dict[str, str]:
    """Client helper: solve a 429's puzzle and build the retry headers."""
    from repro.pow.solver import HashSolver

    puzzle = Puzzle.from_wire(puzzle_frame)
    solution = HashSolver(nonce_bits=nonce_bits).solve(puzzle, client_ip)
    return {
        PUZZLE_HEADER: puzzle_frame,
        SOLUTION_HEADER: solution.to_wire(),
    }
