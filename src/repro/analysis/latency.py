"""Closed-form latency analytics for policies.

The simulator *samples* the latency distribution; this module computes
it.  For a ``d``-difficult puzzle the attempt count is geometric with
``p = 2**-d``, so end-to-end latency is ``overhead + attempts/rate``
with fully known distribution.  For randomized policies (Policy 3) the
latency is a uniform mixture over the difficulty interval; mean and any
quantile of the mixture are computed exactly (quantile by bisection on
the mixture CDF).

These curves are what the Figure 2 samples converge to — the
`test_analysis_matches_simulation` tests pin that agreement.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.config import TimingConfig
from repro.core.interfaces import Policy
from repro.policies.error_range import ErrorRangePolicy

__all__ = [
    "difficulty_distribution",
    "mean_latency",
    "latency_quantile",
    "latency_curve",
]


def difficulty_distribution(
    policy: Policy, score: float
) -> dict[int, float]:
    """The policy's difficulty distribution at ``score``.

    Exact for the built-in deterministic policies and for
    :class:`ErrorRangePolicy` (uniform over its integer interval).
    Policies outside those classes are assumed deterministic and probed
    once with a throwaway RNG.
    """
    if isinstance(policy, ErrorRangePolicy):
        low, high = policy.interval(score)
        count = high - low + 1
        return {d: 1.0 / count for d in range(low, high + 1)}
    import random

    probe = random.Random(0)
    first = policy.difficulty_for(score, probe)
    # A deterministic policy returns the same value for any RNG state.
    second = policy.difficulty_for(score, random.Random(1))
    if first != second:
        raise ValueError(
            f"policy {policy.name!r} is randomized but not an "
            "ErrorRangePolicy; no closed form available"
        )
    return {first: 1.0}


def _geometric_cdf(attempts: float, difficulty: int) -> float:
    """P(geometric(2**-d) <= attempts)."""
    if attempts < 1:
        return 0.0
    if difficulty == 0:
        return 1.0
    p = 2.0**-difficulty
    return -math.expm1(math.floor(attempts) * math.log1p(-p))


def mean_latency(
    policy: Policy, score: float, timing: TimingConfig | None = None
) -> float:
    """Exact expected latency (seconds) at ``score``."""
    timing = timing or TimingConfig()
    distribution = difficulty_distribution(policy, score)
    expected_attempts = sum(
        weight * 2.0**d for d, weight in distribution.items()
    )
    return (
        timing.network_overhead
        + timing.server_processing
        + expected_attempts * timing.seconds_per_attempt
    )


def latency_quantile(
    policy: Policy,
    score: float,
    q: float,
    timing: TimingConfig | None = None,
) -> float:
    """Exact ``q``-quantile of the latency distribution at ``score``.

    Computed by bisection on the mixture CDF of attempt counts.
    """
    if not 0.0 < q < 1.0:
        raise ValueError(f"q must be in (0, 1), got {q}")
    timing = timing or TimingConfig()
    distribution = difficulty_distribution(policy, score)

    def cdf(attempts: float) -> float:
        return sum(
            weight * _geometric_cdf(attempts, d)
            for d, weight in distribution.items()
        )

    low, high = 1.0, 2.0
    while cdf(high) < q:
        high *= 2.0
        if high > 2**80:  # unreachable for sane difficulties
            break
    for _ in range(200):
        mid = (low + high) / 2.0
        if cdf(mid) < q:
            low = mid
        else:
            high = mid
    attempts = high
    return (
        timing.network_overhead
        + timing.server_processing
        + attempts * timing.seconds_per_attempt
    )


def latency_curve(
    policy: Policy,
    scores: Sequence[float] = tuple(range(11)),
    timing: TimingConfig | None = None,
    statistic: str = "median",
) -> list[float]:
    """The analytic Figure 2 series (milliseconds) for one policy.

    ``statistic`` is ``"mean"`` or ``"median"``.
    """
    timing = timing or TimingConfig()
    if statistic == "mean":
        return [
            mean_latency(policy, s, timing) * 1000.0 for s in scores
        ]
    if statistic == "median":
        return [
            latency_quantile(policy, s, 0.5, timing) * 1000.0
            for s in scores
        ]
    raise ValueError(f"statistic must be 'mean' or 'median', got {statistic!r}")
