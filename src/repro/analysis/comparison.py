"""Side-by-side analytic comparison of policies.

Produces the administrator's decision table: for each candidate policy,
the honest tax (latency at score 0), the attacker throttle (latency at
score 10), the amplification ratio, and the expected per-request work
inflicted on a score-10 client — all from the closed-form model, no
simulation required.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.latency import latency_quantile, mean_latency
from repro.bench.results import ExperimentResult
from repro.core.config import TimingConfig
from repro.core.interfaces import Policy
from repro.analysis.latency import difficulty_distribution

__all__ = ["compare_policies"]


def compare_policies(
    policies: Sequence[Policy],
    timing: TimingConfig | None = None,
) -> ExperimentResult:
    """Analytic comparison table across ``policies``."""
    if not policies:
        raise ValueError("need at least one policy")
    timing = timing or TimingConfig()
    rows = []
    for policy in policies:
        honest_ms = latency_quantile(policy, 0.0, 0.5, timing) * 1000.0
        hostile_ms = latency_quantile(policy, 10.0, 0.5, timing) * 1000.0
        hostile_mean_ms = mean_latency(policy, 10.0, timing) * 1000.0
        tail_ms = latency_quantile(policy, 10.0, 0.99, timing) * 1000.0
        distribution = difficulty_distribution(policy, 10.0)
        expected_work = sum(w * 2.0**d for d, w in distribution.items())
        rows.append(
            [
                policy.name,
                honest_ms,
                hostile_ms,
                hostile_ms / honest_ms if honest_ms else float("inf"),
                hostile_mean_ms,
                tail_ms,
                expected_work,
            ]
        )
    return ExperimentResult(
        experiment_id="policy-compare",
        title="Analytic policy comparison (closed-form latency model)",
        headers=[
            "policy", "honest_median_ms", "score10_median_ms",
            "amplification", "score10_mean_ms", "score10_p99_ms",
            "score10_expected_hashes",
        ],
        rows=rows,
        notes=[
            f"timing: overhead={timing.network_overhead * 1000:.1f}ms, "
            f"{timing.seconds_per_attempt * 1e6:.1f}us/attempt",
        ],
    )
