"""Policy synthesis: from latency objectives to a concrete policy.

The paper leaves policy choice to the administrator.  In practice the
administrator thinks in *latency budgets* ("trusted clients must stay
under 50 ms; score-10 clients should wait ~1 s"), not difficulty bits.
This module inverts the latency model:

* :func:`difficulty_for_latency` — the difficulty whose chosen latency
  statistic best approximates a target;
* :func:`synthesize_table_policy` — a per-score difficulty table from a
  per-score latency budget (monotonicity repaired, against the client);
* :func:`price_out_policy` — the minimal linear policy that prices out
  a given attacker budget at and above a chosen score threshold.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.attacks.adaptive import AdaptiveAttacker
from repro.core.config import TimingConfig
from repro.policies.linear import LinearPolicy
from repro.policies.table import TablePolicy
from repro.pow.difficulty import expected_attempts, median_attempts

__all__ = [
    "difficulty_for_latency",
    "synthesize_table_policy",
    "price_out_policy",
]


def difficulty_for_latency(
    target_seconds: float,
    timing: TimingConfig | None = None,
    statistic: str = "median",
    max_difficulty: int = 40,
) -> int:
    """The difficulty whose latency statistic is closest to the target.

    ``statistic`` is ``"median"`` (what Figure 2 plots) or ``"mean"``.
    Targets at or below the fixed overhead map to difficulty 0.
    """
    timing = timing or TimingConfig()
    if target_seconds <= 0:
        raise ValueError(f"target must be > 0, got {target_seconds}")
    if statistic not in ("median", "mean"):
        raise ValueError(f"unknown statistic {statistic!r}")
    floor = timing.network_overhead + timing.server_processing
    budget = target_seconds - floor
    if budget <= timing.seconds_per_attempt:
        return 0

    def stat_seconds(d: int) -> float:
        attempts = (
            median_attempts(d) if statistic == "median" else expected_attempts(d)
        )
        return attempts * timing.seconds_per_attempt

    best = 0
    best_error = abs(math.log(stat_seconds(0) / budget)) if budget > 0 else 0.0
    for d in range(1, max_difficulty + 1):
        error = abs(math.log(stat_seconds(d) / budget))
        if error < best_error:
            best, best_error = d, error
    return best


def synthesize_table_policy(
    target_latencies_seconds: Sequence[float],
    timing: TimingConfig | None = None,
    statistic: str = "median",
    name: str | None = None,
) -> TablePolicy:
    """Build a table policy hitting a per-score latency budget.

    ``target_latencies_seconds[i]`` is the budget for integer score
    ``i``.  Non-monotone targets are repaired upward (a worse client
    never gets an easier puzzle), matching the invariant
    :class:`TablePolicy` enforces.
    """
    if len(target_latencies_seconds) < 2:
        raise ValueError("need a target per score (at least two scores)")
    timing = timing or TimingConfig()
    entries: list[int] = []
    for target in target_latencies_seconds:
        entries.append(difficulty_for_latency(target, timing, statistic))
    for i in range(1, len(entries)):
        entries[i] = max(entries[i], entries[i - 1])
    return TablePolicy(entries, name=name or "synthesized")


def price_out_policy(
    attacker: AdaptiveAttacker,
    threshold_score: float = 8.0,
    timing: TimingConfig | None = None,
    name: str | None = None,
) -> LinearPolicy:
    """The gentlest linear policy pricing out ``attacker`` above a score.

    Chooses the smallest base offset such that every score at or above
    ``threshold_score`` is assigned a difficulty strictly beyond the
    attacker's break-even — i.e. a rational adversary scoring there
    walks away.
    """
    if not 0.0 <= threshold_score <= 10.0:
        raise ValueError(
            f"threshold_score must be in [0, 10], got {threshold_score}"
        )
    break_even = attacker.break_even_difficulty()
    needed = break_even + 1
    base = max(0, needed - math.ceil(threshold_score))
    return LinearPolicy(
        base=base,
        name=name or f"price-out(base={base})",
    )
