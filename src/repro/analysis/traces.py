"""Workload and audit-log analytics.

Post-hoc tooling for the two replayable artifacts the library produces:
traces (what was offered) and audit logs (what the issuer decided).

* :func:`summarize_trace` — per-profile offered load, rates, score
  distribution of a workload before it ever hits a server.
* :func:`summarize_audit` — per-client decision statistics from an
  audit log: how hard each address was puzzled, with what outcomes.
* :func:`diff_audits` — decision drift between two audit logs over the
  same workload (e.g. before/after a policy change): per-client mean
  difficulty delta, sorted by impact.
"""

from __future__ import annotations

from typing import Iterable

from repro.bench.results import ExperimentResult
from repro.core.audit import AuditRecord
from repro.metrics.stats import StreamingStats
from repro.traffic.trace import Trace

__all__ = ["summarize_trace", "summarize_audit", "diff_audits"]


def summarize_trace(trace: Trace) -> ExperimentResult:
    """Per-profile composition of a workload."""
    if len(trace) == 0:
        raise ValueError("cannot summarize an empty trace")
    duration = max(trace.duration(), 1e-9)
    rows = []
    for profile, entries in sorted(trace.by_profile().items()):
        scores = StreamingStats()
        clients = set()
        for entry in entries:
            scores.add(entry.true_score)
            clients.add(entry.request.client_ip)
        rows.append(
            [
                profile,
                len(entries),
                len(clients),
                len(entries) / duration,
                scores.mean,
                scores.max,
            ]
        )
    return ExperimentResult(
        experiment_id="trace-summary",
        title=f"Workload summary - {len(trace)} requests over "
        f"{trace.duration():.1f}s",
        headers=[
            "profile", "requests", "clients", "req_per_s",
            "mean_true_score", "max_true_score",
        ],
        rows=rows,
    )


def summarize_audit(records: Iterable[AuditRecord]) -> ExperimentResult:
    """Per-client decision statistics from audit records."""
    per_ip: dict[str, dict[str, StreamingStats]] = {}
    outcomes: dict[str, dict[str, int]] = {}
    for record in records:
        stats = per_ip.setdefault(
            record.client_ip,
            {"difficulty": StreamingStats(), "score": StreamingStats()},
        )
        if record.kind == "challenge":
            stats["difficulty"].add(record.difficulty)
            stats["score"].add(record.score)
        elif record.kind == "response":
            counts = outcomes.setdefault(record.client_ip, {})
            counts[record.status] = counts.get(record.status, 0) + 1

    if not per_ip:
        raise ValueError("no audit records to summarize")
    rows = []
    for ip in sorted(per_ip):
        stats = per_ip[ip]
        counts = outcomes.get(ip, {})
        served = counts.get("served", 0)
        total = sum(counts.values())
        rows.append(
            [
                ip,
                stats["difficulty"].count,
                stats["score"].mean,
                stats["difficulty"].mean,
                stats["difficulty"].max,
                served / total if total else 0.0,
            ]
        )
    return ExperimentResult(
        experiment_id="audit-summary",
        title=f"Audit summary - {len(rows)} clients",
        headers=[
            "client_ip", "challenges", "mean_score",
            "mean_difficulty", "max_difficulty", "served_fraction",
        ],
        rows=rows,
    )


def diff_audits(
    before: Iterable[AuditRecord],
    after: Iterable[AuditRecord],
    top: int = 20,
) -> ExperimentResult:
    """Per-client mean-difficulty drift between two audit logs.

    Positive delta = the client got harder puzzles in ``after``.
    Clients present in only one log are skipped (no comparison basis).
    """

    def mean_difficulties(records: Iterable[AuditRecord]) -> dict[str, float]:
        acc: dict[str, StreamingStats] = {}
        for record in records:
            if record.kind == "challenge":
                acc.setdefault(record.client_ip, StreamingStats()).add(
                    record.difficulty
                )
        return {ip: stats.mean for ip, stats in acc.items()}

    before_means = mean_difficulties(before)
    after_means = mean_difficulties(after)
    shared = sorted(set(before_means) & set(after_means))
    if not shared:
        raise ValueError("the audit logs share no clients")
    deltas = [
        (ip, before_means[ip], after_means[ip], after_means[ip] - before_means[ip])
        for ip in shared
    ]
    deltas.sort(key=lambda row: abs(row[3]), reverse=True)
    rows = [list(row) for row in deltas[:top]]
    return ExperimentResult(
        experiment_id="audit-diff",
        title=(
            f"Audit diff - {len(shared)} shared clients, "
            f"top {min(top, len(shared))} by |delta|"
        ),
        headers=["client_ip", "mean_d_before", "mean_d_after", "delta"],
        rows=rows,
        extra={"shared_clients": len(shared)},
    )
