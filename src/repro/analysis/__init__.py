"""Analytics: closed-form latency math, comparison, policy synthesis."""

from repro.analysis.comparison import compare_policies
from repro.analysis.latency import (
    difficulty_distribution,
    latency_curve,
    latency_quantile,
    mean_latency,
)
from repro.analysis.synthesis import (
    difficulty_for_latency,
    price_out_policy,
    synthesize_table_policy,
)
from repro.analysis.traces import diff_audits, summarize_audit, summarize_trace

__all__ = [
    "difficulty_distribution",
    "mean_latency",
    "latency_quantile",
    "latency_curve",
    "compare_policies",
    "difficulty_for_latency",
    "synthesize_table_policy",
    "price_out_policy",
    "summarize_trace",
    "summarize_audit",
    "diff_audits",
]
