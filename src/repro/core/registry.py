"""Named registries for pluggable framework components.

The paper's framework is modular: operators swap the AI model or the
policy without touching the pipeline.  A :class:`Registry` provides the
lookup layer for that: components register under short names ("dabr",
"policy-1", ...) and configuration files refer to those names.

A registry stores *factories*, not instances, so each framework gets a
fresh component (important for stateful models and replay caches).
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, TypeVar

from repro.core.errors import ComponentNotFoundError, DuplicateComponentError

__all__ = ["Registry"]

T = TypeVar("T")


class Registry(Generic[T]):
    """A name → factory mapping for one kind of component.

    Parameters
    ----------
    kind:
        Human-readable component kind ("policy", "reputation model"),
        used in error messages.
    """

    def __init__(self, kind: str) -> None:
        self._kind = kind
        self._factories: dict[str, Callable[..., T]] = {}

    @property
    def kind(self) -> str:
        """The component kind this registry holds."""
        return self._kind

    def register(
        self,
        name: str,
        factory: Callable[..., T],
        *,
        replace: bool = False,
    ) -> None:
        """Register ``factory`` under ``name``.

        Raises :class:`DuplicateComponentError` unless ``replace=True``.
        """
        if not name:
            raise ValueError("component name must be non-empty")
        if name in self._factories and not replace:
            raise DuplicateComponentError(self._kind, name)
        self._factories[name] = factory

    def decorator(self, name: str) -> Callable[[Callable[..., T]], Callable[..., T]]:
        """Class/function decorator form of :meth:`register`."""

        def wrap(factory: Callable[..., T]) -> Callable[..., T]:
            self.register(name, factory)
            return factory

        return wrap

    def create(self, name: str, /, *args: object, **kwargs: object) -> T:
        """Instantiate the component registered under ``name``."""
        try:
            factory = self._factories[name]
        except KeyError:
            raise ComponentNotFoundError(
                self._kind, name, tuple(sorted(self._factories))
            ) from None
        return factory(*args, **kwargs)

    def names(self) -> tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(self._factories))

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)
