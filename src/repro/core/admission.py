"""Admission control: protecting the challenge path itself.

PoW moves the expensive *resource* behind a puzzle, but issuing a
challenge still costs the server real work (scoring + generation).  A
determined flood can attack that path.  The standard complement is a
cheap stateful pre-filter in front of the framework:

* :class:`TokenBucket` — the classic rate limiter primitive;
* :class:`AdmissionControl` — per-address buckets with an allowlist
  (infrastructure that must never be puzzled or dropped) and a global
  bucket bounding total challenge throughput.

Placement: transport → admission → framework.  The live server and the
WSGI middleware both accept an optional controller.  Dropping at
admission is deliberately crude (no puzzle, no response) — its job is
to bound the *cost* of abuse, not to be fair; fairness is the
framework's job.
"""

from __future__ import annotations

import dataclasses

__all__ = ["TokenBucket", "AdmissionControl", "AdmissionDecision"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``capacity`` burst.

    Time is supplied by the caller, so the same bucket works under the
    simulator's clock and wall-clock alike.
    """

    def __init__(self, rate: float, capacity: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.rate = rate
        self.capacity = capacity
        self._tokens = capacity
        self._updated = 0.0

    @property
    def tokens(self) -> float:
        """Tokens available as of the last :meth:`consume` call."""
        return self._tokens

    def consume(self, now: float, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens at time ``now``; False when starved."""
        if amount <= 0:
            raise ValueError(f"amount must be > 0, got {amount}")
        if now > self._updated:
            self._tokens = min(
                self.capacity, self._tokens + (now - self._updated) * self.rate
            )
            self._updated = now
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False


def _refill_eta(bucket: TokenBucket) -> float:
    """Seconds until ``bucket`` accrues one whole token."""
    return max(0.0, (1.0 - bucket.tokens) / bucket.rate)


@dataclasses.dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """Outcome of one admission check.

    ``retry_after`` is a hint, in seconds, for when the dropping bucket
    will next have a token — transports that can express it (the WSGI
    middleware's ``Retry-After`` header) relay it to the client; 0.0
    for admitted requests.
    """

    admitted: bool
    reason: str
    retry_after: float = 0.0


class AdmissionControl:
    """Per-address and global rate limiting ahead of the framework.

    Parameters
    ----------
    per_ip_rate / per_ip_burst:
        Token rate and burst per client address.
    global_rate / global_burst:
        Bounds on total admitted requests across all clients.
    allowlist:
        Addresses that bypass both buckets entirely.
    max_tracked_ips:
        Bound on the per-address bucket table; the least-recently
        active bucket is evicted at the cap.
    """

    def __init__(
        self,
        per_ip_rate: float = 10.0,
        per_ip_burst: float = 20.0,
        global_rate: float = 2000.0,
        global_burst: float = 4000.0,
        allowlist: set[str] | None = None,
        max_tracked_ips: int = 100_000,
    ) -> None:
        if max_tracked_ips <= 0:
            raise ValueError(
                f"max_tracked_ips must be > 0, got {max_tracked_ips}"
            )
        self.per_ip_rate = per_ip_rate
        self.per_ip_burst = per_ip_burst
        self._global = TokenBucket(global_rate, global_burst)
        self.allowlist = set(allowlist or ())
        self.max_tracked_ips = max_tracked_ips
        self._buckets: dict[str, TokenBucket] = {}
        self._last_seen: dict[str, float] = {}
        self.admitted_count = 0
        self.dropped_count = 0

    def check(self, client_ip: str, now: float) -> AdmissionDecision:
        """Admit or drop one request from ``client_ip`` at ``now``."""
        if client_ip in self.allowlist:
            self.admitted_count += 1
            return AdmissionDecision(True, "allowlisted")

        bucket = self._buckets.get(client_ip)
        if bucket is None:
            if len(self._buckets) >= self.max_tracked_ips:
                victim = min(self._last_seen, key=self._last_seen.get)
                del self._buckets[victim]
                del self._last_seen[victim]
            bucket = TokenBucket(self.per_ip_rate, self.per_ip_burst)
            self._buckets[client_ip] = bucket
        self._last_seen[client_ip] = now

        if not bucket.consume(now):
            self.dropped_count += 1
            return AdmissionDecision(
                False, "per-ip rate exceeded", _refill_eta(bucket)
            )
        if not self._global.consume(now):
            self.dropped_count += 1
            return AdmissionDecision(
                False, "global rate exceeded", _refill_eta(self._global)
            )
        self.admitted_count += 1
        return AdmissionDecision(True, "admitted")

    @property
    def tracked_ips(self) -> int:
        """Number of addresses with live buckets."""
        return len(self._buckets)
