"""Audit log: a durable, replayable record of issuer decisions.

Security middleboxes need to answer "why did client X get a 15-difficult
puzzle at 14:02?" months later.  :class:`AuditLog` subscribes to a
framework's event bus and appends one JSON line per issued challenge and
per terminal response; :class:`AuditRecord` parses them back.

The log is an *observer* — it can never affect the data plane (a write
failure is counted and logged, not raised into request handling).
"""

from __future__ import annotations

import dataclasses
import io
import json
import logging
from typing import Iterator

from repro.core.events import EventBus, EventKind, FrameworkEvent
from repro.core.records import IssuerDecision, ServedResponse

__all__ = ["AuditLog", "AuditRecord", "read_audit_log"]

logger = logging.getLogger(__name__)


@dataclasses.dataclass(frozen=True, slots=True)
class AuditRecord:
    """One parsed audit line.

    ``kind`` is ``"challenge"`` or ``"response"``; the remaining fields
    are populated according to the kind (difficulty/score always, status
    and latency only for responses).
    """

    kind: str
    timestamp: float
    client_ip: str
    resource: str
    score: float
    difficulty: int
    policy: str
    model: str
    status: str = ""
    latency_ms: float = 0.0

    @classmethod
    def from_json(cls, line: str) -> "AuditRecord":
        data = json.loads(line)
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), sort_keys=True)


class AuditLog:
    """Writes audit lines for every challenge and terminal response.

    Parameters
    ----------
    sink:
        A text file-like object (anything with ``write``).  The caller
        owns its lifecycle; :class:`AuditLog` only writes and flushes.
    flush_every:
        Flush the sink after this many records (1 = always).
    """

    def __init__(self, sink: io.TextIOBase, flush_every: int = 1) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self._sink = sink
        self._flush_every = flush_every
        self._since_flush = 0
        self.records_written = 0
        self.write_failures = 0

    def attach(self, bus: EventBus) -> "AuditLog":
        """Subscribe to the relevant pipeline events; returns self."""
        bus.subscribe(
            self._on_event,
            kinds=[EventKind.PUZZLE_ISSUED, EventKind.RESPONSE_SERVED],
        )
        return self

    # ------------------------------------------------------------------
    def _on_event(self, event: FrameworkEvent) -> None:
        try:
            record = self._record_for(event)
        except Exception:  # noqa: BLE001 - observers must not throw
            logger.exception("audit: could not build record for %r", event.kind)
            self.write_failures += 1
            return
        if record is None:
            return
        try:
            self._sink.write(record.to_json() + "\n")
            self.records_written += 1
            self._since_flush += 1
            if self._since_flush >= self._flush_every:
                self._sink.flush()
                self._since_flush = 0
        except Exception:  # noqa: BLE001
            logger.exception("audit: write failed")
            self.write_failures += 1

    def _record_for(self, event: FrameworkEvent) -> AuditRecord | None:
        if event.kind is EventKind.PUZZLE_ISSUED:
            decision = event.payload.get("decision")
            if not isinstance(decision, IssuerDecision):
                return None
            return AuditRecord(
                kind="challenge",
                timestamp=event.timestamp,
                client_ip=decision.request.client_ip,
                resource=decision.request.resource,
                score=decision.reputation_score,
                difficulty=decision.difficulty,
                policy=decision.policy_name,
                model=decision.model_name,
            )
        if event.kind is EventKind.RESPONSE_SERVED:
            response = event.payload.get("response")
            if not isinstance(response, ServedResponse):
                return None
            decision = response.decision
            return AuditRecord(
                kind="response",
                timestamp=event.timestamp,
                client_ip=decision.request.client_ip,
                resource=decision.request.resource,
                score=decision.reputation_score,
                difficulty=decision.difficulty,
                policy=decision.policy_name,
                model=decision.model_name,
                status=response.status.value,
                latency_ms=response.latency_ms,
            )
        return None


def read_audit_log(path) -> Iterator[AuditRecord]:
    """Stream parsed records from an audit file written by :class:`AuditLog`."""
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield AuditRecord.from_json(line)
