"""Structured event hooks for observing the framework pipeline.

The framework emits one event per pipeline stage (scored, policy applied,
puzzle issued, solution verified, response served/denied).  Subscribers —
metrics collectors, loggers, tests — register callbacks on an
:class:`EventBus`.  Emission is synchronous and exceptions in subscribers
are isolated so a broken observer cannot take down the data plane.
"""

from __future__ import annotations

import dataclasses
import enum
import logging
from typing import Any, Callable, Iterable

__all__ = ["EventKind", "FrameworkEvent", "EventBus"]

logger = logging.getLogger(__name__)


class EventKind(enum.Enum):
    """Pipeline stages at which the framework emits events."""

    REQUEST_RECEIVED = "request_received"
    REQUEST_SHED = "request_shed"
    SCORED = "scored"
    POLICY_APPLIED = "policy_applied"
    PUZZLE_ISSUED = "puzzle_issued"
    SOLUTION_RECEIVED = "solution_received"
    SOLUTION_VERIFIED = "solution_verified"
    SOLUTION_REJECTED = "solution_rejected"
    RESPONSE_SERVED = "response_served"


@dataclasses.dataclass(frozen=True, slots=True)
class FrameworkEvent:
    """One observation of the pipeline.

    ``payload`` carries stage-specific data (the request, score,
    difficulty, puzzle, verification outcome, ...) keyed by short names;
    it is intentionally a plain dict so observers stay decoupled from
    internal types.
    """

    kind: EventKind
    timestamp: float
    payload: dict[str, Any]


Subscriber = Callable[[FrameworkEvent], None]


class EventBus:
    """Synchronous fan-out of :class:`FrameworkEvent` to subscribers.

    Subscribers may register for specific kinds or for all events.
    A subscriber raising an exception is logged and skipped; the
    remaining subscribers still run.
    """

    def __init__(self) -> None:
        self._by_kind: dict[EventKind, list[Subscriber]] = {}
        self._global: list[Subscriber] = []

    def subscribe(
        self,
        subscriber: Subscriber,
        kinds: Iterable[EventKind] | None = None,
    ) -> None:
        """Register ``subscriber`` for ``kinds`` (or every kind if None)."""
        if kinds is None:
            self._global.append(subscriber)
            return
        for kind in kinds:
            self._by_kind.setdefault(kind, []).append(subscriber)

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Remove ``subscriber`` from all registrations (idempotent).

        Equality (not identity) comparison, so bound methods — which
        are recreated on each attribute access — unsubscribe cleanly.
        """
        self._global = [s for s in self._global if s != subscriber]
        for kind, subs in self._by_kind.items():
            self._by_kind[kind] = [s for s in subs if s != subscriber]

    def has_subscribers(self, kind: EventKind) -> bool:
        """True when an event of ``kind`` would reach at least one subscriber.

        The framework's batch path checks this once per pipeline stage
        to skip building per-request events nobody would see.
        """
        return bool(self._global) or bool(self._by_kind.get(kind))

    def emit(self, kind: EventKind, timestamp: float, **payload: Any) -> None:
        """Build and deliver an event to all matching subscribers.

        Returns without building the event when nothing is subscribed —
        emission sits on the per-request hot path, so the no-observer
        case must cost a dictionary lookup, not an allocation.
        """
        by_kind = self._by_kind.get(kind)
        if self._global:
            targets = self._global + by_kind if by_kind else list(self._global)
        elif by_kind:
            targets = list(by_kind)
        else:
            return
        event = FrameworkEvent(kind=kind, timestamp=timestamp, payload=payload)
        for subscriber in targets:
            try:
                subscriber(event)
            except Exception:  # noqa: BLE001 - observer isolation by design
                logger.exception("event subscriber %r failed", subscriber)

    def subscriber_count(self, kind: EventKind | None = None) -> int:
        """Number of subscribers that would see an event of ``kind``."""
        if kind is None:
            per_kind = sum(len(subs) for subs in self._by_kind.values())
            return len(self._global) + per_kind
        return len(self._global) + len(self._by_kind.get(kind, []))
