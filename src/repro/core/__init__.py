"""Core framework: the adaptive issuer pipeline and its contracts."""

from repro.core.admission import (
    AdmissionControl,
    AdmissionDecision,
    TokenBucket,
)
from repro.core.audit import AuditLog, AuditRecord, read_audit_log
from repro.core.config import FrameworkConfig, PowConfig, TimingConfig
from repro.core.errors import (
    ConfigError,
    NonceSpaceExhaustedError,
    PolicyDomainError,
    PolicyError,
    PolicySpecError,
    ProtocolError,
    PuzzleError,
    PuzzleExpiredError,
    PuzzleIntegrityError,
    ReplayedSolutionError,
    ReproError,
    ReputationError,
    SimulationError,
    SolutionInvalidError,
)
from repro.core.events import EventBus, EventKind, FrameworkEvent
from repro.core.framework import AIPoWFramework, Challenge
from repro.core.interfaces import (
    Policy,
    PuzzleIssuer,
    PuzzleSolver,
    PuzzleVerifier,
    ReputationModel,
)
from repro.core.records import (
    ClientRequest,
    IssuerDecision,
    ResponseStatus,
    ServedResponse,
)
from repro.core.registry import Registry
from repro.core.spec import FrameworkSpec

__all__ = [
    "AIPoWFramework",
    "Challenge",
    "FrameworkSpec",
    "AdmissionControl",
    "AdmissionDecision",
    "TokenBucket",
    "AuditLog",
    "AuditRecord",
    "read_audit_log",
    "FrameworkConfig",
    "PowConfig",
    "TimingConfig",
    "ClientRequest",
    "IssuerDecision",
    "ResponseStatus",
    "ServedResponse",
    "EventBus",
    "EventKind",
    "FrameworkEvent",
    "Registry",
    "Policy",
    "ReputationModel",
    "PuzzleIssuer",
    "PuzzleSolver",
    "PuzzleVerifier",
    "ReproError",
    "ConfigError",
    "ReputationError",
    "PolicyError",
    "PolicyDomainError",
    "PolicySpecError",
    "PuzzleError",
    "PuzzleIntegrityError",
    "PuzzleExpiredError",
    "ReplayedSolutionError",
    "SolutionInvalidError",
    "NonceSpaceExhaustedError",
    "SimulationError",
    "ProtocolError",
]
