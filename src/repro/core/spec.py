"""Declarative framework construction: the same pipeline, anywhere.

A multi-worker gateway needs to build *the same* framework in N
processes — and a spawn-started worker cannot inherit live objects, so
the recipe itself must cross the process boundary.
:class:`FrameworkSpec` is that recipe: a frozen, picklable, JSON-safe
description of the paper pipeline (corpus → fitted DAbR → optional
score cache → optional behavioural feedback → policy) with a
:meth:`build` that wires every stateful component onto one
:class:`~repro.state.AdmissionStateStore`.

Everything in the recipe is deterministic — the corpus is seeded, the
DAbR fit is closed-form, policies come from the registry — so two
workers building the same spec hold bit-identical pipelines, which is
what makes sharded admission decisions equal to the single-process
path.
"""

from __future__ import annotations

import dataclasses

from repro.core.framework import AIPoWFramework
from repro.state import AdmissionStateStore, InMemoryStateStore

__all__ = ["FrameworkSpec"]


@dataclasses.dataclass(frozen=True)
class FrameworkSpec:
    """Recipe for one admission pipeline.

    Parameters
    ----------
    policy:
        Policy registry name (``policy-1``/``policy-2``/...).
    corpus_size / corpus_seed:
        Synthetic threat-intelligence corpus the DAbR model is fitted
        on; seeded, so every build fits the identical model.
    feedback:
        Wrap the model with behavioural feedback
        (:class:`~repro.reputation.feedback.FeedbackReputationModel`),
        attached to the framework's event bus so outcomes feed back
        automatically.
    cache_ttl:
        Per-IP score-cache TTL in seconds; ``None`` disables caching.
    cache_max_entries / max_tracked_ips:
        Capacity bounds of the cache and the feedback table.
    feedback_half_life:
        Offset decay half-life in seconds; ``inf`` freezes offsets,
        which makes admission decisions independent of wall-clock
        timing — what the shard-parity tests rely on.
    """

    policy: str = "policy-2"
    corpus_size: int = 4000
    corpus_seed: int = 7
    feedback: bool = True
    cache_ttl: float | None = 3600.0
    cache_max_entries: int = 100_000
    max_tracked_ips: int = 100_000
    feedback_half_life: float = 600.0

    def build(
        self,
        store: AdmissionStateStore | None = None,
    ) -> AIPoWFramework:
        """Construct the pipeline, all state behind ``store``.

        The returned framework's ``snapshot()`` therefore covers the
        replay cache plus (when enabled) the score cache and the
        behavioural reputation table.
        """
        from repro.policies import POLICY_REGISTRY
        from repro.reputation.caching import CachedModel
        from repro.reputation.dabr import DAbRModel
        from repro.reputation.dataset import generate_corpus
        from repro.reputation.feedback import (
            FeedbackConfig,
            FeedbackReputationModel,
        )

        store = store if store is not None else InMemoryStateStore()
        train, _ = generate_corpus(
            size=self.corpus_size, seed=self.corpus_seed
        ).split()
        model = DAbRModel().fit(train)
        if self.cache_ttl is not None:
            model = CachedModel(
                model,
                ttl=self.cache_ttl,
                max_entries=self.cache_max_entries,
                store=store,
            )
        feedback = None
        if self.feedback:
            model = feedback = FeedbackReputationModel(
                model,
                FeedbackConfig(half_life=self.feedback_half_life),
                max_tracked_ips=self.max_tracked_ips,
                store=store,
            )
        framework = AIPoWFramework(
            model, POLICY_REGISTRY.create(self.policy), store=store
        )
        if feedback is not None:
            feedback.attach(framework.events)
        return framework
