"""Immutable record types that flow through the framework pipeline.

The framework's data plane is deliberately plain: a :class:`ClientRequest`
enters, an :class:`IssuerDecision` captures what the AI model and policy
decided for it, and a :class:`ServedResponse` records the outcome.  All
three are frozen dataclasses so that pipeline hooks and metrics collectors
can hold references without defensive copying.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Mapping

__all__ = [
    "ClientRequest",
    "DecisionRecord",
    "IssuerDecision",
    "ResponseStatus",
    "ServedResponse",
]


@dataclasses.dataclass(frozen=True, slots=True)
class ClientRequest:
    """A single inbound HTTP-style request, as seen by the server.

    Parameters
    ----------
    client_ip:
        Dotted-quad source address of the request.  Used both as the key
        for reputation lookups and as part of the puzzle's immutable
        prefix (step 4 of the paper's architecture).
    resource:
        The resource path being requested, e.g. ``"/index.html"``.
    timestamp:
        Arrival time in seconds.  In simulation this is simulated time;
        in the live server it is ``time.time()``.
    features:
        IP-traffic feature mapping consumed by the AI model.  Keys must
        match the feature schema the model was fitted with.
    request_id:
        Opaque identifier assigned by the transport, unique per request.
    """

    client_ip: str
    resource: str
    timestamp: float
    features: Mapping[str, float]
    request_id: str = ""

    def __post_init__(self) -> None:
        if not self.client_ip:
            raise ValueError("client_ip must be non-empty")
        if not self.resource.startswith("/"):
            raise ValueError(f"resource must start with '/': {self.resource!r}")


@dataclasses.dataclass(frozen=True, slots=True)
class IssuerDecision:
    """What the adaptive issuer decided for one request.

    Captures the full reputation → policy → difficulty chain so that
    metrics, audits, and tests can reconstruct why a client received the
    puzzle it did.
    """

    request: ClientRequest
    reputation_score: float
    difficulty: int
    policy_name: str
    model_name: str

    def __post_init__(self) -> None:
        if self.difficulty < 0:
            raise ValueError(f"difficulty must be >= 0, got {self.difficulty}")


@dataclasses.dataclass(frozen=True, slots=True)
class DecisionRecord:
    """One admission decision, flattened for traces and diffing.

    The record/replay subsystem persists these alongside the requests
    that produced them (trace schema v2) and compares two decision
    streams field-by-field.  ``verdict`` is ``"admit"`` (a puzzle was
    issued), ``"shed"`` (the gateway dropped the request under load) or
    ``"error"`` (admission raised); ``detail`` carries the shed reason
    or error message.

    ``puzzle_seed`` is informational only: the production seed source is
    a CSPRNG, so seeds (and therefore HMAC tags) legitimately differ
    between a recording and its replay.  :meth:`canonical` returns the
    deterministic field subset — everything a correct replay must
    reproduce bit-identically.
    """

    request_id: str
    client_ip: str
    verdict: str
    score: float = 0.0
    difficulty: int = -1
    policy_name: str = ""
    model_name: str = ""
    puzzle_algorithm: str = ""
    puzzle_seed: str = ""
    detail: str = ""

    _VERDICTS = ("admit", "shed", "error")

    def __post_init__(self) -> None:
        if self.verdict not in self._VERDICTS:
            raise ValueError(
                f"verdict must be one of {self._VERDICTS}, "
                f"got {self.verdict!r}"
            )

    def canonical(self) -> dict:
        """The deterministic fields a faithful replay must reproduce."""
        return {
            "request_id": self.request_id,
            "client_ip": self.client_ip,
            "verdict": self.verdict,
            "score": self.score,
            "difficulty": self.difficulty,
            "policy_name": self.policy_name,
            "model_name": self.model_name,
            "puzzle_algorithm": self.puzzle_algorithm,
            "detail": self.detail,
        }

    def to_mapping(self) -> dict:
        """JSON-safe mapping (includes the non-deterministic seed)."""
        data = self.canonical()
        data["puzzle_seed"] = self.puzzle_seed
        return data

    @classmethod
    def from_mapping(cls, data: Mapping) -> "DecisionRecord":
        """Rebuild from :meth:`to_mapping` output."""
        return cls(
            request_id=str(data["request_id"]),
            client_ip=str(data["client_ip"]),
            verdict=str(data["verdict"]),
            score=float(data.get("score", 0.0)),
            difficulty=int(data.get("difficulty", -1)),
            policy_name=str(data.get("policy_name", "")),
            model_name=str(data.get("model_name", "")),
            puzzle_algorithm=str(data.get("puzzle_algorithm", "")),
            puzzle_seed=str(data.get("puzzle_seed", "")),
            detail=str(data.get("detail", "")),
        )


class ResponseStatus(enum.Enum):
    """Terminal status of one request's journey through the framework."""

    SERVED = "served"
    """The client solved its puzzle and received the resource."""

    REJECTED = "rejected"
    """The solution failed verification (wrong nonce, tampering)."""

    EXPIRED = "expired"
    """The puzzle's TTL elapsed before a valid solution arrived."""

    REPLAYED = "replayed"
    """The solution was valid but had already been redeemed."""

    ABANDONED = "abandoned"
    """The client gave up (e.g. nonce exhaustion or attacker timeout)."""


@dataclasses.dataclass(frozen=True, slots=True)
class ServedResponse:
    """The outcome of a request, with end-to-end timing.

    ``latency`` is the paper's headline metric: elapsed time between the
    client issuing the request and receiving the server's final response,
    including puzzle solve time.
    """

    decision: IssuerDecision
    status: ResponseStatus
    latency: float
    solve_attempts: int = 0
    body: str = ""

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.solve_attempts < 0:
            raise ValueError(
                f"solve_attempts must be >= 0, got {self.solve_attempts}"
            )

    @property
    def served(self) -> bool:
        """True when the client received the requested resource."""
        return self.status is ResponseStatus.SERVED

    @property
    def latency_ms(self) -> float:
        """Latency converted to milliseconds (the unit used in Figure 2)."""
        return self.latency * 1000.0
