"""Immutable record types that flow through the framework pipeline.

The framework's data plane is deliberately plain: a :class:`ClientRequest`
enters, an :class:`IssuerDecision` captures what the AI model and policy
decided for it, and a :class:`ServedResponse` records the outcome.  All
three are frozen dataclasses so that pipeline hooks and metrics collectors
can hold references without defensive copying.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Mapping

__all__ = [
    "ClientRequest",
    "IssuerDecision",
    "ResponseStatus",
    "ServedResponse",
]


@dataclasses.dataclass(frozen=True, slots=True)
class ClientRequest:
    """A single inbound HTTP-style request, as seen by the server.

    Parameters
    ----------
    client_ip:
        Dotted-quad source address of the request.  Used both as the key
        for reputation lookups and as part of the puzzle's immutable
        prefix (step 4 of the paper's architecture).
    resource:
        The resource path being requested, e.g. ``"/index.html"``.
    timestamp:
        Arrival time in seconds.  In simulation this is simulated time;
        in the live server it is ``time.time()``.
    features:
        IP-traffic feature mapping consumed by the AI model.  Keys must
        match the feature schema the model was fitted with.
    request_id:
        Opaque identifier assigned by the transport, unique per request.
    """

    client_ip: str
    resource: str
    timestamp: float
    features: Mapping[str, float]
    request_id: str = ""

    def __post_init__(self) -> None:
        if not self.client_ip:
            raise ValueError("client_ip must be non-empty")
        if not self.resource.startswith("/"):
            raise ValueError(f"resource must start with '/': {self.resource!r}")


@dataclasses.dataclass(frozen=True, slots=True)
class IssuerDecision:
    """What the adaptive issuer decided for one request.

    Captures the full reputation → policy → difficulty chain so that
    metrics, audits, and tests can reconstruct why a client received the
    puzzle it did.
    """

    request: ClientRequest
    reputation_score: float
    difficulty: int
    policy_name: str
    model_name: str

    def __post_init__(self) -> None:
        if self.difficulty < 0:
            raise ValueError(f"difficulty must be >= 0, got {self.difficulty}")


class ResponseStatus(enum.Enum):
    """Terminal status of one request's journey through the framework."""

    SERVED = "served"
    """The client solved its puzzle and received the resource."""

    REJECTED = "rejected"
    """The solution failed verification (wrong nonce, tampering)."""

    EXPIRED = "expired"
    """The puzzle's TTL elapsed before a valid solution arrived."""

    REPLAYED = "replayed"
    """The solution was valid but had already been redeemed."""

    ABANDONED = "abandoned"
    """The client gave up (e.g. nonce exhaustion or attacker timeout)."""


@dataclasses.dataclass(frozen=True, slots=True)
class ServedResponse:
    """The outcome of a request, with end-to-end timing.

    ``latency`` is the paper's headline metric: elapsed time between the
    client issuing the request and receiving the server's final response,
    including puzzle solve time.
    """

    decision: IssuerDecision
    status: ResponseStatus
    latency: float
    solve_attempts: int = 0
    body: str = ""

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.solve_attempts < 0:
            raise ValueError(
                f"solve_attempts must be >= 0, got {self.solve_attempts}"
            )

    @property
    def served(self) -> bool:
        """True when the client received the requested resource."""
        return self.status is ResponseStatus.SERVED

    @property
    def latency_ms(self) -> float:
        """Latency converted to milliseconds (the unit used in Figure 2)."""
        return self.latency * 1000.0
