"""Validated configuration for the framework and its substrates.

Configuration is plain data: frozen dataclasses with explicit validation
in ``__post_init__`` and ``from_mapping``/``to_mapping`` round-trips so
configs can live in JSON files next to deployment manifests.  There is no
global state; every component receives its config explicitly.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping

from repro.core.errors import ConfigError

__all__ = [
    "PowConfig",
    "TimingConfig",
    "FrameworkConfig",
]

#: Reputation scores live on this closed interval throughout the library.
SCORE_MIN = 0.0
SCORE_MAX = 10.0

#: The paper's solver appends a 32-bit string to the immutable prefix.
DEFAULT_NONCE_BITS = 32


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclasses.dataclass(frozen=True, slots=True)
class PowConfig:
    """Parameters of the PoW puzzle subsystem.

    Parameters
    ----------
    secret_key:
        Server-side HMAC key authenticating issued puzzles, so the
        verifier can stay stateless about outstanding puzzles.
    ttl:
        Puzzle time-to-live in seconds; solutions arriving later are
        rejected as expired (mitigates hoarding).
    nonce_bits:
        Width of the client-modifiable nonce; the paper specifies 32.
    max_difficulty:
        Upper clamp applied to any policy output, protecting clients
        from unsolvable puzzles if a policy is misconfigured.
    hash_algorithm:
        Name of the :mod:`hashlib` digest used by solver and verifier.
    """

    secret_key: bytes = b"repro-framework-demo-key"
    ttl: float = 300.0
    nonce_bits: int = DEFAULT_NONCE_BITS
    max_difficulty: int = 40
    hash_algorithm: str = "sha256"

    def __post_init__(self) -> None:
        _require(len(self.secret_key) > 0, "secret_key must be non-empty")
        _require(self.ttl > 0, f"ttl must be > 0, got {self.ttl}")
        _require(
            1 <= self.nonce_bits <= 64,
            f"nonce_bits must be in [1, 64], got {self.nonce_bits}",
        )
        _require(
            0 < self.max_difficulty <= 256,
            f"max_difficulty must be in (0, 256], got {self.max_difficulty}",
        )
        _require(
            self.hash_algorithm in ("sha256", "sha1", "sha512", "blake2b"),
            f"unsupported hash algorithm {self.hash_algorithm!r}",
        )

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "PowConfig":
        """Build a :class:`PowConfig` from a JSON-style mapping."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown PowConfig keys: {sorted(unknown)}")
        kwargs = dict(data)
        if isinstance(kwargs.get("secret_key"), str):
            kwargs["secret_key"] = kwargs["secret_key"].encode("utf-8")
        return cls(**kwargs)

    def to_mapping(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible mapping."""
        return {
            "secret_key": self.secret_key.decode("utf-8", "replace"),
            "ttl": self.ttl,
            "nonce_bits": self.nonce_bits,
            "max_difficulty": self.max_difficulty,
            "hash_algorithm": self.hash_algorithm,
        }


@dataclasses.dataclass(frozen=True, slots=True)
class TimingConfig:
    """Calibrated timing constants for the simulated environment.

    The defaults reproduce the paper's reported numbers: a 1-difficult
    puzzle costs ~31 ms on average, dominated by the fixed network and
    framework overhead (see DESIGN.md §2 for the calibration argument).

    Parameters
    ----------
    network_overhead:
        Fixed round-trip plus framework bookkeeping cost per request,
        in seconds.
    seconds_per_attempt:
        Client-side cost of a single hash evaluation.
    server_processing:
        Server-side cost of scoring, policy lookup, puzzle generation
        and verification, in seconds.
    """

    network_overhead: float = 0.030
    seconds_per_attempt: float = 27e-6
    server_processing: float = 0.0005

    def __post_init__(self) -> None:
        _require(
            self.network_overhead >= 0,
            f"network_overhead must be >= 0, got {self.network_overhead}",
        )
        _require(
            self.seconds_per_attempt > 0,
            f"seconds_per_attempt must be > 0, got {self.seconds_per_attempt}",
        )
        _require(
            self.server_processing >= 0,
            f"server_processing must be >= 0, got {self.server_processing}",
        )

    def expected_latency(self, difficulty: int) -> float:
        """Mean end-to-end latency for a ``difficulty``-bit puzzle.

        The number of hash attempts to find a ``d``-bit zero prefix is
        geometric with success probability ``2**-d``, so its mean is
        ``2**d`` attempts.
        """
        expected_attempts = float(2**difficulty)
        return (
            self.network_overhead
            + self.server_processing
            + expected_attempts * self.seconds_per_attempt
        )

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "TimingConfig":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown TimingConfig keys: {sorted(unknown)}")
        return cls(**data)

    def to_mapping(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True, slots=True)
class FrameworkConfig:
    """Top-level framework configuration.

    Parameters
    ----------
    pow:
        PoW subsystem parameters.
    timing:
        Simulated-environment timing constants.
    policy_seed:
        Seed for the RNG handed to randomized policies (Policy 3).
    min_difficulty:
        Lower clamp on policy outputs.  Zero difficulty means "no
        puzzle": every hash trivially has a 0-bit zero prefix.
    """

    pow: PowConfig = dataclasses.field(default_factory=PowConfig)
    timing: TimingConfig = dataclasses.field(default_factory=TimingConfig)
    policy_seed: int = 0xD5A
    min_difficulty: int = 0

    def __post_init__(self) -> None:
        _require(
            0 <= self.min_difficulty <= self.pow.max_difficulty,
            "min_difficulty must lie in [0, pow.max_difficulty], got "
            f"{self.min_difficulty}",
        )

    def clamp_difficulty(self, difficulty: int) -> int:
        """Clamp a raw policy output into the configured difficulty range."""
        return max(self.min_difficulty, min(self.pow.max_difficulty, difficulty))

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "FrameworkConfig":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown FrameworkConfig keys: {sorted(unknown)}")
        kwargs: dict[str, Any] = dict(data)
        if "pow" in kwargs and isinstance(kwargs["pow"], Mapping):
            kwargs["pow"] = PowConfig.from_mapping(kwargs["pow"])
        if "timing" in kwargs and isinstance(kwargs["timing"], Mapping):
            kwargs["timing"] = TimingConfig.from_mapping(kwargs["timing"])
        return cls(**kwargs)

    def to_mapping(self) -> dict[str, Any]:
        return {
            "pow": self.pow.to_mapping(),
            "timing": self.timing.to_mapping(),
            "policy_seed": self.policy_seed,
            "min_difficulty": self.min_difficulty,
        }
