"""Exception hierarchy for the AI-assisted PoW framework.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at the framework boundary.  The
subsystem-specific subclasses make failure modes explicit: a verifier
rejecting a forged puzzle raises :class:`PuzzleIntegrityError`, a policy
given an out-of-range reputation score raises :class:`PolicyDomainError`,
and so on.  Errors carry enough context (offending values, limits) to be
actionable in logs without needing a debugger.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "RegistryError",
    "ComponentNotFoundError",
    "DuplicateComponentError",
    "ReputationError",
    "FeatureSchemaError",
    "ModelNotFittedError",
    "PolicyError",
    "PolicyDomainError",
    "PolicySpecError",
    "PuzzleError",
    "PuzzleIntegrityError",
    "PuzzleExpiredError",
    "ReplayedSolutionError",
    "SolutionInvalidError",
    "NonceSpaceExhaustedError",
    "SimulationError",
    "ProtocolError",
    "TraceFormatError",
]


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or out of range."""


class RegistryError(ReproError):
    """Base class for component-registry failures."""


class ComponentNotFoundError(RegistryError):
    """A component name was looked up but never registered."""

    def __init__(self, kind: str, name: str, available: tuple[str, ...] = ()):
        self.kind = kind
        self.name = name
        self.available = available
        hint = f"; available: {', '.join(available)}" if available else ""
        super().__init__(f"no {kind} registered under {name!r}{hint}")


class DuplicateComponentError(RegistryError):
    """A component name was registered twice without ``replace=True``."""

    def __init__(self, kind: str, name: str):
        self.kind = kind
        self.name = name
        super().__init__(f"{kind} {name!r} is already registered")


class ReputationError(ReproError):
    """Base class for reputation-subsystem failures."""


class FeatureSchemaError(ReputationError):
    """A feature vector does not conform to the declared schema."""


class ModelNotFittedError(ReputationError):
    """A reputation model was queried before :meth:`fit` was called."""


class PolicyError(ReproError):
    """Base class for policy-engine failures."""


class PolicyDomainError(PolicyError):
    """A reputation score lies outside the policy's declared domain."""

    def __init__(self, score: float, low: float, high: float):
        self.score = score
        self.low = low
        self.high = high
        super().__init__(
            f"reputation score {score!r} outside policy domain [{low}, {high}]"
        )


class PolicySpecError(PolicyError):
    """A declarative policy specification failed to parse or validate."""


class PuzzleError(ReproError):
    """Base class for PoW-subsystem failures."""


class PuzzleIntegrityError(PuzzleError):
    """The puzzle's authentication tag does not match its contents."""


class PuzzleExpiredError(PuzzleError):
    """The puzzle's time-to-live elapsed before a solution arrived."""

    def __init__(self, age: float, ttl: float):
        self.age = age
        self.ttl = ttl
        super().__init__(f"puzzle expired: age {age:.3f}s exceeds ttl {ttl:.3f}s")


class ReplayedSolutionError(PuzzleError):
    """A previously-accepted solution was submitted again."""


class SolutionInvalidError(PuzzleError):
    """The submitted nonce does not meet the puzzle's difficulty target."""


class NonceSpaceExhaustedError(PuzzleError):
    """The solver exhausted its nonce space without finding a solution."""

    def __init__(self, attempts: int, difficulty: int):
        self.attempts = attempts
        self.difficulty = difficulty
        super().__init__(
            f"nonce space exhausted after {attempts} attempts "
            f"at difficulty {difficulty}"
        )


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class ProtocolError(ReproError):
    """A live-server protocol frame was malformed or out of sequence."""


class TraceFormatError(ReproError):
    """A trace file is corrupt, duplicated, or of an unknown version.

    Raised by the v2 trace loader with the offending line number, so a
    truncated or hand-edited golden trace fails loudly instead of
    silently replaying a subset of the workload.
    """

    def __init__(self, message: str, *, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
