"""Protocols for the framework's pluggable components.

The paper stresses that "the framework is modular and each component can
be customized".  These :class:`typing.Protocol` definitions are the
contract each replaceable part must satisfy:

* :class:`ReputationModel` — the AI model producing a score in [0, 10];
* :class:`Policy` — the score → difficulty mapping;
* :class:`PuzzleIssuer` — generates authenticated puzzles;
* :class:`PuzzleVerifier` — checks returned solutions;
* :class:`PuzzleSolver` — the client-side grinder.

Concrete implementations live in :mod:`repro.reputation`,
:mod:`repro.policies` and :mod:`repro.pow`; the framework in
:mod:`repro.core.framework` composes them without caring which concrete
classes were chosen.  All protocols are ``runtime_checkable`` so tests and
the registry can sanity-check third-party plugins with ``isinstance``.
"""

from __future__ import annotations

import random
from typing import Mapping, Protocol, runtime_checkable

from repro.core.records import ClientRequest

__all__ = [
    "ReputationModel",
    "Policy",
    "PuzzleIssuer",
    "PuzzleVerifier",
    "PuzzleSolver",
    "SupportsName",
    "SupportsScoreBatch",
    "SupportsDifficultyBatch",
]


@runtime_checkable
class SupportsName(Protocol):
    """Anything exposing a stable human-readable ``name`` attribute."""

    @property
    def name(self) -> str: ...


@runtime_checkable
class ReputationModel(Protocol):
    """The AI subsystem: maps request features to a reputation score.

    Scores follow the paper's convention: a float in ``[0, 10]`` where
    *higher means less trustworthy*.  Implementations must be
    deterministic for a fixed fitted state and input features.
    """

    @property
    def name(self) -> str: ...

    def score(self, features: Mapping[str, float]) -> float:
        """Return the reputation score in [0, 10] for one feature vector."""
        ...

    def score_request(self, request: ClientRequest) -> float:
        """Convenience wrapper scoring a :class:`ClientRequest`."""
        ...


@runtime_checkable
class Policy(Protocol):
    """Maps a reputation score to a puzzle difficulty (leading zero bits).

    Implementations may be randomized (the paper's Policy 3 draws the
    difficulty from an interval); they receive the RNG explicitly so runs
    stay reproducible.
    """

    @property
    def name(self) -> str: ...

    def difficulty_for(self, score: float, rng: random.Random) -> int:
        """Return the puzzle difficulty for ``score`` ∈ [0, 10]."""
        ...


@runtime_checkable
class SupportsScoreBatch(Protocol):
    """Optional batch extension of :class:`ReputationModel`.

    Models may expose ``score_batch`` (raw feature matrix → score
    vector) and ``score_requests`` (request sequence → score vector).
    The framework's :meth:`~repro.core.framework.AIPoWFramework.challenge_batch`
    uses them when present and falls back to looping the scalar methods
    otherwise, so the batch API stays opt-in for third-party models.
    Deliberately separate from :class:`ReputationModel` so existing
    scalar-only implementations keep passing ``isinstance`` checks.
    """

    def score_requests(self, requests):
        """Vector of scores, aligned with ``requests``."""
        ...


@runtime_checkable
class SupportsDifficultyBatch(Protocol):
    """Optional batch extension of :class:`Policy`.

    Policies may expose ``difficulty_batch(scores, rng)`` returning an
    integer difficulty per score, consuming ``rng`` in array order so
    randomized policies stay reproducible and equivalent to the scalar
    loop.  The framework falls back to looping ``difficulty_for`` for
    policies without it.
    """

    def difficulty_batch(self, scores, rng: random.Random):
        """Vector of difficulties, aligned with ``scores``."""
        ...


@runtime_checkable
class PuzzleIssuer(Protocol):
    """Generates PoW puzzles carrying timestamp, unique seed, difficulty."""

    def issue(self, client_ip: str, difficulty: int, now: float):
        """Create a puzzle bound to ``client_ip`` at time ``now``."""
        ...


@runtime_checkable
class PuzzleVerifier(Protocol):
    """Lightweight server-side check of a returned puzzle solution."""

    def verify(self, puzzle, solution, client_ip: str, now: float):
        """Validate ``solution``; raise a ``PuzzleError`` subclass if bad."""
        ...


@runtime_checkable
class PuzzleSolver(Protocol):
    """Client-side component that grinds nonces until the target is met."""

    def solve(self, puzzle, client_ip: str):
        """Return a solution whose hash has the required zero prefix."""
        ...
