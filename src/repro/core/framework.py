"""The adaptive issuer: the paper's core contribution, as a library.

:class:`AIPoWFramework` wires together the five components of Figure 1 of
the paper: the AI model, the policy, puzzle generation, (client-side)
puzzle solving, and puzzle verification.  The server-side flow is split
into two calls mirroring the two network round-trips:

1. :meth:`challenge` — steps (1)–(4): the request arrives, the AI model
   scores it, the policy maps the score to a difficulty, and an
   authenticated puzzle is issued.
2. :meth:`redeem` — steps (5)–(7): the client's solution is verified and,
   if valid, the resource is served.

:meth:`process` runs the whole exchange in-process with a supplied solver
and clock — the backbone of the examples and of the wall-clock benches.
"""

from __future__ import annotations

import random
import time
from typing import Callable

from repro.core.config import FrameworkConfig
from repro.core.errors import (
    PuzzleError,
    PuzzleExpiredError,
    ReplayedSolutionError,
    SolutionInvalidError,
)
from repro.core.events import EventBus, EventKind
from repro.core.interfaces import Policy, PuzzleSolver, ReputationModel
from repro.core.records import (
    ClientRequest,
    IssuerDecision,
    ResponseStatus,
    ServedResponse,
)
from repro.pow.generator import PuzzleGenerator
from repro.pow.puzzle import Puzzle, Solution
from repro.pow.verifier import PuzzleVerifier, ReplayCache

__all__ = ["AIPoWFramework", "Challenge"]


class Challenge:
    """An outstanding puzzle issued to one client.

    Bundles the :class:`IssuerDecision` (why the puzzle was this hard)
    with the :class:`Puzzle` itself so transports can relay both and the
    metrics layer can tie the eventual outcome back to the decision.
    """

    __slots__ = ("decision", "puzzle")

    def __init__(self, decision: IssuerDecision, puzzle: Puzzle) -> None:
        self.decision = decision
        self.puzzle = puzzle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Challenge(ip={self.decision.request.client_ip!r}, "
            f"score={self.decision.reputation_score:.2f}, "
            f"difficulty={self.decision.difficulty})"
        )


class AIPoWFramework:
    """The policy-driven, AI-assisted PoW server pipeline.

    Parameters
    ----------
    model:
        Reputation model implementing :class:`ReputationModel` (e.g.
        :class:`repro.reputation.dabr.DAbRModel`).
    policy:
        Score → difficulty mapping (e.g.
        :class:`repro.policies.linear.LinearPolicy`).
    config:
        Framework configuration; defaults are the calibrated paper setup.
    events:
        Optional :class:`EventBus` receiving one event per pipeline stage.
    rng:
        RNG used by randomized policies; defaults to a generator seeded
        from ``config.policy_seed`` for reproducibility.
    """

    def __init__(
        self,
        model: ReputationModel,
        policy: Policy,
        config: FrameworkConfig | None = None,
        *,
        events: EventBus | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self.config = config or FrameworkConfig()
        self.model = model
        self.policy = policy
        self.events = events or EventBus()
        self._rng = rng or random.Random(self.config.policy_seed)
        self._generator = PuzzleGenerator(self.config.pow)
        self._verifier = PuzzleVerifier(
            self.config.pow, replay_cache=ReplayCache()
        )

    # ------------------------------------------------------------------
    # Server-side half 1: request -> puzzle
    # ------------------------------------------------------------------
    def challenge(self, request: ClientRequest, now: float | None = None) -> Challenge:
        """Score ``request`` and issue an appropriately hard puzzle.

        This is steps (1)–(4) of the paper's Figure 1.
        """
        now = time.time() if now is None else now
        self.events.emit(EventKind.REQUEST_RECEIVED, now, request=request)

        score = self.model.score_request(request)
        self.events.emit(EventKind.SCORED, now, request=request, score=score)

        raw_difficulty = self.policy.difficulty_for(score, self._rng)
        difficulty = self.config.clamp_difficulty(raw_difficulty)
        self.events.emit(
            EventKind.POLICY_APPLIED,
            now,
            request=request,
            score=score,
            difficulty=difficulty,
            policy=self.policy.name,
        )

        decision = IssuerDecision(
            request=request,
            reputation_score=score,
            difficulty=difficulty,
            policy_name=self.policy.name,
            model_name=self.model.name,
        )
        puzzle = self._generator.issue(request.client_ip, difficulty, now=now)
        self.events.emit(
            EventKind.PUZZLE_ISSUED, now, decision=decision, puzzle=puzzle
        )
        return Challenge(decision, puzzle)

    # ------------------------------------------------------------------
    # Server-side half 2: solution -> resource
    # ------------------------------------------------------------------
    def redeem(
        self,
        challenge: Challenge,
        solution: Solution,
        now: float | None = None,
        *,
        request_sent_at: float | None = None,
    ) -> ServedResponse:
        """Verify ``solution`` and serve (or deny) the resource.

        This is steps (5)–(7) of the paper's Figure 1.  ``request_sent_at``
        lets the caller attribute end-to-end latency; when omitted, the
        original request timestamp is used.
        """
        now = time.time() if now is None else now
        decision = challenge.decision
        sent_at = (
            decision.request.timestamp
            if request_sent_at is None
            else request_sent_at
        )
        latency = max(0.0, now - sent_at)
        self.events.emit(
            EventKind.SOLUTION_RECEIVED, now, decision=decision, solution=solution
        )

        try:
            self._verifier.verify(
                challenge.puzzle, solution, decision.request.client_ip, now=now
            )
        except PuzzleExpiredError:
            status = ResponseStatus.EXPIRED
        except ReplayedSolutionError:
            status = ResponseStatus.REPLAYED
        except (SolutionInvalidError, PuzzleError):
            status = ResponseStatus.REJECTED
        else:
            status = ResponseStatus.SERVED

        if status is ResponseStatus.SERVED:
            self.events.emit(
                EventKind.SOLUTION_VERIFIED, now, decision=decision
            )
            body = f"resource:{decision.request.resource}"
        else:
            self.events.emit(
                EventKind.SOLUTION_REJECTED, now, decision=decision, status=status
            )
            body = ""

        response = ServedResponse(
            decision=decision,
            status=status,
            latency=latency,
            solve_attempts=solution.attempts,
            body=body,
        )
        self.events.emit(EventKind.RESPONSE_SERVED, now, response=response)
        return response

    # ------------------------------------------------------------------
    # Whole exchange, in-process
    # ------------------------------------------------------------------
    def process(
        self,
        request: ClientRequest,
        solver: PuzzleSolver,
        clock: Callable[[], float] = time.time,
    ) -> ServedResponse:
        """Run the full challenge/solve/redeem exchange with ``solver``.

        Wall-clock timing comes from ``clock``; pass a fake clock in
        tests for determinism.  The request's own ``timestamp`` marks
        when the client sent it, so latency covers the whole exchange.
        """
        challenge = self.challenge(request, now=clock())
        solution = solver.solve(challenge.puzzle, request.client_ip)
        return self.redeem(
            challenge,
            solution,
            now=clock(),
            request_sent_at=request.timestamp,
        )

    def deny(
        self,
        challenge: Challenge,
        status: ResponseStatus,
        now: float,
        *,
        attempts: int = 0,
    ) -> ServedResponse:
        """Record a terminal non-served outcome (abandonment, timeout).

        Used by the simulator when a client never returns a solution.
        """
        if status is ResponseStatus.SERVED:
            raise ValueError("deny() cannot produce a SERVED response")
        latency = max(0.0, now - challenge.decision.request.timestamp)
        response = ServedResponse(
            decision=challenge.decision,
            status=status,
            latency=latency,
            solve_attempts=attempts,
        )
        self.events.emit(EventKind.RESPONSE_SERVED, now, response=response)
        return response
