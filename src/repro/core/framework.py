"""The adaptive issuer: the paper's core contribution, as a library.

:class:`AIPoWFramework` wires together the five components of Figure 1 of
the paper: the AI model, the policy, puzzle generation, (client-side)
puzzle solving, and puzzle verification.  The server-side flow is split
into two calls mirroring the two network round-trips:

1. :meth:`challenge` — steps (1)–(4): the request arrives, the AI model
   scores it, the policy maps the score to a difficulty, and an
   authenticated puzzle is issued.
2. :meth:`redeem` — steps (5)–(7): the client's solution is verified and,
   if valid, the resource is served.

:meth:`process` runs the whole exchange in-process with a supplied solver
and clock — the backbone of the examples and of the wall-clock benches.

Batch admission
---------------
Concurrent arrivals do not need to walk the pipeline one at a time:
:meth:`challenge_batch` scores a whole batch through the model's
vectorised path, maps all scores through the policy in one call, and
issues the puzzles through :meth:`PuzzleGenerator.generate_batch` —
while still producing one :class:`IssuerDecision`, one
:class:`~repro.pow.puzzle.Puzzle` and the same per-request events as the
scalar path.  The simulator drains same-timestep arrivals through this
path, and :meth:`process_batch` does the same for in-process exchanges.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Sequence

import numpy as np

from repro.core.config import FrameworkConfig
from repro.core.errors import (
    PuzzleError,
    PuzzleExpiredError,
    ReplayedSolutionError,
    SolutionInvalidError,
)
from repro.core.events import EventBus, EventKind
from repro.core.interfaces import Policy, PuzzleSolver, ReputationModel
from repro.core.records import (
    ClientRequest,
    IssuerDecision,
    ResponseStatus,
    ServedResponse,
)
from repro.pow.generator import PuzzleGenerator
from repro.pow.puzzle import Puzzle, Solution
from repro.pow.verifier import PuzzleVerifier, ReplayCache
from repro.state import AdmissionStateStore, InMemoryStateStore

__all__ = ["AIPoWFramework", "Challenge"]


class Challenge:
    """An outstanding puzzle issued to one client.

    Bundles the :class:`IssuerDecision` (why the puzzle was this hard)
    with the :class:`Puzzle` itself so transports can relay both and the
    metrics layer can tie the eventual outcome back to the decision.
    """

    __slots__ = ("decision", "puzzle")

    def __init__(self, decision: IssuerDecision, puzzle: Puzzle) -> None:
        self.decision = decision
        self.puzzle = puzzle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Challenge(ip={self.decision.request.client_ip!r}, "
            f"score={self.decision.reputation_score:.2f}, "
            f"difficulty={self.decision.difficulty})"
        )


class AIPoWFramework:
    """The policy-driven, AI-assisted PoW server pipeline.

    Parameters
    ----------
    model:
        Reputation model implementing :class:`ReputationModel` (e.g.
        :class:`repro.reputation.dabr.DAbRModel`).
    policy:
        Score → difficulty mapping (e.g.
        :class:`repro.policies.linear.LinearPolicy`).
    config:
        Framework configuration; defaults are the calibrated paper setup.
    events:
        Optional :class:`EventBus` receiving one event per pipeline stage.
    rng:
        RNG used by randomized policies; defaults to a generator seeded
        from ``config.policy_seed`` for reproducibility.
    store:
        Admission state store for the framework's own mutable state
        (the verifier's replay cache); a private in-memory store is
        created when omitted.  Builders that want *every* stateful
        component behind one snapshot (feedback offsets, score cache,
        adaptive load) pass the same store into those components — see
        :class:`repro.core.spec.FrameworkSpec`.
    """

    def __init__(
        self,
        model: ReputationModel,
        policy: Policy,
        config: FrameworkConfig | None = None,
        *,
        events: EventBus | None = None,
        rng: random.Random | None = None,
        store: AdmissionStateStore | None = None,
    ) -> None:
        self.config = config or FrameworkConfig()
        self.model = model
        self.policy = policy
        self.events = events or EventBus()
        self.store = store if store is not None else InMemoryStateStore()
        self._rng = rng or random.Random(self.config.policy_seed)
        self._generator = PuzzleGenerator(self.config.pow)
        self._verifier = PuzzleVerifier(
            self.config.pow, replay_cache=ReplayCache(store=self.store)
        )
        # Stateful policies (the load-adaptive wrapper, possibly nested
        # inside other wrappers) re-home their state into the
        # framework's store so snapshot()/restore() covers them even
        # when the policy was built by the registry or the DSL, which
        # know nothing about stores.  Namespaces are disambiguated in
        # walk order (outermost first) so nested wrappers keep
        # independent estimates — the order is construction-derived,
        # hence identical across workers building the same spec.
        node, seen = policy, set()
        used: set[str] = set()
        while node is not None and id(node) not in seen:
            seen.add(id(node))
            binder = getattr(node, "bind_store", None)
            if callable(binder):
                base = getattr(node, "state_namespace", "policy-load")
                name, suffix = base, 2
                while name in used:
                    name = f"{base}#{suffix}"
                    suffix += 1
                used.add(name)
                binder(self.store, namespace=name)
            node = getattr(node, "inner", None)

    # ------------------------------------------------------------------
    # State layer
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe snapshot of the framework's admission state store."""
        return self.store.snapshot()

    def restore(self, snapshot: dict) -> None:
        """Restore the admission state store from :meth:`snapshot` output."""
        self.store.restore(snapshot)

    # ------------------------------------------------------------------
    # Server-side half 1: request -> puzzle
    # ------------------------------------------------------------------
    def challenge(self, request: ClientRequest, now: float | None = None) -> Challenge:
        """Score ``request`` and issue an appropriately hard puzzle.

        This is steps (1)–(4) of the paper's Figure 1.
        """
        now = time.time() if now is None else now
        self.events.emit(EventKind.REQUEST_RECEIVED, now, request=request)

        score = self.model.score_request(request)
        self.events.emit(EventKind.SCORED, now, request=request, score=score)

        raw_difficulty = self.policy.difficulty_for(score, self._rng)
        difficulty = self.config.clamp_difficulty(raw_difficulty)
        self.events.emit(
            EventKind.POLICY_APPLIED,
            now,
            request=request,
            score=score,
            difficulty=difficulty,
            policy=self.policy.name,
        )

        decision = IssuerDecision(
            request=request,
            reputation_score=score,
            difficulty=difficulty,
            policy_name=self.policy.name,
            model_name=self.model.name,
        )
        puzzle = self._generator.issue(request.client_ip, difficulty, now=now)
        self.events.emit(
            EventKind.PUZZLE_ISSUED, now, decision=decision, puzzle=puzzle
        )
        return Challenge(decision, puzzle)

    def challenge_batch(
        self,
        requests: Sequence[ClientRequest],
        now: float | Sequence[float] | None = None,
    ) -> list[Challenge]:
        """Score and issue puzzles for many requests in one pass.

        The batch equivalent of :meth:`challenge`: each request still
        gets its own :class:`IssuerDecision` and :class:`Challenge`, and
        the per-request scores, difficulties and puzzles are identical
        to running the scalar path request-by-request (randomized
        policies consume the framework RNG in request order, exactly
        like the equivalent loop).  What changes is the cost model —
        scoring runs through the model's vectorised batch path, the
        policy maps all scores at once, and puzzle issuance amortises
        its seed and HMAC setup.

        ``now`` may be one timestamp for the whole batch (the common
        same-timestep case) or one timestamp per request (used by the
        simulator when FIFO queueing staggers issue times within an
        arrival batch).

        Event ordering: the scalar path interleaves stages per request
        (``REQUEST_RECEIVED``, ``SCORED``, ... for request A, then for
        B); the batch path emits stage-major — every ``REQUEST_RECEIVED``
        first, then every ``SCORED``, and so on — preserving request
        order *within* each stage and stamping each event with its
        request's own timestamp.  Models/policies without batch support
        fall back to the scalar loop transparently.
        """
        requests = list(requests)
        if not requests:
            return []
        count = len(requests)
        if now is None:
            now = time.time()
        if isinstance(now, (int, float)):
            times = [float(now)] * count
        else:
            times = [float(t) for t in now]
            if len(times) != count:
                raise ValueError(
                    f"got {len(times)} timestamps for {count} requests"
                )

        events = self.events
        if events.has_subscribers(EventKind.REQUEST_RECEIVED):
            for request, at in zip(requests, times):
                events.emit(
                    EventKind.REQUEST_RECEIVED, at, request=request
                )

        scores = self._score_requests(requests)
        if events.has_subscribers(EventKind.SCORED):
            for request, at, score in zip(requests, times, scores):
                events.emit(
                    EventKind.SCORED, at, request=request, score=float(score)
                )

        difficulties = [int(d) for d in self.difficulties_for_scores(scores)]
        policy_name = self.policy.name
        if events.has_subscribers(EventKind.POLICY_APPLIED):
            for request, at, score, difficulty in zip(
                requests, times, scores, difficulties
            ):
                events.emit(
                    EventKind.POLICY_APPLIED,
                    at,
                    request=request,
                    score=float(score),
                    difficulty=difficulty,
                    policy=policy_name,
                )

        puzzles = self._generator.generate_batch(
            [request.client_ip for request in requests], difficulties, times
        )
        model_name = self.model.name
        score_values = [float(score) for score in scores]
        new = object.__new__
        set_field = object.__setattr__
        challenges: list[Challenge] = []
        for request, score, difficulty, puzzle in zip(
            requests, score_values, difficulties, puzzles
        ):
            # Trusted construction: the difficulty was clamped to a
            # non-negative range above, so IssuerDecision.__post_init__
            # has nothing left to reject — skipping it is measurable at
            # batch sizes in the thousands.
            decision = new(IssuerDecision)
            set_field(decision, "request", request)
            set_field(decision, "reputation_score", score)
            set_field(decision, "difficulty", difficulty)
            set_field(decision, "policy_name", policy_name)
            set_field(decision, "model_name", model_name)
            challenges.append(Challenge(decision, puzzle))

        if events.has_subscribers(EventKind.PUZZLE_ISSUED):
            for at, challenge in zip(times, challenges):
                events.emit(
                    EventKind.PUZZLE_ISSUED,
                    at,
                    decision=challenge.decision,
                    puzzle=challenge.puzzle,
                )
        return challenges

    def _score_requests(self, requests: Sequence[ClientRequest]) -> np.ndarray:
        """Model scores for a batch, vectorised when the model can.

        Uses the model's optional ``score_requests`` batch method (see
        :class:`~repro.core.interfaces.SupportsScoreBatch`); scalar-only
        models are looped.  Mirrors
        ``repro.reputation.base.model_score_requests`` deliberately:
        the core package depends only on the interfaces, never on the
        concrete reputation package, so the three-line dispatch is
        duplicated here rather than imported.
        """
        scorer = getattr(self.model, "score_requests", None)
        if scorer is not None:
            return np.asarray(scorer(requests), dtype=np.float64)
        return np.array(
            [self.model.score_request(request) for request in requests],
            dtype=np.float64,
        )

    def difficulties_for_scores(self, scores: np.ndarray) -> np.ndarray:
        """Clamped difficulties for a score vector — the decision core.

        The array-level admission kernel: policy mapping (vectorised
        when the policy supports it, RNG consumed in score order
        otherwise) followed by the config difficulty clamp, with no
        per-request object construction.  :meth:`challenge_batch` is
        built on it; the vectorized simulator calls it directly when
        nothing is subscribed to admission events, which is what makes
        million-agent campaigns affordable.
        """
        return np.clip(
            self._difficulties_for(scores),
            self.config.min_difficulty,
            self.config.pow.max_difficulty,
        ).astype(np.int64)

    def _difficulties_for(self, scores: np.ndarray) -> np.ndarray:
        """Policy difficulties for a score vector, vectorised when possible.

        Uses the policy's optional ``difficulty_batch`` (see
        :class:`~repro.core.interfaces.SupportsDifficultyBatch`);
        scalar-only policies are looped with the same RNG order.
        """
        batch = getattr(self.policy, "difficulty_batch", None)
        if batch is not None:
            return np.asarray(batch(scores, self._rng))
        return np.array(
            [
                self.policy.difficulty_for(float(score), self._rng)
                for score in scores
            ],
            dtype=np.int64,
        )

    # ------------------------------------------------------------------
    # Server-side half 2: solution -> resource
    # ------------------------------------------------------------------
    def redeem(
        self,
        challenge: Challenge,
        solution: Solution,
        now: float | None = None,
        *,
        request_sent_at: float | None = None,
    ) -> ServedResponse:
        """Verify ``solution`` and serve (or deny) the resource.

        This is steps (5)–(7) of the paper's Figure 1.  ``request_sent_at``
        lets the caller attribute end-to-end latency; when omitted, the
        original request timestamp is used.
        """
        now = time.time() if now is None else now
        decision = challenge.decision
        sent_at = (
            decision.request.timestamp
            if request_sent_at is None
            else request_sent_at
        )
        latency = max(0.0, now - sent_at)
        self.events.emit(
            EventKind.SOLUTION_RECEIVED, now, decision=decision, solution=solution
        )

        try:
            self._verifier.verify(
                challenge.puzzle, solution, decision.request.client_ip, now=now
            )
        except PuzzleExpiredError:
            status = ResponseStatus.EXPIRED
        except ReplayedSolutionError:
            status = ResponseStatus.REPLAYED
        except (SolutionInvalidError, PuzzleError):
            status = ResponseStatus.REJECTED
        else:
            status = ResponseStatus.SERVED

        if status is ResponseStatus.SERVED:
            self.events.emit(
                EventKind.SOLUTION_VERIFIED, now, decision=decision
            )
            body = f"resource:{decision.request.resource}"
        else:
            self.events.emit(
                EventKind.SOLUTION_REJECTED, now, decision=decision, status=status
            )
            body = ""

        response = ServedResponse(
            decision=decision,
            status=status,
            latency=latency,
            solve_attempts=solution.attempts,
            body=body,
        )
        self.events.emit(EventKind.RESPONSE_SERVED, now, response=response)
        return response

    # ------------------------------------------------------------------
    # Whole exchange, in-process
    # ------------------------------------------------------------------
    def process(
        self,
        request: ClientRequest,
        solver: PuzzleSolver,
        clock: Callable[[], float] = time.time,
    ) -> ServedResponse:
        """Run the full challenge/solve/redeem exchange with ``solver``.

        Wall-clock timing comes from ``clock``; pass a fake clock in
        tests for determinism.  The request's own ``timestamp`` marks
        when the client sent it, so latency covers the whole exchange.
        """
        challenge = self.challenge(request, now=clock())
        solution = solver.solve(challenge.puzzle, request.client_ip)
        return self.redeem(
            challenge,
            solution,
            now=clock(),
            request_sent_at=request.timestamp,
        )

    def process_batch(
        self,
        requests: Sequence[ClientRequest],
        solver: PuzzleSolver,
        clock: Callable[[], float] = time.time,
    ) -> list[ServedResponse]:
        """Run full exchanges for many requests, batching the admission.

        Challenges are issued through :meth:`challenge_batch`; solving
        and redemption are inherently per-solution (each verification
        hashes a distinct nonce) and run sequentially in request order.
        """
        challenges = self.challenge_batch(requests, now=clock())
        responses: list[ServedResponse] = []
        for request, challenge in zip(requests, challenges):
            solution = solver.solve(challenge.puzzle, request.client_ip)
            responses.append(
                self.redeem(
                    challenge,
                    solution,
                    now=clock(),
                    request_sent_at=request.timestamp,
                )
            )
        return responses

    def deny(
        self,
        challenge: Challenge,
        status: ResponseStatus,
        now: float,
        *,
        attempts: int = 0,
    ) -> ServedResponse:
        """Record a terminal non-served outcome (abandonment, timeout).

        Used by the simulator when a client never returns a solution.
        """
        if status is ResponseStatus.SERVED:
            raise ValueError("deny() cannot produce a SERVED response")
        latency = max(0.0, now - challenge.decision.request.timestamp)
        response = ServedResponse(
            decision=challenge.decision,
            status=status,
            latency=latency,
            solve_attempts=attempts,
        )
        self.events.emit(EventKind.RESPONSE_SERVED, now, response=response)
        return response
