"""The client-side puzzle solver (paper §II.4).

The data received from the generator is concatenated with the client's
IP address to form an immutable prefix; a 32-bit nonce is appended and
modified on each hash evaluation until the output has the required
prefix of zero bits.

Two solvers are provided:

* :class:`HashSolver` — grinds real hash evaluations with
  :mod:`hashlib`.  Used by the live server path, the examples, and the
  wall-clock benches.
* :class:`SampledSolver` — draws the attempt count from the geometric
  distribution instead of hashing, then grinds only the *winning* check.
  It produces solutions that still verify, at a cost independent of
  difficulty — the workhorse of large simulations.
"""

from __future__ import annotations

import random
import time

from repro.core.errors import NonceSpaceExhaustedError
from repro.pow.difficulty import meets_difficulty
from repro.pow.hashers import get_hasher
from repro.pow.puzzle import Puzzle, Solution

__all__ = ["HashSolver", "SampledSolver", "sample_attempts"]


class HashSolver:
    """Brute-force nonce grinder over a fixed-width nonce space.

    Parameters
    ----------
    nonce_bits:
        Width of the nonce; the paper specifies 32 bits.
    max_attempts:
        Optional cap below the full nonce space, so callers can bound
        worst-case work (e.g. an attacker that gives up).
    start_nonce:
        First nonce to try; randomising the start point spreads load in
        tests without changing expected work.
    """

    def __init__(
        self,
        nonce_bits: int = 32,
        max_attempts: int | None = None,
        start_nonce: int = 0,
    ) -> None:
        if not 1 <= nonce_bits <= 64:
            raise ValueError(f"nonce_bits must be in [1, 64], got {nonce_bits}")
        self.nonce_bits = nonce_bits
        self.nonce_space = 1 << nonce_bits
        if start_nonce < 0 or start_nonce >= self.nonce_space:
            raise ValueError(
                f"start_nonce {start_nonce} outside nonce space"
            )
        if max_attempts is not None and max_attempts <= 0:
            raise ValueError(f"max_attempts must be > 0, got {max_attempts}")
        self.max_attempts = max_attempts
        self.start_nonce = start_nonce

    def solve(self, puzzle: Puzzle, client_ip: str) -> Solution:
        """Grind nonces until the digest meets the puzzle difficulty.

        Raises :class:`~repro.core.errors.NonceSpaceExhaustedError` when
        the nonce space (or ``max_attempts``) is exhausted first.
        """
        hasher = get_hasher(puzzle.algorithm)
        prefix = puzzle.prefix(client_ip)
        difficulty = puzzle.difficulty
        limit = self.nonce_space
        if self.max_attempts is not None:
            limit = min(limit, self.max_attempts)

        started = time.perf_counter()
        nonce = self.start_nonce
        width = (self.nonce_bits + 7) // 8
        for attempt in range(1, limit + 1):
            digest = hasher(prefix + nonce.to_bytes(width, "big"))
            if meets_difficulty(digest, difficulty):
                return Solution(
                    puzzle_seed=puzzle.seed,
                    nonce=nonce,
                    attempts=attempt,
                    elapsed=time.perf_counter() - started,
                )
            nonce = (nonce + 1) % self.nonce_space
        raise NonceSpaceExhaustedError(limit, difficulty)


def sample_attempts(difficulty: int, rng: random.Random) -> int:
    """Draw a geometric attempt count for a ``difficulty``-bit puzzle.

    Inverse-CDF sampling: ``attempts = ceil(ln U / ln(1 - 2**-d))`` for
    uniform ``U``; difficulty 0 always solves on the first attempt.
    """
    if difficulty < 0:
        raise ValueError(f"difficulty must be >= 0, got {difficulty}")
    if difficulty == 0:
        return 1
    import math

    p = 2.0**-difficulty
    u = rng.random()
    # Guard the u == 0 edge (log(0)); retry is statistically sound.
    while u <= 0.0:
        u = rng.random()
    return max(1, math.ceil(math.log(u) / math.log1p(-p)))


class SampledSolver:
    """Statistically faithful solver that avoids per-attempt hashing.

    For a ``d``-difficult puzzle it samples the geometric attempt count,
    then finds a *real* winning nonce by grinding — but reports the
    sampled count in :attr:`Solution.attempts`.  Verification therefore
    still passes, while the attempt count driving latency models follows
    the correct distribution even when the underlying grind got lucky.

    When ``verifiable=False`` the grind is skipped entirely and nonce 0
    is returned; use this in pure simulations that never re-verify.
    """

    def __init__(
        self,
        rng: random.Random | None = None,
        nonce_bits: int = 32,
        verifiable: bool = True,
    ) -> None:
        self._rng = rng or random.Random(0xA77E)
        self._grinder = HashSolver(nonce_bits=nonce_bits)
        self.verifiable = verifiable

    def solve(self, puzzle: Puzzle, client_ip: str) -> Solution:
        """Return a solution whose ``attempts`` is geometrically sampled."""
        attempts = sample_attempts(puzzle.difficulty, self._rng)
        if not self.verifiable:
            return Solution(
                puzzle_seed=puzzle.seed, nonce=0, attempts=attempts
            )
        ground = self._grinder.solve(puzzle, client_ip)
        return Solution(
            puzzle_seed=puzzle.seed,
            nonce=ground.nonce,
            attempts=attempts,
            elapsed=ground.elapsed,
        )
