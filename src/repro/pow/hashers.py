"""Pluggable hash backends for the PoW solver and verifier.

The paper does not fix a hash function ("the client performs evaluations
on this input"), so the backend is a named component: solver and verifier
must simply agree.  Backends wrap :mod:`hashlib` digests behind a uniform
``bytes -> bytes`` callable; :func:`get_hasher` resolves names.
"""

from __future__ import annotations

import hashlib
from typing import Callable

from repro.core.errors import ConfigError

__all__ = ["Hasher", "get_hasher", "available_algorithms", "digest_size"]

Hasher = Callable[[bytes], bytes]

_ALGORITHMS: dict[str, Callable[[bytes], "hashlib._Hash"]] = {
    "sha256": hashlib.sha256,
    "sha1": hashlib.sha1,
    "sha512": hashlib.sha512,
    "blake2b": hashlib.blake2b,
}


def available_algorithms() -> tuple[str, ...]:
    """Names accepted by :func:`get_hasher`, sorted."""
    return tuple(sorted(_ALGORITHMS))


def get_hasher(name: str) -> Hasher:
    """Return a ``bytes -> digest-bytes`` callable for algorithm ``name``."""
    try:
        constructor = _ALGORITHMS[name]
    except KeyError:
        raise ConfigError(
            f"unknown hash algorithm {name!r}; "
            f"expected one of {available_algorithms()}"
        ) from None

    def hasher(data: bytes) -> bytes:
        return constructor(data).digest()

    hasher.__name__ = f"hasher_{name}"
    return hasher


def digest_size(name: str) -> int:
    """Digest size in bytes of algorithm ``name``."""
    try:
        constructor = _ALGORITHMS[name]
    except KeyError:
        raise ConfigError(
            f"unknown hash algorithm {name!r}; "
            f"expected one of {available_algorithms()}"
        ) from None
    return constructor(b"").digest_size
