"""Difficulty semantics: leading-zero-bit targets and their statistics.

A *d-difficult* puzzle (paper §II.4) requires a hash output whose first
``d`` bits are zero.  Each hash evaluation over a fresh nonce succeeds
independently with probability ``2**-d``, so the attempt count is
geometric.  The helpers here are shared by the solver, the verifier and
the simulator's solve-time model, keeping all three consistent.
"""

from __future__ import annotations

import math

__all__ = [
    "count_leading_zero_bits",
    "meets_difficulty",
    "expected_attempts",
    "median_attempts",
    "attempts_quantile",
    "success_probability",
]


def count_leading_zero_bits(digest: bytes) -> int:
    """Number of leading zero bits in ``digest``.

    An all-zero digest has ``8 * len(digest)`` leading zero bits.
    """
    bits = 0
    for byte in digest:
        if byte == 0:
            bits += 8
            continue
        bits += 8 - byte.bit_length()
        break
    return bits


def meets_difficulty(digest: bytes, difficulty: int) -> bool:
    """True when ``digest`` has at least ``difficulty`` leading zero bits.

    Every digest meets difficulty 0 (no puzzle).
    """
    if difficulty < 0:
        raise ValueError(f"difficulty must be >= 0, got {difficulty}")
    if difficulty > 8 * len(digest):
        return False
    full_bytes, rem_bits = divmod(difficulty, 8)
    if any(digest[:full_bytes]):
        return False
    if rem_bits == 0:
        return True
    return digest[full_bytes] < (1 << (8 - rem_bits))


def expected_attempts(difficulty: int) -> float:
    """Mean number of hash evaluations to solve a ``difficulty``-bit puzzle."""
    if difficulty < 0:
        raise ValueError(f"difficulty must be >= 0, got {difficulty}")
    return float(2**difficulty)


def median_attempts(difficulty: int) -> float:
    """Median number of attempts (``2**d * ln 2`` for large ``d``).

    The exact median of a geometric distribution with success probability
    ``p = 2**-d`` is ``ceil(-1 / log2(1 - p))``; we return the continuous
    approximation used by the calibration bench, with the exact value for
    the degenerate ``d = 0`` case.
    """
    if difficulty < 0:
        raise ValueError(f"difficulty must be >= 0, got {difficulty}")
    if difficulty == 0:
        return 1.0
    p = 2.0**-difficulty
    return math.log(0.5) / math.log1p(-p)


def attempts_quantile(difficulty: int, q: float) -> float:
    """The ``q``-quantile of the attempt count at ``difficulty``.

    Useful for tail-latency analysis: e.g. ``attempts_quantile(d, 0.99)``
    bounds the unlucky-solver cost.
    """
    if not 0.0 < q < 1.0:
        raise ValueError(f"q must be in (0, 1), got {q}")
    if difficulty < 0:
        raise ValueError(f"difficulty must be >= 0, got {difficulty}")
    if difficulty == 0:
        return 1.0
    p = 2.0**-difficulty
    return math.log1p(-q) / math.log1p(-p)


def success_probability(difficulty: int, attempts: int) -> float:
    """Probability that at least one of ``attempts`` evaluations solves.

    Drives the nonce-exhaustion analysis: with a 32-bit nonce and
    ``d``-bit target, the miss probability is ``(1 - 2**-d) ** 2**32``.
    """
    if attempts < 0:
        raise ValueError(f"attempts must be >= 0, got {attempts}")
    if difficulty < 0:
        raise ValueError(f"difficulty must be >= 0, got {difficulty}")
    if difficulty == 0:
        return 1.0 if attempts >= 1 else 0.0
    p = 2.0**-difficulty
    return -math.expm1(attempts * math.log1p(-p))
