"""Fractional difficulty via hash targets (fine-grained tuning).

Integer leading-zero-bit difficulty quantises work in powers of two —
the gap between ``d`` and ``d+1`` *doubles* the expected latency, which
is coarse when "proper tuning of the difficulty is desired for
fine-grained reputation scores" (paper §II.2).

The standard fix (Bitcoin's) is a numeric *target*: a digest solves the
puzzle iff, read as a big-endian integer, it is **below** the target.
Any real-valued difficulty ``d`` maps to the target ``2**256 / 2**d``,
so expected attempts are exactly ``2**d`` for fractional ``d`` too —
``d = 10.5`` really is √2 harder than ``d = 10``.

This module provides the target math plus solver/verifier entry points
that interoperate with the existing :class:`~repro.pow.puzzle.Puzzle`
prefix format (the fractional difficulty is carried out-of-band by the
caller, e.g. a fractional policy).
"""

from __future__ import annotations

import math
import time

from repro.core.errors import NonceSpaceExhaustedError, SolutionInvalidError
from repro.pow.hashers import digest_size, get_hasher
from repro.pow.puzzle import Puzzle, Solution

__all__ = [
    "target_for_difficulty",
    "difficulty_for_target",
    "meets_target",
    "expected_attempts_fractional",
    "FractionalSolver",
    "verify_fractional",
]


def target_for_difficulty(difficulty: float, digest_bits: int = 256) -> int:
    """The integer target for a real-valued ``difficulty``.

    ``difficulty = 0`` yields the maximal target (everything solves);
    each unit of difficulty halves the target.
    """
    if difficulty < 0:
        raise ValueError(f"difficulty must be >= 0, got {difficulty}")
    if difficulty >= digest_bits:
        return 1  # hardest expressible target: only the all-zero digest
    space = 1 << digest_bits
    return max(1, int(space / (2.0**difficulty)))


def difficulty_for_target(target: int, digest_bits: int = 256) -> float:
    """Inverse of :func:`target_for_difficulty`."""
    if target <= 0:
        raise ValueError(f"target must be > 0, got {target}")
    space = 1 << digest_bits
    return math.log2(space / target)


def meets_target(digest: bytes, target: int) -> bool:
    """True when ``digest`` (big-endian) is strictly below ``target``."""
    return int.from_bytes(digest, "big") < target


def expected_attempts_fractional(difficulty: float) -> float:
    """Mean attempts at fractional ``difficulty`` — exactly ``2**d``."""
    if difficulty < 0:
        raise ValueError(f"difficulty must be >= 0, got {difficulty}")
    return 2.0**difficulty


class FractionalSolver:
    """Grinds nonces against a fractional-difficulty target.

    Reuses the puzzle's immutable prefix (so fractional and integer
    modes share generation and IP binding); the fractional difficulty
    is supplied per-solve.
    """

    def __init__(self, nonce_bits: int = 32, max_attempts: int | None = None):
        if not 1 <= nonce_bits <= 64:
            raise ValueError(f"nonce_bits must be in [1, 64], got {nonce_bits}")
        if max_attempts is not None and max_attempts <= 0:
            raise ValueError(f"max_attempts must be > 0, got {max_attempts}")
        self.nonce_bits = nonce_bits
        self.max_attempts = max_attempts

    def solve(
        self, puzzle: Puzzle, client_ip: str, difficulty: float
    ) -> Solution:
        """Find a nonce whose digest is below the fractional target."""
        hasher = get_hasher(puzzle.algorithm)
        bits = 8 * digest_size(puzzle.algorithm)
        target = target_for_difficulty(difficulty, bits)
        prefix = puzzle.prefix(client_ip)
        width = (self.nonce_bits + 7) // 8
        limit = 1 << self.nonce_bits
        if self.max_attempts is not None:
            limit = min(limit, self.max_attempts)

        started = time.perf_counter()
        for attempt in range(1, limit + 1):
            nonce = attempt - 1
            if meets_target(hasher(prefix + nonce.to_bytes(width, "big")), target):
                return Solution(
                    puzzle_seed=puzzle.seed,
                    nonce=nonce,
                    attempts=attempt,
                    elapsed=time.perf_counter() - started,
                )
        raise NonceSpaceExhaustedError(limit, int(math.ceil(difficulty)))


def verify_fractional(
    puzzle: Puzzle,
    solution: Solution,
    client_ip: str,
    difficulty: float,
    nonce_bits: int = 32,
) -> bool:
    """Check a fractional-target solution (constant cost, like §II.5).

    Raises :class:`SolutionInvalidError` on a miss; returns True on
    success.  Integrity/TTL/replay checks remain the caller's job (use
    the standard :class:`~repro.pow.verifier.PuzzleVerifier` machinery
    for those).
    """
    hasher = get_hasher(puzzle.algorithm)
    bits = 8 * digest_size(puzzle.algorithm)
    target = target_for_difficulty(difficulty, bits)
    width = (nonce_bits + 7) // 8
    digest = hasher(
        puzzle.prefix(client_ip) + solution.nonce.to_bytes(width, "big")
    )
    if not meets_target(digest, target):
        raise SolutionInvalidError(
            f"digest above fractional target for difficulty {difficulty:g}"
        )
    return True
