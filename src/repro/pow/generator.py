"""The puzzle generation module (paper §II.3).

The generator collects the request-related data — a timestamp and a
unique seed (mitigating pre-computation attacks) — together with the
policy-chosen difficulty, and produces the :class:`~repro.pow.puzzle.Puzzle`
relayed back to the client.  Each puzzle additionally carries an HMAC tag
binding it to the requesting IP so the verifier can authenticate puzzles
without keeping per-puzzle server state.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Sequence

from repro.core.config import PowConfig
from repro.core.errors import ConfigError
from repro.pow.puzzle import PUZZLE_VERSION, Puzzle, puzzle_prefix
from repro.pow.seeds import SeedSource, SystemSeedSource

__all__ = ["PuzzleGenerator", "compute_tag"]

#: Truncated tag length (hex chars).  128-bit tags keep frames compact
#: while leaving forgery infeasible.
TAG_HEX_LEN = 32


def compute_tag(secret_key: bytes, payload: bytes) -> str:
    """HMAC-SHA256 tag (truncated, hex) over ``payload``."""
    mac = hmac.new(secret_key, payload, hashlib.sha256)
    return mac.hexdigest()[:TAG_HEX_LEN]


class PuzzleGenerator:
    """Issues authenticated puzzles at a caller-chosen difficulty.

    Parameters
    ----------
    config:
        PoW parameters (key, TTL, difficulty clamp, hash algorithm).
    seed_source:
        Source of unique seeds; defaults to the CSPRNG-backed
        :class:`~repro.pow.seeds.SystemSeedSource`.
    """

    def __init__(
        self,
        config: PowConfig | None = None,
        seed_source: SeedSource | None = None,
    ) -> None:
        self.config = config or PowConfig()
        self._seeds: SeedSource = (
            seed_source if seed_source is not None else SystemSeedSource()
        )
        self.issued_count = 0

    def issue(self, client_ip: str, difficulty: int, now: float) -> Puzzle:
        """Create a puzzle for ``client_ip`` at ``difficulty`` zero bits.

        ``now`` is the issue timestamp (simulated or wall-clock).  Raises
        :class:`~repro.core.errors.ConfigError` if ``difficulty`` exceeds
        the configured maximum — the framework clamps before calling, so
        hitting this means a wiring bug.
        """
        if not client_ip:
            raise ValueError("client_ip must be non-empty")
        if difficulty < 0:
            raise ValueError(f"difficulty must be >= 0, got {difficulty}")
        if difficulty > self.config.max_difficulty:
            raise ConfigError(
                f"difficulty {difficulty} exceeds configured maximum "
                f"{self.config.max_difficulty}"
            )
        seed = self._seeds.next_seed().hex()
        unsigned = Puzzle(
            seed=seed,
            timestamp=now,
            difficulty=difficulty,
            algorithm=self.config.hash_algorithm,
        )
        tag = compute_tag(
            self.config.secret_key, unsigned.signing_payload(client_ip)
        )
        self.issued_count += 1
        return Puzzle(
            seed=seed,
            timestamp=now,
            difficulty=difficulty,
            algorithm=self.config.hash_algorithm,
            tag=tag,
        )

    def generate_batch(
        self,
        client_ips: Sequence[str],
        difficulties: Sequence[int],
        now: float | Sequence[float],
    ) -> list[Puzzle]:
        """Issue one puzzle per ``(client_ip, difficulty)`` pair.

        Equivalent to calling :meth:`issue` once per pair (identical
        puzzles for an identical seed stream, same validation, same
        errors) but with the fixed costs amortised: one bulk draw from
        the seed source, one HMAC key schedule reused across tags, and
        puzzles assembled on a trusted path that skips re-validating the
        fields this method just produced.  ``now`` may be a single
        timestamp for the whole batch or one per puzzle.
        """
        count = len(client_ips)
        if len(difficulties) != count:
            raise ValueError(
                f"got {len(difficulties)} difficulties for {count} clients"
            )
        if isinstance(now, (int, float)):
            times = [float(now)] * count
        else:
            times = [float(t) for t in now]
            if len(times) != count:
                raise ValueError(
                    f"got {len(times)} timestamps for {count} clients"
                )
        bulk = getattr(self._seeds, "next_seeds", None)
        if bulk is not None:
            raw_seeds = bulk(count)
        else:
            raw_seeds = [self._seeds.next_seed() for _ in range(count)]

        algorithm = self.config.hash_algorithm
        max_difficulty = self.config.max_difficulty
        # hmac.HMAC.copy() reuses the key schedule across the batch.
        mac_template = hmac.new(self.config.secret_key, b"", hashlib.sha256)
        new = object.__new__
        set_field = object.__setattr__
        puzzles: list[Puzzle] = []
        for client_ip, difficulty, issued_at, raw in zip(
            client_ips, difficulties, times, raw_seeds
        ):
            if not client_ip:
                raise ValueError("client_ip must be non-empty")
            difficulty = int(difficulty)
            if difficulty < 0:
                raise ValueError(
                    f"difficulty must be >= 0, got {difficulty}"
                )
            if difficulty > max_difficulty:
                raise ConfigError(
                    f"difficulty {difficulty} exceeds configured maximum "
                    f"{max_difficulty}"
                )
            seed = raw.hex()
            mac = mac_template.copy()
            mac.update(
                puzzle_prefix(
                    PUZZLE_VERSION, seed, issued_at, difficulty,
                    algorithm, client_ip,
                )
            )
            # Trusted construction: every field was validated or derived
            # above, and Puzzle.__init__ would re-parse the seed hex —
            # measurable at batch sizes in the thousands.
            puzzle = new(Puzzle)
            set_field(puzzle, "seed", seed)
            set_field(puzzle, "timestamp", issued_at)
            set_field(puzzle, "difficulty", difficulty)
            set_field(puzzle, "algorithm", algorithm)
            set_field(puzzle, "tag", mac.hexdigest()[:TAG_HEX_LEN])
            set_field(puzzle, "version", PUZZLE_VERSION)
            puzzles.append(puzzle)
        self.issued_count += count
        return puzzles
