"""The puzzle verification module (paper §II.5).

Verification is deliberately lightweight: one HMAC to authenticate the
puzzle, one hash to check the solution — constant work regardless of the
puzzle's difficulty, which is the asymmetry PoW defenses rely on.

The verifier enforces four properties:

1. **Integrity** — the puzzle (and the IP it is bound to) was really
   issued by this server: HMAC tag check.
2. **Freshness** — the puzzle's TTL has not elapsed.
3. **Correctness** — hashing ``prefix || nonce`` yields at least
   ``difficulty`` leading zero bits.
4. **Single redemption** — a seed can be redeemed once; replays are
   rejected (:class:`ReplayCache`).
"""

from __future__ import annotations

import dataclasses
import hmac as hmac_mod

from repro.core.config import PowConfig
from repro.core.errors import (
    PuzzleExpiredError,
    PuzzleIntegrityError,
    ReplayedSolutionError,
    SolutionInvalidError,
)
from repro.pow.difficulty import count_leading_zero_bits, meets_difficulty
from repro.pow.generator import compute_tag
from repro.pow.hashers import get_hasher
from repro.pow.puzzle import Puzzle, Solution, nonce_bytes

__all__ = ["PuzzleVerifier", "ReplayCache", "VerificationResult"]


class ReplayCache:
    """Remembers redeemed puzzle seeds until their TTL would expire anyway.

    The cache is bounded two ways: entries older than ``ttl`` are evicted
    lazily (an expired puzzle is rejected by the freshness check before
    the replay check can matter), and a hard ``max_entries`` cap evicts
    oldest-first so a flood of redemptions cannot exhaust memory.

    Redeemed seeds live in an :class:`~repro.state.AdmissionStateStore`
    namespace (``replay``, entries ``seed -> [redeemed_at, owner_ip]``),
    so the single-redemption property survives a snapshot/restore
    cycle — restarting a warmed server must not reopen already-redeemed
    puzzles.  The owner IP is recorded because it is the entry's
    *shard-affinity* key: a redeemed seed lives on the shard serving
    that client, and ``repro.state.snapshot.split_snapshot`` uses the
    owner (not the seed) to put it back there when resharding.
    """

    def __init__(
        self,
        ttl: float = 300.0,
        max_entries: int = 100_000,
        *,
        store=None,
        namespace: str = "replay",
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        if max_entries <= 0:
            raise ValueError(f"max_entries must be > 0, got {max_entries}")
        self.ttl = ttl
        self.max_entries = max_entries
        if store is None:
            from repro.state import InMemoryStateStore

            store = InMemoryStateStore()
        self.store = store
        self._seen = store.namespace(namespace)

    def __len__(self) -> int:
        return len(self._seen)

    def check_and_add(
        self, seed: str, now: float, owner: str | None = None
    ) -> bool:
        """Record ``seed``; return False if it was already present (replay).

        ``owner`` is the client IP the puzzle was bound to — recorded
        so sharded deployments can route the entry with the client's
        other state when splitting snapshots.
        """
        self._evict(now)
        if seed in self._seen:
            return False
        self._seen[seed] = [now, owner]
        return True

    def _evict(self, now: float) -> None:
        cutoff = now - self.ttl
        while self._seen:
            seed, entry = next(iter(self._seen.items()))
            if entry[0] >= cutoff and len(self._seen) < self.max_entries:
                break
            del self._seen[seed]


@dataclasses.dataclass(frozen=True, slots=True)
class VerificationResult:
    """Successful verification outcome, with the checked zero-bit count."""

    puzzle_seed: str
    difficulty: int
    zero_bits: int


class PuzzleVerifier:
    """Stateless-by-design verifier with optional replay protection.

    Parameters
    ----------
    config:
        Must match the generator's config (same key, algorithm, TTL).
    replay_cache:
        Optional :class:`ReplayCache`; pass ``None`` to disable the
        single-redemption property (ablation `abl-verify` measures the
        cost of keeping it).
    """

    def __init__(
        self,
        config: PowConfig | None = None,
        replay_cache: ReplayCache | None = None,
    ) -> None:
        self.config = config or PowConfig()
        self.replay_cache = replay_cache
        self.accepted_count = 0
        self.rejected_count = 0

    def verify(
        self,
        puzzle: Puzzle,
        solution: Solution,
        client_ip: str,
        now: float,
    ) -> VerificationResult:
        """Validate ``solution`` for ``puzzle``; raise on any failure.

        Raises
        ------
        PuzzleIntegrityError
            Tag mismatch — the puzzle was tampered with or forged, or the
            solution names a different puzzle.
        PuzzleExpiredError
            The puzzle aged past the configured TTL.
        SolutionInvalidError
            The nonce's digest misses the difficulty target.
        ReplayedSolutionError
            The seed was already redeemed.
        """
        try:
            return self._verify(puzzle, solution, client_ip, now)
        except Exception:
            self.rejected_count += 1
            raise

    def _verify(
        self,
        puzzle: Puzzle,
        solution: Solution,
        client_ip: str,
        now: float,
    ) -> VerificationResult:
        if solution.puzzle_seed != puzzle.seed:
            raise PuzzleIntegrityError(
                "solution references a different puzzle seed"
            )

        expected_tag = compute_tag(
            self.config.secret_key, puzzle.signing_payload(client_ip)
        )
        if not hmac_mod.compare_digest(expected_tag, puzzle.tag):
            raise PuzzleIntegrityError("puzzle tag mismatch")

        age = puzzle.age(now)
        if age > self.config.ttl:
            raise PuzzleExpiredError(age, self.config.ttl)

        hasher = get_hasher(puzzle.algorithm)
        digest = hasher(
            puzzle.prefix(client_ip)
            + nonce_bytes(solution.nonce, self.config.nonce_bits)
        )
        if not meets_difficulty(digest, puzzle.difficulty):
            raise SolutionInvalidError(
                f"digest has {count_leading_zero_bits(digest)} leading zero "
                f"bits, needs {puzzle.difficulty}"
            )

        if self.replay_cache is not None:
            if not self.replay_cache.check_and_add(
                puzzle.seed, now, owner=client_ip
            ):
                raise ReplayedSolutionError(
                    f"seed {puzzle.seed} already redeemed"
                )

        self.accepted_count += 1
        return VerificationResult(
            puzzle_seed=puzzle.seed,
            difficulty=puzzle.difficulty,
            zero_bits=count_leading_zero_bits(digest),
        )
