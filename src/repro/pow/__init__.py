"""PoW substrate: puzzles, generation, solving, verification.

This package implements the three classic PoW roles the paper names —
issuer/generator, solver, verifier — as independent, composable pieces:

>>> from repro.pow import PuzzleGenerator, HashSolver, PuzzleVerifier
>>> gen = PuzzleGenerator()
>>> puzzle = gen.issue("203.0.113.7", difficulty=8, now=0.0)
>>> solution = HashSolver().solve(puzzle, "203.0.113.7")
>>> PuzzleVerifier().verify(puzzle, solution, "203.0.113.7", now=1.0).difficulty
8
"""

from repro.pow.difficulty import (
    attempts_quantile,
    count_leading_zero_bits,
    expected_attempts,
    median_attempts,
    meets_difficulty,
    success_probability,
)
from repro.pow.generator import PuzzleGenerator, compute_tag
from repro.pow.hashers import available_algorithms, get_hasher
from repro.pow.puzzle import PUZZLE_VERSION, Puzzle, Solution
from repro.pow.seeds import (
    CountingSeedSource,
    SequentialSeedSource,
    SystemSeedSource,
)
from repro.pow.solver import HashSolver, SampledSolver, sample_attempts
from repro.pow.verifier import PuzzleVerifier, ReplayCache, VerificationResult

__all__ = [
    "Puzzle",
    "Solution",
    "PUZZLE_VERSION",
    "PuzzleGenerator",
    "compute_tag",
    "HashSolver",
    "SampledSolver",
    "sample_attempts",
    "PuzzleVerifier",
    "ReplayCache",
    "VerificationResult",
    "count_leading_zero_bits",
    "meets_difficulty",
    "expected_attempts",
    "median_attempts",
    "attempts_quantile",
    "success_probability",
    "get_hasher",
    "available_algorithms",
    "SystemSeedSource",
    "SequentialSeedSource",
    "CountingSeedSource",
]
