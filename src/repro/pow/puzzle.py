"""Puzzle and solution wire types.

A :class:`Puzzle` carries exactly what the paper's generator relays to
the client (§II.3): a timestamp, a unique seed, and the difficulty — plus
an HMAC tag binding those fields to the client's IP so the verifier can
remain stateless about outstanding puzzles.  A :class:`Solution` carries
the 32-bit nonce the client ground out (§II.4).

Both types serialise to single-line ASCII frames (``to_wire`` /
``from_wire``) used by the live TCP protocol and by anything that wants
to log or replay exchanges.
"""

from __future__ import annotations

import dataclasses

from repro.core.errors import ProtocolError

__all__ = ["Puzzle", "Solution", "PUZZLE_VERSION", "puzzle_prefix"]

#: Wire-format version; bump on incompatible changes.
PUZZLE_VERSION = 1


def puzzle_prefix(
    version: int,
    seed: str,
    timestamp: float,
    difficulty: int,
    algorithm: str,
    client_ip: str,
) -> bytes:
    """The immutable hash prefix for one puzzle/client pair.

    Shared by :meth:`Puzzle.prefix` and the generator's batch path so
    the byte layout — which both the HMAC tag and the solver's digest
    depend on — has exactly one definition.
    """
    return (
        f"v{version}|{seed}|{timestamp!r}|"
        f"{difficulty}|{algorithm}|{client_ip}|"
    ).encode("ascii")


@dataclasses.dataclass(frozen=True, slots=True)
class Puzzle:
    """One issued PoW puzzle.

    Parameters
    ----------
    seed:
        Unique per-puzzle seed, hex-encoded (pre-computation mitigation).
    timestamp:
        Server-side issue time in seconds; drives TTL expiry.
    difficulty:
        Required number of leading zero bits in the solution digest.
    algorithm:
        Hash algorithm name the solver must use.
    tag:
        Hex-encoded HMAC over ``(version, seed, timestamp, difficulty,
        algorithm, client_ip)`` under the server key.
    version:
        Wire-format version.
    """

    seed: str
    timestamp: float
    difficulty: int
    algorithm: str = "sha256"
    tag: str = ""
    version: int = PUZZLE_VERSION

    def __post_init__(self) -> None:
        if self.difficulty < 0:
            raise ValueError(f"difficulty must be >= 0, got {self.difficulty}")
        if not self.seed:
            raise ValueError("seed must be non-empty")
        try:
            bytes.fromhex(self.seed)
        except ValueError:
            raise ValueError(f"seed must be hex, got {self.seed!r}") from None

    def prefix(self, client_ip: str) -> bytes:
        """The immutable string the solver may not alter (paper §II.4).

        The puzzle data is concatenated with the client's IP address; the
        nonce is appended to this prefix on each hash evaluation.
        """
        return puzzle_prefix(
            self.version,
            self.seed,
            self.timestamp,
            self.difficulty,
            self.algorithm,
            client_ip,
        )

    def signing_payload(self, client_ip: str) -> bytes:
        """Bytes covered by the generator's HMAC tag."""
        return self.prefix(client_ip)

    def age(self, now: float) -> float:
        """Seconds elapsed since the puzzle was issued."""
        return now - self.timestamp

    def to_wire(self) -> str:
        """Serialise to a single-line ASCII frame."""
        return (
            f"PUZZLE {self.version} {self.seed} {self.timestamp!r} "
            f"{self.difficulty} {self.algorithm} {self.tag}"
        )

    @classmethod
    def from_wire(cls, line: str) -> "Puzzle":
        """Parse a frame produced by :meth:`to_wire`.

        Raises :class:`ProtocolError` on malformed input.
        """
        parts = line.strip().split(" ")
        if len(parts) != 7 or parts[0] != "PUZZLE":
            raise ProtocolError(f"malformed puzzle frame: {line!r}")
        _, version, seed, timestamp, difficulty, algorithm, tag = parts
        try:
            return cls(
                version=int(version),
                seed=seed,
                timestamp=float(timestamp),
                difficulty=int(difficulty),
                algorithm=algorithm,
                tag=tag,
            )
        except ValueError as exc:
            raise ProtocolError(f"malformed puzzle frame: {line!r}") from exc


@dataclasses.dataclass(frozen=True, slots=True)
class Solution:
    """A solved puzzle: the winning nonce plus solver-side accounting.

    ``attempts`` and ``elapsed`` are measurement metadata — the verifier
    only trusts ``nonce`` and recomputes the digest itself.
    """

    puzzle_seed: str
    nonce: int
    attempts: int = 0
    elapsed: float = 0.0

    def __post_init__(self) -> None:
        if self.nonce < 0:
            raise ValueError(f"nonce must be >= 0, got {self.nonce}")
        if self.attempts < 0:
            raise ValueError(f"attempts must be >= 0, got {self.attempts}")
        if self.elapsed < 0:
            raise ValueError(f"elapsed must be >= 0, got {self.elapsed}")

    def to_wire(self) -> str:
        """Serialise to a single-line ASCII frame."""
        return f"SOLUTION {self.puzzle_seed} {self.nonce} {self.attempts}"

    @classmethod
    def from_wire(cls, line: str) -> "Solution":
        """Parse a frame produced by :meth:`to_wire`."""
        parts = line.strip().split(" ")
        if len(parts) != 4 or parts[0] != "SOLUTION":
            raise ProtocolError(f"malformed solution frame: {line!r}")
        _, seed, nonce, attempts = parts
        try:
            return cls(puzzle_seed=seed, nonce=int(nonce), attempts=int(attempts))
        except ValueError as exc:
            raise ProtocolError(f"malformed solution frame: {line!r}") from exc


def nonce_bytes(nonce: int, nonce_bits: int) -> bytes:
    """Encode ``nonce`` in the fixed width the prefix expects.

    The paper appends "a 32-bit string"; we encode big-endian in
    ``ceil(nonce_bits / 8)`` bytes so solver and verifier agree bit-for-bit.
    """
    if nonce < 0 or nonce >= (1 << nonce_bits):
        raise ValueError(
            f"nonce {nonce} does not fit in {nonce_bits} bits"
        )
    return nonce.to_bytes((nonce_bits + 7) // 8, "big")
