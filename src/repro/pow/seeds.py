"""Unique-seed sources for puzzle generation.

The paper mitigates pre-computation attacks by embedding "a unique seed"
in every puzzle: an attacker cannot grind solutions before the puzzle is
issued because the seed is unpredictable.  Production uses
:class:`SystemSeedSource` (CSPRNG); tests and the deterministic simulator
use :class:`SequentialSeedSource` or :class:`CountingSeedSource`.
"""

from __future__ import annotations

import secrets
from typing import Protocol, runtime_checkable

__all__ = [
    "SeedSource",
    "SystemSeedSource",
    "SequentialSeedSource",
    "CountingSeedSource",
    "SEED_BYTES",
]

#: Seed width.  128 bits is ample: collisions across 2**64 puzzles are
#: negligible and the seed also keys the verifier's replay cache.
SEED_BYTES = 16


@runtime_checkable
class SeedSource(Protocol):
    """Anything that yields fresh, never-repeating puzzle seeds."""

    def next_seed(self) -> bytes:
        """Return ``SEED_BYTES`` bytes, unique across the source's life."""
        ...


class SystemSeedSource:
    """Cryptographically random seeds from :mod:`secrets`.

    This is the production source: seeds are unpredictable, which is
    what actually defeats pre-computation.
    """

    def next_seed(self) -> bytes:
        return secrets.token_bytes(SEED_BYTES)


class SequentialSeedSource:
    """Deterministic seeds derived from a base integer, for tests.

    Seeds are the big-endian encoding of ``base + n`` for the n-th call.
    Unique by construction, fully reproducible, *not* secure.
    """

    def __init__(self, base: int = 0) -> None:
        if base < 0:
            raise ValueError(f"base must be >= 0, got {base}")
        self._next = base

    def next_seed(self) -> bytes:
        seed = self._next.to_bytes(SEED_BYTES, "big")
        self._next += 1
        return seed


class CountingSeedSource:
    """Wraps another source and counts how many seeds were drawn.

    Useful in tests asserting "one fresh seed per issued puzzle".
    """

    def __init__(self, inner: SeedSource | None = None) -> None:
        self._inner: SeedSource = inner if inner is not None else SystemSeedSource()
        self.count = 0

    def next_seed(self) -> bytes:
        self.count += 1
        return self._inner.next_seed()
