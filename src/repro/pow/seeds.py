"""Unique-seed sources for puzzle generation.

The paper mitigates pre-computation attacks by embedding "a unique seed"
in every puzzle: an attacker cannot grind solutions before the puzzle is
issued because the seed is unpredictable.  Production uses
:class:`SystemSeedSource` (CSPRNG); tests and the deterministic simulator
use :class:`SequentialSeedSource` or :class:`CountingSeedSource`.
"""

from __future__ import annotations

import secrets
from typing import Protocol, runtime_checkable

__all__ = [
    "SeedSource",
    "SystemSeedSource",
    "SequentialSeedSource",
    "CountingSeedSource",
    "SEED_BYTES",
]

#: Seed width.  128 bits is ample: collisions across 2**64 puzzles are
#: negligible and the seed also keys the verifier's replay cache.
SEED_BYTES = 16


@runtime_checkable
class SeedSource(Protocol):
    """Anything that yields fresh, never-repeating puzzle seeds.

    Sources may additionally expose ``next_seeds(count) -> list[bytes]``
    to hand out many seeds in one call; the generator's batch path uses
    it when present (and falls back to looping ``next_seed``), so the
    method is deliberately *not* part of the protocol — third-party
    sources satisfying the scalar contract keep working.
    """

    def next_seed(self) -> bytes:
        """Return ``SEED_BYTES`` bytes, unique across the source's life."""
        ...


class SystemSeedSource:
    """Cryptographically random seeds from :mod:`secrets`.

    This is the production source: seeds are unpredictable, which is
    what actually defeats pre-computation.
    """

    def next_seed(self) -> bytes:
        return secrets.token_bytes(SEED_BYTES)

    def next_seeds(self, count: int) -> list[bytes]:
        """``count`` fresh seeds from one CSPRNG draw (amortised)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        buffer = secrets.token_bytes(SEED_BYTES * count)
        return [
            buffer[i * SEED_BYTES : (i + 1) * SEED_BYTES]
            for i in range(count)
        ]


class SequentialSeedSource:
    """Deterministic seeds derived from a base integer, for tests.

    Seeds are the big-endian encoding of ``base + n`` for the n-th call.
    Unique by construction, fully reproducible, *not* secure.
    """

    def __init__(self, base: int = 0) -> None:
        if base < 0:
            raise ValueError(f"base must be >= 0, got {base}")
        self._next = base

    def next_seed(self) -> bytes:
        seed = self._next.to_bytes(SEED_BYTES, "big")
        self._next += 1
        return seed

    def next_seeds(self, count: int) -> list[bytes]:
        """``count`` consecutive seeds (same stream as ``next_seed``)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return [self.next_seed() for _ in range(count)]


class CountingSeedSource:
    """Wraps another source and counts how many seeds were drawn.

    Useful in tests asserting "one fresh seed per issued puzzle".
    """

    def __init__(self, inner: SeedSource | None = None) -> None:
        self._inner: SeedSource = inner if inner is not None else SystemSeedSource()
        self.count = 0

    def next_seed(self) -> bytes:
        self.count += 1
        return self._inner.next_seed()

    def next_seeds(self, count: int) -> list[bytes]:
        """Draw ``count`` seeds, preferring the inner source's bulk path."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self.count += count
        bulk = getattr(self._inner, "next_seeds", None)
        if bulk is not None:
            return bulk(count)
        return [self._inner.next_seed() for _ in range(count)]
