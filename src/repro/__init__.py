"""repro — A Policy Driven AI-Assisted PoW Framework (DSN 2022).

A faithful, fully-offline reproduction of Chakraborty, Mitra, Mittal and
Young's AI-assisted Proof-of-Work framework.  The package implements the
paper's five components — the AI reputation model, the policy module,
puzzle generation, puzzle solving and puzzle verification — plus the
substrates needed to reproduce its evaluation: a synthetic
threat-intelligence corpus, a discrete-event network simulator, traffic
and attack generators, and the benchmark harness regenerating Figure 2.

Quickstart
----------
>>> from repro import (
...     AIPoWFramework, ClientRequest, DAbRModel, HashSolver,
...     generate_corpus, policy_2,
... )
>>> train, _ = generate_corpus(size=1500, seed=7).split()
>>> framework = AIPoWFramework(DAbRModel().fit(train), policy_2())
>>> example = train[0]
>>> request = ClientRequest(
...     client_ip=example.ip, resource="/index.html",
...     timestamp=0.0, features=example.features,
... )
>>> response = framework.process(request, HashSolver())
>>> response.served
True
"""

from repro.core import (
    AIPoWFramework,
    Challenge,
    ClientRequest,
    EventBus,
    EventKind,
    FrameworkConfig,
    IssuerDecision,
    PowConfig,
    ResponseStatus,
    ServedResponse,
    TimingConfig,
)
from repro.policies import (
    ErrorRangePolicy,
    LinearPolicy,
    build_policy,
    paper_policies,
    policy_1,
    policy_2,
    policy_3,
)
from repro.pow import (
    HashSolver,
    Puzzle,
    PuzzleGenerator,
    PuzzleVerifier,
    SampledSolver,
    Solution,
)
from repro.reputation import (
    DAbRModel,
    KNNReputationModel,
    evaluate_model,
    generate_corpus,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "AIPoWFramework",
    "Challenge",
    "FrameworkConfig",
    "PowConfig",
    "TimingConfig",
    "ClientRequest",
    "IssuerDecision",
    "ResponseStatus",
    "ServedResponse",
    "EventBus",
    "EventKind",
    "DAbRModel",
    "KNNReputationModel",
    "generate_corpus",
    "evaluate_model",
    "LinearPolicy",
    "ErrorRangePolicy",
    "policy_1",
    "policy_2",
    "policy_3",
    "paper_policies",
    "build_policy",
    "Puzzle",
    "Solution",
    "PuzzleGenerator",
    "PuzzleVerifier",
    "HashSolver",
    "SampledSolver",
]
