"""Deterministic trace replay through any serving configuration.

:class:`TraceReplayer` feeds a recorded request stream back through a
freshly built admission pipeline and emits the decision stream the
replay produced, for the differential harness to compare against the
recording (or against another configuration's replay).

Three in-process targets mirror the repo's serving tiers:

* ``inproc``    — requests sharing a timestamp are admitted through
  :meth:`AIPoWFramework.challenge_batch`, exactly like the simulator;
* ``gateway``   — requests are micro-batched by the gateway's
  accumulator rules (``max_batch`` / ``batch_window``) against the
  recorded timestamps;
* ``cluster:N`` — requests are routed by the same client-IP
  :class:`~repro.state.HashRing` the multi-worker gateway uses, each
  shard owning an independent pipeline built from the same spec.

Admission decisions are batch-invariant (PR 1's parity guarantee), so
all three targets reproduce a recording made under any of them —
that equivalence is what ``tests/replay/test_golden_parity.py`` gates.

Replay runs at full speed by default; ``speed=1.0`` paces requests at
their recorded inter-arrival gaps (``speed=2.0`` twice as fast, ...),
which is what the ``thr-replay`` experiment compares against.

A fourth, live, path (:func:`replay_live_gateway`) drives the trace
through a real :class:`~repro.net.gateway.server.GatewayServer` over
TCP — sequentially, so the decision order stays deterministic — with
each distinct recorded client mapped to its own loopback source
address.
"""

from __future__ import annotations

import dataclasses
import socket
import time
from typing import Sequence

from repro.core.errors import ReproError
from repro.core.framework import AIPoWFramework
from repro.core.records import ClientRequest, DecisionRecord
from repro.core.spec import FrameworkSpec
from repro.replay.recorder import TraceRecorder, spec_hash
from repro.state import HashRing
from repro.traffic.trace import Trace, TraceEntry

__all__ = [
    "ReplayResult",
    "TraceReplayer",
    "parse_target",
    "replay_live_gateway",
    "feed_live",
    "loopback_plan",
    "spec_from_trace",
]


def parse_target(target: str) -> tuple[str, int]:
    """Parse a CLI target name into ``(kind, workers)``.

    ``inproc`` and ``gateway`` have one worker; ``cluster:N`` carries
    its worker count.
    """
    if target in ("inproc", "gateway"):
        return target, 1
    if target.startswith("cluster:"):
        workers = target.split(":", 1)[1]
        try:
            count = int(workers)
        except ValueError:
            count = 0
        if count < 1:
            raise ValueError(
                f"cluster target needs a positive worker count, got {target!r}"
            )
        return "cluster", count
    raise ValueError(
        f"unknown replay target {target!r} "
        "(expected inproc, gateway, or cluster:N)"
    )


@dataclasses.dataclass
class ReplayResult:
    """Outcome of one replay run."""

    target: str
    decisions: list[DecisionRecord]
    trace: Trace
    requests: int
    elapsed: float

    @property
    def throughput(self) -> float:
        """Admission decisions per second of wall-clock replay time."""
        return (
            len(self.decisions) / self.elapsed if self.elapsed > 0 else 0.0
        )


class TraceReplayer:
    """Replays a v2 trace through a rebuilt admission pipeline.

    Parameters
    ----------
    trace:
        The recorded workload (decisions optional — request-only traces
        replay fine; there is just nothing to diff against).
    target:
        ``inproc`` (default), ``gateway``, or ``cluster:N``.
    spec:
        Framework recipe to build the replay pipeline(s) from.  Defaults
        to the recipe recorded in the trace header; replaying a trace
        that recorded no recipe uses ``FrameworkSpec(feedback=False)``
        — the replay-safe default (behavioural feedback reacts to
        *outcomes*, which a challenge-only replay does not reproduce).
    strict_config:
        When True (default) and both the header and the spec carry a
        config hash, a mismatch raises — diffing decisions across
        different pipelines must be asked for explicitly
        (``strict_config=False``), not stumbled into.
    speed:
        0 (default) replays as fast as the pipeline admits; a positive
        value paces requests at ``recorded_gap / speed`` seconds.
    max_batch / batch_window:
        Accumulator tuning for the ``gateway`` target, matching
        :class:`~repro.net.gateway.accumulator.MicroBatcher` defaults.
    """

    def __init__(
        self,
        trace: Trace,
        *,
        target: str = "inproc",
        spec: FrameworkSpec | None = None,
        strict_config: bool = True,
        speed: float = 0.0,
        max_batch: int = 64,
        batch_window: float = 0.002,
    ) -> None:
        if speed < 0:
            raise ValueError(f"speed must be >= 0, got {speed}")
        self.trace = trace
        self.kind, self.workers = parse_target(target)
        self.target = target
        self.speed = speed
        self.max_batch = max_batch
        self.batch_window = batch_window
        self.spec = spec if spec is not None else spec_from_trace(trace)
        header = trace.header
        if (
            strict_config
            and spec is None
            and header is not None
            and header.config_hash
            and spec_hash(self.spec) != header.config_hash
        ):  # pragma: no cover - guards future header/spec skew
            raise ValueError(
                "trace header config hash does not match the rebuilt spec; "
                "pass an explicit spec (or strict_config=False) to diff "
                "across configurations deliberately"
            )

    # ------------------------------------------------------------------
    def run(self) -> ReplayResult:
        """Feed the whole trace through the target; returns the result."""
        entries = list(self.trace)
        frameworks = [
            self.spec.build() for _ in range(self.workers)
        ]
        ring = (
            HashRing(self.workers) if self.kind == "cluster" else None
        )
        recorder = TraceRecorder(
            sources={
                e.request.client_ip: (e.profile, e.true_score)
                for e in entries
            }
        )
        for framework in frameworks:
            recorder.attach(framework.events)

        started = time.perf_counter()
        if entries:
            t0 = entries[0].request.timestamp
            for batch in self._batches(entries):
                self._pace(batch[0].request.timestamp - t0, started)
                self._admit(batch, frameworks, ring, recorder)
        elapsed = time.perf_counter() - started

        replayed = recorder.trace(
            config_hash=spec_hash(self.spec),
            seed=(
                self.trace.header.seed
                if self.trace.header is not None
                else None
            ),
            meta={"replay_target": self.target},
        )
        return ReplayResult(
            target=self.target,
            decisions=replayed.decisions(),
            trace=replayed,
            requests=len(entries),
            elapsed=elapsed,
        )

    # ------------------------------------------------------------------
    def _pace(self, offset: float, started: float) -> None:
        if self.speed <= 0:
            return
        due = started + offset / self.speed
        remaining = due - time.perf_counter()
        if remaining > 0:
            time.sleep(remaining)

    def _batches(self, entries: Sequence[TraceEntry]):
        """Group entries the way the target's admission path would.

        ``inproc`` coalesces same-timestamp arrivals (the simulator's
        behaviour); ``gateway`` applies the accumulator's size/window
        rules to the recorded timestamps; ``cluster`` admits per
        request (each worker batches independently in production, and
        decisions are batch-invariant anyway).
        """
        if self.kind == "gateway":
            batch: list[TraceEntry] = []
            window_start = 0.0
            for entry in entries:
                t = entry.request.timestamp
                if batch and (
                    len(batch) >= self.max_batch
                    or t - window_start > self.batch_window
                ):
                    yield batch
                    batch = []
                if not batch:
                    window_start = t
                batch.append(entry)
            if batch:
                yield batch
        elif self.kind == "inproc":
            batch = []
            for entry in entries:
                if batch and (
                    entry.request.timestamp
                    != batch[-1].request.timestamp
                ):
                    yield batch
                    batch = []
                batch.append(entry)
            if batch:
                yield batch
        else:  # cluster: per-request dispatch
            for entry in entries:
                yield [entry]

    def _admit(
        self,
        batch: Sequence[TraceEntry],
        frameworks: list[AIPoWFramework],
        ring: HashRing | None,
        recorder: TraceRecorder,
    ) -> None:
        requests = [entry.request for entry in batch]
        times = [request.timestamp for request in requests]
        if ring is None:
            framework = frameworks[0]
        else:
            framework = frameworks[ring.shard_for(requests[0].client_ip)]
        try:
            framework.challenge_batch(requests, now=times)
        except ReproError:
            # One bad request must not take down the replay: re-admit
            # scalar, recording an explicit error decision for the
            # offender(s) — mirroring the gateway's fallback.
            for request, at in zip(requests, times):
                try:
                    framework.challenge(request, now=at)
                except ReproError as exc:
                    recorder.capture_error(request, str(exc))


def spec_from_trace(trace: Trace) -> FrameworkSpec:
    """The framework recipe recorded in ``trace``'s header.

    Falls back to the replay-safe default (behavioural feedback off)
    for traces that recorded no recipe.
    """
    header = trace.header
    if header is not None and header.meta.get("spec"):
        return FrameworkSpec(**header.meta["spec"])
    return FrameworkSpec(feedback=False)


# ----------------------------------------------------------------------
# Live replay: the same stream through a real gateway socket
# ----------------------------------------------------------------------
def loopback_plan(entries: Sequence[TraceEntry]) -> dict[str, str]:
    """Deterministic loopback source address per distinct client.

    Linux treats all of ``127.0.0.0/8`` as loopback, so a live replay
    can present each recorded client from its own source IP.  Recorded
    addresses already on loopback are kept verbatim (a re-replay of a
    live capture binds exactly what was recorded).
    """
    plan: dict[str, str] = {}
    used: set[str] = set()
    # Reserve verbatim loopback addresses first so a generated address
    # can never collide with a recorded one (mixed traces would
    # otherwise merge two clients' per-IP state on the server).
    for entry in entries:
        ip = entry.request.client_ip
        if ip.startswith("127.") and ip not in plan:
            plan[ip] = ip
            used.add(ip)
    index = 0
    for entry in entries:
        ip = entry.request.client_ip
        if ip in plan:
            continue
        while True:
            candidate = f"127.0.{index // 250 + 1}.{index % 250 + 1}"
            index += 1
            if candidate not in used:
                break
        plan[ip] = candidate
        used.add(candidate)
    return plan


def replay_live_gateway(
    trace: Trace,
    *,
    spec: FrameworkSpec | None = None,
    max_batch: int = 64,
    batch_window: float = 0.002,
    timeout: float = 10.0,
) -> ReplayResult:
    """Replay ``trace`` through a real :class:`GatewayServer` over TCP.

    Requests are fed sequentially (one connection each, challenge-only)
    so the server-side decision order matches the trace order; each
    distinct recorded client binds its own loopback source address per
    :func:`loopback_plan`.  The decision stream comes from a server-side
    recorder; its request ids are fresh (``rec-N``), so diff against
    the recording with ``match_by="position"``, ignoring ``client_ip``
    when the recorded addresses were not loopback.
    """
    from repro.net.gateway.server import GatewayServer

    spec = spec if spec is not None else spec_from_trace(trace)
    entries = list(trace)
    framework = spec.build()
    recorder = TraceRecorder().attach(framework.events)
    started = time.perf_counter()
    with GatewayServer(
        framework, max_batch=max_batch, batch_window=batch_window
    ) as server:
        feed_live(server.address, entries, timeout=timeout)
    elapsed = time.perf_counter() - started
    replayed = recorder.trace(
        config_hash=spec_hash(spec),
        meta={
            "replay_target": "gateway-live",
            "spec": dataclasses.asdict(spec),
        },
    )
    return ReplayResult(
        target="gateway-live",
        decisions=replayed.decisions(),
        trace=replayed,
        requests=len(entries),
        elapsed=elapsed,
    )


def feed_live(
    address: tuple[str, int],
    entries: Sequence[TraceEntry],
    *,
    timeout: float = 10.0,
) -> None:
    """Feed ``entries`` sequentially through a live-protocol server.

    One connection per request, challenge-only, each distinct client
    bound to its own loopback source address per :func:`loopback_plan`.
    Sequential feeding keeps the server-side decision order equal to
    the trace order — the property every diff downstream relies on.
    """
    plan = loopback_plan(entries)
    for entry in entries:
        _challenge_only(
            address,
            entry.request,
            bind_ip=plan[entry.request.client_ip],
            timeout=timeout,
        )


def _challenge_only(
    address: tuple[str, int],
    request: ClientRequest,
    *,
    bind_ip: str | None,
    timeout: float,
) -> None:
    """One request → puzzle exchange; the reply itself is discarded.

    The decision is captured server-side; the client only needs to
    complete the first protocol round-trip.
    """
    from repro.net.live import protocol

    source = (bind_ip, 0) if bind_ip else None
    with socket.create_connection(
        address, timeout=timeout, source_address=source
    ) as sock:
        protocol.send_line(
            sock,
            protocol.encode_request(
                request.resource, dict(request.features)
            ),
        )
        protocol.read_line(sock)
