"""Campaign runner: named adversarial workloads that record golden traces.

A campaign composes the repo's building blocks into one reproducible
scenario: a framework recipe (:class:`~repro.core.spec.FrameworkSpec`),
client populations drawn from the built-in traffic profiles, volumetric
attackers (flood / botnet / adaptive) as per-profile solve deciders,
and optionally a *protocol probe* — a replay or pre-computation attack
driven through the same framework after the traffic run, so the trace
also witnesses the protocol defenses.

``run_campaign`` replays the campaign's workload through the
deterministic simulator with a :class:`~repro.replay.TraceRecorder`
attached, so the output is a v2 trace carrying every admission decision
— the golden traces under ``tests/golden/`` are exactly these, recorded
once and replayed forever by the differential harness.

Campaign recipes are replay-safe by construction: behavioural feedback
is disabled (it reacts to solve *outcomes*, which a challenge-only
replay does not reproduce) and policies are deterministic, so the
decision stream is a pure function of the recorded request stream.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from repro.attacks import make_attacker
from repro.attacks.protocol_attacks import AttackOutcome
from repro.bench.results import ExperimentResult
from repro.core.errors import ComponentNotFoundError
from repro.core.framework import AIPoWFramework
from repro.core.records import ClientRequest
from repro.core.spec import FrameworkSpec
from repro.net.sim.simulation import Simulation
from repro.pow.solver import HashSolver
from repro.replay.recorder import TraceRecorder, spec_hash
from repro.traffic.generator import WorkloadGenerator
from repro.traffic.profiles import (
    BENIGN_PROFILE,
    MALICIOUS_PROFILE,
    STEALTH_PROFILE,
    ClientProfile,
)
from repro.traffic.trace import Trace

__all__ = ["CampaignSpec", "CampaignRun", "CAMPAIGNS", "run_campaign"]

_PROFILES: dict[str, ClientProfile] = {
    "benign": BENIGN_PROFILE,
    "malicious": MALICIOUS_PROFILE,
    "stealth": STEALTH_PROFILE,
}

#: Deterministic feature vector for protocol probes (canonical schema
#: keys, values inside the corpus range) — probes need scoreable
#: requests but no ground-truth population behind them.
_PROBE_IP = "110.99.99.99"


@dataclasses.dataclass(frozen=True)
class CampaignSpec:
    """One named, fully deterministic adversarial workload.

    Parameters
    ----------
    name / description:
        Registry key and one-line summary.
    spec:
        Framework recipe every run (and every replay) builds from.
        Must be replay-safe: deterministic policy, feedback off.
    duration / seed:
        Open-loop workload length (seconds) and master seed.
    populations:
        ``(profile_name, client_count)`` pairs over the built-in
        profiles.
    attackers:
        ``profile_name -> attacker spec`` mapping
        (see :func:`repro.attacks.make_attacker`).
    protocol_probe:
        ``"replay"``, ``"precompute"``, or ``None`` — an additional
        protocol-level attack driven through the framework after the
        traffic run.
    """

    name: str
    description: str
    spec: FrameworkSpec = dataclasses.field(
        default_factory=lambda: FrameworkSpec(feedback=False)
    )
    duration: float = 4.0
    seed: int = 1234
    populations: tuple[tuple[str, int], ...] = (("benign", 10),)
    attackers: Mapping[str, Mapping] = dataclasses.field(
        default_factory=dict
    )
    protocol_probe: str | None = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if not self.populations:
            raise ValueError("campaign needs at least one population")
        for profile_name, count in self.populations:
            if profile_name not in _PROFILES:
                raise ValueError(
                    f"unknown profile {profile_name!r}; "
                    f"builtins: {sorted(_PROFILES)}"
                )
            if count < 1:
                raise ValueError(
                    f"population count must be >= 1, got {count}"
                )
        population_names = {name for name, _ in self.populations}
        for attacker_profile in self.attackers:
            if attacker_profile not in population_names:
                raise ValueError(
                    f"attacker profile {attacker_profile!r} matches no "
                    f"population (have: {sorted(population_names)}) — "
                    "a typo here would silently record an attack-free "
                    "trace"
                )
        if self.protocol_probe not in (None, "replay", "precompute"):
            raise ValueError(
                f"unknown protocol probe {self.protocol_probe!r}"
            )


@dataclasses.dataclass
class CampaignRun:
    """Everything one campaign run produced."""

    spec: CampaignSpec
    trace: Trace
    result: ExperimentResult
    probe_outcome: AttackOutcome | None = None


CAMPAIGNS: dict[str, CampaignSpec] = {
    campaign.name: campaign
    for campaign in (
        CampaignSpec(
            name="benign-baseline",
            description="ordinary users only — the no-attack control",
            duration=4.0,
            seed=101,
            populations=(("benign", 12),),
        ),
        CampaignSpec(
            name="flood-burst",
            description="volumetric flood that never solves puzzles",
            duration=2.5,
            seed=202,
            populations=(("benign", 8), ("malicious", 3)),
            attackers={"malicious": {"kind": "flood"}},
        ),
        CampaignSpec(
            name="botnet-siege",
            description="solving botnet with a per-bot difficulty budget",
            spec=FrameworkSpec(policy="policy-1", feedback=False),
            duration=2.5,
            seed=303,
            populations=(("benign", 8), ("malicious", 3)),
            attackers={"malicious": {"kind": "botnet", "max_difficulty": 16}},
        ),
        CampaignSpec(
            name="stealth-adaptive",
            description="cost-aware stealth bots that walk away when "
            "puzzles stop paying",
            duration=3.0,
            seed=404,
            populations=(("benign", 8), ("stealth", 4)),
            attackers={
                "stealth": {"kind": "adaptive", "value_per_request": 0.2}
            },
        ),
        CampaignSpec(
            name="replay-probe",
            description="botnet traffic plus a protocol replay attack "
            "against the verifier's replay cache",
            duration=2.0,
            seed=505,
            populations=(("benign", 6), ("malicious", 2)),
            attackers={"malicious": {"kind": "botnet", "max_difficulty": 14}},
            protocol_probe="replay",
        ),
        CampaignSpec(
            name="precompute-probe",
            description="benign traffic plus a seed-prediction "
            "pre-computation attack",
            duration=2.0,
            seed=606,
            populations=(("benign", 6),),
            protocol_probe="precompute",
        ),
    )
}


def run_campaign(
    campaign: CampaignSpec | str,
    *,
    record_path=None,
) -> CampaignRun:
    """Run ``campaign`` through the simulator, recording every decision.

    Returns the run (including the recorded v2 trace); when
    ``record_path`` is given the trace is also written there.
    """
    if isinstance(campaign, str):
        try:
            campaign = CAMPAIGNS[campaign]
        except KeyError:
            raise ComponentNotFoundError(
                "campaign", campaign, tuple(sorted(CAMPAIGNS))
            ) from None

    generator = WorkloadGenerator(seed=campaign.seed)
    populations = [
        (_PROFILES[name], count) for name, count in campaign.populations
    ]
    workload, clients = generator.mixed_trace(
        populations, duration=campaign.duration
    )
    framework = campaign.spec.build()
    recorder = TraceRecorder(
        sources={
            client.ip: (client.profile.name, client.true_score)
            for client in clients
        }
    ).attach(framework.events)

    solve_deciders = {}
    for profile_name, attacker_spec in campaign.attackers.items():
        solve_deciders[profile_name] = make_attacker(
            attacker_spec
        ).should_solve
    patiences = {
        profile.name: profile.patience for profile, _ in populations
    }
    simulation = Simulation(
        framework,
        seed=campaign.seed ^ 0x5CE4,
        solve_deciders=solve_deciders,
        patiences=patiences,
    )
    report = simulation.run(workload)

    probe_outcome = None
    if campaign.protocol_probe is not None:
        recorder.register_source(_PROBE_IP, "probe", 0.0)
        probe_outcome = _run_probe(
            campaign.protocol_probe,
            framework,
            features=dict(clients[0].features),
            start=campaign.duration + 1.0,
        )

    trace = recorder.trace(
        config_hash=spec_hash(campaign.spec),
        seed=campaign.seed,
        meta={
            "campaign": campaign.name,
            "spec": dataclasses.asdict(campaign.spec),
        },
    )
    if record_path is not None:
        trace.dump_jsonl(record_path)

    rows = []
    for cls in report.metrics.class_names():
        metrics = report.metrics.for_class(cls)
        rows.append(
            [
                cls,
                metrics.total,
                metrics.goodput_fraction,
                metrics.difficulties.mean,
            ]
        )
    notes = [
        f"{report.requests} requests over {campaign.duration:g}s, "
        f"{len(trace)} decisions recorded",
        f"framework recipe hash {spec_hash(campaign.spec)}",
    ]
    if probe_outcome is not None:
        held = "defense held" if not probe_outcome.succeeded else "BREACHED"
        notes.append(
            f"protocol probe {probe_outcome.attack}: {held} — "
            f"{probe_outcome.detail}"
        )
    result = ExperimentResult(
        experiment_id=f"campaign:{campaign.name}",
        title=f"Campaign {campaign.name!r} - {campaign.description}",
        headers=["class", "requests", "goodput", "mean_difficulty"],
        rows=rows,
        notes=notes,
        extra={
            "requests": report.requests,
            "served": report.served,
            "decisions": len(trace),
            "probe_succeeded": (
                None if probe_outcome is None else probe_outcome.succeeded
            ),
        },
    )
    return CampaignRun(
        spec=campaign,
        trace=trace,
        result=result,
        probe_outcome=probe_outcome,
    )


# ----------------------------------------------------------------------
# Protocol probes
# ----------------------------------------------------------------------
def _probe_request(features: Mapping, at: float) -> ClientRequest:
    return ClientRequest(
        client_ip=_PROBE_IP,
        resource="/probe",
        timestamp=at,
        features=features,
        request_id="",  # the recorder assigns rec-N ids
    )


def _run_probe(
    kind: str,
    framework: AIPoWFramework,
    *,
    features: Mapping,
    start: float,
) -> AttackOutcome:
    """Drive a protocol attack through the framework's own pipeline.

    Unlike :mod:`repro.attacks.protocol_attacks` (which attack a bare
    generator/verifier pair), the probes here go through
    ``challenge``/``redeem`` so every probe admission lands in the
    recorded trace too.
    """
    solver = HashSolver()
    if kind == "replay":
        challenge = framework.challenge(
            _probe_request(features, start), now=start
        )
        solution = solver.solve(challenge.puzzle, _PROBE_IP)
        first = framework.redeem(challenge, solution, now=start + 0.05)
        second = framework.redeem(challenge, solution, now=start + 0.10)
        if first.served and second.status.value == "replayed":
            return AttackOutcome(
                "replay",
                False,
                "second redemption rejected as replayed: cache held",
            )
        return AttackOutcome(
            "replay",
            second.served,
            f"first={first.status.value} second={second.status.value}",
        )

    # Pre-computation: observe issued seeds, extrapolate the next one,
    # then check the prediction against a real issuance.
    from repro.attacks.protocol_attacks import PrecomputationAttacker

    observed = []
    for index in range(3):
        challenge = framework.challenge(
            _probe_request(features, start + 0.1 * index),
            now=start + 0.1 * index,
        )
        observed.append(challenge.puzzle.seed)
    predicted = PrecomputationAttacker.predict_next_seed(observed)
    real = framework.challenge(
        _probe_request(features, start + 0.3), now=start + 0.3
    )
    if predicted == real.puzzle.seed:
        return AttackOutcome(
            "precomputation",
            True,
            "seed prediction succeeded: seeds are predictable",
        )
    return AttackOutcome(
        "precomputation",
        False,
        "seed prediction failed: unique unpredictable seeds defeat "
        "pre-computation",
    )
