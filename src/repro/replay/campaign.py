"""Campaign runner: named adversarial workloads that record golden traces.

A campaign composes the repo's building blocks into one reproducible
scenario: a framework recipe (:class:`~repro.core.spec.FrameworkSpec`),
client populations drawn from the built-in traffic profiles, volumetric
attackers (flood / botnet / adaptive) as per-profile solve deciders,
and optionally a *protocol probe* — a replay or pre-computation attack
driven through the same framework after the traffic run, so the trace
also witnesses the protocol defenses.

``run_campaign`` replays the campaign's workload through the
deterministic simulator with a :class:`~repro.replay.TraceRecorder`
attached, so the output is a v2 trace carrying every admission decision
— the golden traces under ``tests/golden/`` are exactly these, recorded
once and replayed forever by the differential harness.

Campaign recipes are replay-safe by construction: behavioural feedback
is disabled (it reacts to solve *outcomes*, which a challenge-only
replay does not reproduce) and policies are deterministic, so the
decision stream is a pure function of the recorded request stream.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Mapping

from repro.attacks import make_attacker
from repro.attacks.protocol_attacks import AttackOutcome
from repro.bench.results import ExperimentResult
from repro.core.errors import ComponentNotFoundError
from repro.core.framework import AIPoWFramework
from repro.core.records import ClientRequest
from repro.core.spec import FrameworkSpec
from repro.net.sim.links import LINK_PROFILES
from repro.net.sim.simulation import Simulation
from repro.pow.solver import HashSolver
from repro.replay.recorder import TraceRecorder, spec_hash
from repro.traffic.generator import WorkloadGenerator
from repro.traffic.profiles import (
    BENIGN_PROFILE,
    MALICIOUS_PROFILE,
    STEALTH_PROFILE,
    ClientProfile,
)
from repro.traffic.trace import Trace

__all__ = [
    "CampaignSpec",
    "CampaignRun",
    "ScaleSpec",
    "CAMPAIGNS",
    "run_campaign",
]

#: Per-kind parameter catalogues a :class:`ScaleSpec` pattern may carry
#: (beyond ``kind``) — a misspelled or inapplicable key would otherwise
#: be silently dropped and the scenario would quietly run on defaults.
_PATTERN_PARAMS: dict[str, frozenset] = {
    "poisson": frozenset({"rate"}),
    "flash": frozenset({"waves", "wave_gap", "jitter"}),
    "pulse": frozenset({"rate", "on_seconds", "off_seconds"}),
    "diurnal": frozenset({"rate", "trough"}),
    "ramp": frozenset({"rate"}),
}

#: Flash-pattern defaults, shared between the duration-fit validator
#: and the schedule builder so the bound being checked is the bound
#: being built.
_FLASH_DEFAULTS = {"waves": 1, "wave_gap": 1.0, "jitter": 0.05}


def _flash_params(pattern: Mapping) -> tuple[int, float, float]:
    """``(waves, wave_gap, jitter)`` with the shared defaults applied."""
    return (
        int(pattern.get("waves", _FLASH_DEFAULTS["waves"])),
        float(pattern.get("wave_gap", _FLASH_DEFAULTS["wave_gap"])),
        float(pattern.get("jitter", _FLASH_DEFAULTS["jitter"])),
    )

_PROFILES: dict[str, ClientProfile] = {
    "benign": BENIGN_PROFILE,
    "malicious": MALICIOUS_PROFILE,
    "stealth": STEALTH_PROFILE,
}

#: Deterministic feature vector for protocol probes (canonical schema
#: keys, values inside the corpus range) — probes need scoreable
#: requests but no ground-truth population behind them.
_PROBE_IP = "110.99.99.99"


@dataclasses.dataclass(frozen=True)
class ScaleSpec:
    """Large-scale parameters routing a campaign onto the fast engine.

    A campaign carrying a ``ScaleSpec`` runs through the vectorized
    :class:`~repro.net.sim.fastsim.FastSimulation` over a
    struct-of-arrays population instead of the object-world simulator:
    no per-client objects, no recorded trace (a million-decision trace
    is an artefact nobody replays), cohorts quantized to ``tick``.

    Parameters
    ----------
    tick:
        Cohort quantization grid in seconds — the calendar queue's
        bucket width.
    patterns:
        ``profile_name -> pattern spec`` mapping choosing each
        population's arrival process: ``{"kind": "poisson" | "flash" |
        "pulse" | "diurnal" | "ramp", ...params}``.  Profiles without
        an entry fire Poisson at their profile request rate.
    server:
        Optional ``(challenge, verify, resource)`` cost triple for a
        hardware-scaled server model; ``None`` keeps the calibrated
        single-box defaults.
    feedback:
        Thread a :class:`~repro.net.sim.fastsim.FastFeedback` offset
        table through scoring — the batch port of behavioural
        feedback, for reward-farming scenarios.
    links:
        ``profile_name -> link profile name`` mapping assigning each
        population an access-network profile from
        :data:`~repro.net.sim.links.LINK_PROFILES` (per-agent RTT,
        loss, shared bandwidth, retries).  Profiles without an entry
        keep the ideal channel-only path.  Two populations naming the
        *same* link profile share one uplink queue — the
        shared-bottleneck case where an attack's volume congests
        benign clients and its own solution submissions.  Under
        ``procs > 1`` each worker owns its own link queues (DESIGN
        §1.8's envelope): per-agent delays still agree bit-for-bit,
        but cross-shard coupling through one bottleneck does not.
    procs:
        Worker-process count for the hash-sharded parallel driver
        (:class:`~repro.net.sim.parsim.ParallelSimulation`).  ``1``
        (the default) keeps the in-process engine; larger values
        partition agents by packed-IP hash across that many workers.
        Overridable from the CLI with ``repro campaign --procs N``.
    """

    tick: float = 0.005
    patterns: Mapping[str, Mapping] = dataclasses.field(
        default_factory=dict
    )
    server: tuple[float, float, float] | None = None
    feedback: bool = False
    links: Mapping[str, str] = dataclasses.field(default_factory=dict)
    procs: int = 1

    def __post_init__(self) -> None:
        if self.tick <= 0:
            raise ValueError(f"tick must be > 0, got {self.tick}")
        if self.procs < 1:
            raise ValueError(f"procs must be >= 1, got {self.procs}")
        for profile_name, link_name in self.links.items():
            if link_name not in LINK_PROFILES:
                raise ValueError(
                    f"unknown link profile {link_name!r} for profile "
                    f"{profile_name!r} (catalogue: "
                    f"{', '.join(sorted(LINK_PROFILES))})"
                )
        for profile_name, pattern in self.patterns.items():
            kind = pattern.get("kind", "poisson")
            if kind not in _PATTERN_PARAMS:
                raise ValueError(
                    f"unknown pattern kind {kind!r} for profile "
                    f"{profile_name!r} (catalogue: "
                    f"{', '.join(sorted(_PATTERN_PARAMS))})"
                )
            unknown = set(pattern) - _PATTERN_PARAMS[kind] - {"kind"}
            if unknown:
                raise ValueError(
                    f"pattern for profile {profile_name!r} carries "
                    f"parameters {sorted(unknown)} that {kind!r} does "
                    f"not accept (catalogue: "
                    f"{sorted(_PATTERN_PARAMS[kind])}) — they would be "
                    "silently ignored"
                )


@dataclasses.dataclass(frozen=True)
class CampaignSpec:
    """One named, fully deterministic adversarial workload.

    Parameters
    ----------
    name / description:
        Registry key and one-line summary.
    spec:
        Framework recipe every run (and every replay) builds from.
        Must be replay-safe: deterministic policy, feedback off.
    duration / seed:
        Open-loop workload length (seconds) and master seed.
    populations:
        ``(profile_name, client_count)`` pairs over the built-in
        profiles.
    attackers:
        ``profile_name -> attacker spec`` mapping
        (see :func:`repro.attacks.make_attacker`).
    protocol_probe:
        ``"replay"``, ``"precompute"``, or ``None`` — an additional
        protocol-level attack driven through the framework after the
        traffic run.
    scale:
        Optional :class:`ScaleSpec`; when present the campaign runs on
        the vectorized engine (million-agent scenarios) and records no
        trace.
    """

    name: str
    description: str
    spec: FrameworkSpec = dataclasses.field(
        default_factory=lambda: FrameworkSpec(feedback=False)
    )
    duration: float = 4.0
    seed: int = 1234
    populations: tuple[tuple[str, int], ...] = (("benign", 10),)
    attackers: Mapping[str, Mapping] = dataclasses.field(
        default_factory=dict
    )
    protocol_probe: str | None = None
    scale: ScaleSpec | None = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if not self.populations:
            raise ValueError("campaign needs at least one population")
        for profile_name, count in self.populations:
            if profile_name not in _PROFILES:
                raise ValueError(
                    f"unknown profile {profile_name!r}; "
                    f"builtins: {sorted(_PROFILES)}"
                )
            if count < 1:
                raise ValueError(
                    f"population count must be >= 1, got {count}"
                )
        population_names = {name for name, _ in self.populations}
        for attacker_profile in self.attackers:
            if attacker_profile not in population_names:
                raise ValueError(
                    f"attacker profile {attacker_profile!r} matches no "
                    f"population (have: {sorted(population_names)}) — "
                    "a typo here would silently record an attack-free "
                    "trace"
                )
        if self.protocol_probe not in (None, "replay", "precompute"):
            raise ValueError(
                f"unknown protocol probe {self.protocol_probe!r}"
            )
        if self.scale is not None:
            for pattern_profile in self.scale.patterns:
                if pattern_profile not in population_names:
                    raise ValueError(
                        f"pattern profile {pattern_profile!r} matches no "
                        f"population (have: {sorted(population_names)})"
                    )
            for link_profile in self.scale.links:
                if link_profile not in population_names:
                    raise ValueError(
                        f"link profile assignment {link_profile!r} "
                        f"matches no population (have: "
                        f"{sorted(population_names)}) — a typo here "
                        "would silently run on an ideal network"
                    )
            if self.protocol_probe is not None:
                raise ValueError(
                    "protocol probes are object-world; large-scale "
                    "campaigns cannot carry one"
                )
            if self.scale.feedback and self.spec.feedback:
                raise ValueError(
                    "scale.feedback models behavioural feedback as an "
                    "array offset table; the framework recipe must use "
                    "feedback=False (a stateful model would force "
                    "framework admission and neither feedback path "
                    "would actually run)"
                )
            for profile_name, pattern in self.scale.patterns.items():
                if pattern.get("kind") != "flash":
                    continue
                # Every other pattern kind is duration-bounded by
                # construction; wave schedules must fit too, or the
                # result would misreport the workload window.
                waves, wave_gap, jitter = _flash_params(pattern)
                last_fire = (waves - 1) * wave_gap + jitter
                if last_fire > self.duration:
                    raise ValueError(
                        f"flash pattern for profile {profile_name!r} "
                        f"fires until t={last_fire:g}s, past the "
                        f"campaign duration of {self.duration:g}s"
                    )

    @property
    def agents(self) -> int:
        """Total client count across populations."""
        return sum(count for _, count in self.populations)


@dataclasses.dataclass
class CampaignRun:
    """Everything one campaign run produced.

    ``trace`` is ``None`` for large-scale (``scale``) campaigns — they
    aggregate outcomes instead of recording per-decision traces.
    """

    spec: CampaignSpec
    trace: Trace | None
    result: ExperimentResult
    probe_outcome: AttackOutcome | None = None


CAMPAIGNS: dict[str, CampaignSpec] = {
    campaign.name: campaign
    for campaign in (
        CampaignSpec(
            name="benign-baseline",
            description="ordinary users only — the no-attack control",
            duration=4.0,
            seed=101,
            populations=(("benign", 12),),
        ),
        CampaignSpec(
            name="flood-burst",
            description="volumetric flood that never solves puzzles",
            duration=2.5,
            seed=202,
            populations=(("benign", 8), ("malicious", 3)),
            attackers={"malicious": {"kind": "flood"}},
        ),
        CampaignSpec(
            name="botnet-siege",
            description="solving botnet with a per-bot difficulty budget",
            spec=FrameworkSpec(policy="policy-1", feedback=False),
            duration=2.5,
            seed=303,
            populations=(("benign", 8), ("malicious", 3)),
            attackers={"malicious": {"kind": "botnet", "max_difficulty": 16}},
        ),
        CampaignSpec(
            name="stealth-adaptive",
            description="cost-aware stealth bots that walk away when "
            "puzzles stop paying",
            duration=3.0,
            seed=404,
            populations=(("benign", 8), ("stealth", 4)),
            attackers={
                "stealth": {"kind": "adaptive", "value_per_request": 0.2}
            },
        ),
        CampaignSpec(
            name="replay-probe",
            description="botnet traffic plus a protocol replay attack "
            "against the verifier's replay cache",
            duration=2.0,
            seed=505,
            populations=(("benign", 6), ("malicious", 2)),
            attackers={"malicious": {"kind": "botnet", "max_difficulty": 14}},
            protocol_probe="replay",
        ),
        CampaignSpec(
            name="precompute-probe",
            description="benign traffic plus a seed-prediction "
            "pre-computation attack",
            duration=2.0,
            seed=606,
            populations=(("benign", 6),),
            protocol_probe="precompute",
        ),
        # ------------------------------------------------------------
        # Large-scale scenarios (vectorized engine; no recorded trace).
        # A hardware-scaled server model (fast challenge/verify paths,
        # 50 us resource cost) stands in for a production box; the
        # calibrated single-machine defaults would turn any
        # million-request burst into a multi-hour queue.
        # ------------------------------------------------------------
        CampaignSpec(
            name="flash-crowd-1m",
            description="one million legitimate users stampede in a "
            "quarter-second wave — the benign overload case",
            duration=5.0,
            seed=710,
            populations=(("benign", 1_000_000),),
            scale=ScaleSpec(
                tick=0.02,
                patterns={
                    "benign": {"kind": "flash", "waves": 1, "jitter": 0.25}
                },
                server=(1e-5, 5e-6, 5e-5),
            ),
        ),
        CampaignSpec(
            name="flash-crowd-100k",
            description="hundred-thousand-user flash crowd in two "
            "waves — the CI-sized sibling of flash-crowd-1m",
            duration=4.0,
            seed=711,
            populations=(("benign", 100_000),),
            scale=ScaleSpec(
                tick=0.01,
                patterns={
                    "benign": {
                        "kind": "flash",
                        "waves": 2,
                        "wave_gap": 1.5,
                        "jitter": 0.1,
                    }
                },
                server=(1e-5, 5e-6, 5e-5),
            ),
        ),
        CampaignSpec(
            name="flash-crowd-4m",
            description="four million users stampede in one wave, "
            "hash-sharded across four worker processes — the "
            "multi-core campaign (tune workers with --procs)",
            duration=5.0,
            seed=717,
            populations=(("benign", 4_000_000),),
            scale=ScaleSpec(
                tick=0.02,
                patterns={
                    "benign": {"kind": "flash", "waves": 1, "jitter": 0.5}
                },
                server=(1e-5, 5e-6, 5e-5),
                procs=4,
            ),
        ),
        CampaignSpec(
            name="pulse-botnet-100k",
            description="100k-bot botnet pulsing in on/off waves over "
            "a steady benign population",
            spec=FrameworkSpec(policy="policy-1", feedback=False),
            duration=4.0,
            seed=712,
            populations=(("benign", 20_000), ("malicious", 100_000)),
            attackers={"malicious": {"kind": "botnet", "max_difficulty": 16}},
            scale=ScaleSpec(
                tick=0.005,
                patterns={
                    "malicious": {
                        "kind": "pulse",
                        "rate": 3.0,
                        "on_seconds": 0.5,
                        "off_seconds": 1.0,
                    }
                },
                server=(1e-5, 5e-6, 5e-5),
            ),
        ),
        CampaignSpec(
            name="diurnal-stealth-mix",
            description="diurnal benign load with a stealth adaptive "
            "botnet hiding in the daily rhythm",
            duration=6.0,
            seed=713,
            populations=(("benign", 150_000), ("stealth", 10_000)),
            attackers={
                "stealth": {"kind": "adaptive", "value_per_request": 0.2}
            },
            scale=ScaleSpec(
                tick=0.005,
                patterns={
                    "benign": {
                        "kind": "diurnal",
                        "rate": 1.0,
                        "trough": 0.1,
                    },
                    "stealth": {"kind": "poisson", "rate": 5.0},
                },
                server=(1e-5, 5e-6, 5e-5),
            ),
        ),
        CampaignSpec(
            name="poison-ramp-250k",
            description="50k bots farm behavioural-feedback rewards "
            "on a linear ramp under 200k benign users — the "
            "feedback-poisoning case (array-form offsets)",
            duration=5.0,
            seed=714,
            populations=(("benign", 200_000), ("malicious", 50_000)),
            attackers={"malicious": {"kind": "botnet", "max_difficulty": 20}},
            scale=ScaleSpec(
                tick=0.01,
                patterns={
                    "benign": {"kind": "poisson", "rate": 0.3},
                    "malicious": {"kind": "ramp", "rate": 4.0},
                },
                server=(1e-5, 5e-6, 5e-5),
                feedback=True,
            ),
        ),
        # ------------------------------------------------------------
        # Lossy-network scenarios (scale campaigns + link substrate).
        # ------------------------------------------------------------
        CampaignSpec(
            name="mobile-flash-crowd",
            description="10k mobile users flash-crowd through a lossy "
            "high-RTT access network — retries and loss reshape the "
            "arrival process before admission ever sees it",
            duration=4.0,
            seed=715,
            populations=(("benign", 10_000),),
            scale=ScaleSpec(
                tick=0.005,
                patterns={
                    "benign": {
                        "kind": "flash",
                        "waves": 2,
                        "wave_gap": 1.5,
                        "jitter": 0.2,
                    }
                },
                server=(1e-5, 5e-6, 5e-5),
                links={"benign": "lossy-mobile"},
            ),
        ),
        CampaignSpec(
            name="congestion-coupled-flood",
            description="a pulsing botnet shares one bandwidth-capped "
            "uplink with benign users — the flood congests the victims "
            "*and* the bots' own solution submissions",
            spec=FrameworkSpec(policy="policy-1", feedback=False),
            duration=3.0,
            seed=716,
            populations=(("benign", 20_000), ("malicious", 40_000)),
            attackers={"malicious": {"kind": "botnet", "max_difficulty": 16}},
            scale=ScaleSpec(
                tick=0.005,
                patterns={
                    "malicious": {
                        "kind": "pulse",
                        "rate": 3.0,
                        "on_seconds": 0.5,
                        "off_seconds": 1.0,
                    }
                },
                server=(1e-5, 5e-6, 5e-5),
                # Same link profile name on both populations = one
                # shared uplink queue (see ScaleSpec.links).
                links={
                    "benign": "congested-uplink",
                    "malicious": "congested-uplink",
                },
            ),
        ),
    )
}


def run_campaign(
    campaign: CampaignSpec | str,
    *,
    record_path=None,
    tracer=None,
    snapshot_path=None,
) -> CampaignRun:
    """Run ``campaign`` through the simulator, recording every decision.

    Returns the run (including the recorded v2 trace); when
    ``record_path`` is given the trace is also written there.  An
    optional :class:`~repro.obs.tracing.RequestTracer` rides on the
    framework's event bus and samples per-request spans (callback
    campaigns only: the vectorized engine emits no per-request
    events).  ``snapshot_path`` turns on the periodic registry
    snapshot writer (scale campaigns only: that is where the
    phase-timing and link registries live).
    """
    if isinstance(campaign, str):
        try:
            campaign = CAMPAIGNS[campaign]
        except KeyError:
            raise ComponentNotFoundError(
                "campaign", campaign, tuple(sorted(CAMPAIGNS))
            ) from None

    if campaign.scale is not None:
        if record_path is not None:
            raise ValueError(
                f"campaign {campaign.name!r} is large-scale: it "
                "aggregates outcomes instead of recording a "
                "per-decision trace"
            )
        if tracer is not None:
            raise ValueError(
                f"campaign {campaign.name!r} is large-scale: the "
                "vectorized engine emits no per-request events for a "
                "tracer to sample"
            )
        return _run_mega_campaign(campaign, snapshot_path=snapshot_path)
    if snapshot_path is not None:
        raise ValueError(
            f"campaign {campaign.name!r} is not large-scale: metric "
            "snapshots cover the vectorized engine's phase and link "
            "registries (scale campaigns only)"
        )

    generator = WorkloadGenerator(seed=campaign.seed)
    populations = [
        (_PROFILES[name], count) for name, count in campaign.populations
    ]
    workload, clients = generator.mixed_trace(
        populations, duration=campaign.duration
    )
    framework = campaign.spec.build()
    recorder = TraceRecorder(
        sources={
            client.ip: (client.profile.name, client.true_score)
            for client in clients
        }
    ).attach(framework.events)
    if tracer is not None:
        tracer.attach(framework.events)

    solve_deciders = {}
    for profile_name, attacker_spec in campaign.attackers.items():
        solve_deciders[profile_name] = make_attacker(
            attacker_spec
        ).should_solve
    patiences = {
        profile.name: profile.patience for profile, _ in populations
    }
    simulation = Simulation(
        framework,
        seed=campaign.seed ^ 0x5CE4,
        solve_deciders=solve_deciders,
        patiences=patiences,
    )
    report = simulation.run(workload)

    probe_outcome = None
    if campaign.protocol_probe is not None:
        recorder.register_source(_PROBE_IP, "probe", 0.0)
        probe_outcome = _run_probe(
            campaign.protocol_probe,
            framework,
            features=dict(clients[0].features),
            start=campaign.duration + 1.0,
        )

    trace = recorder.trace(
        config_hash=spec_hash(campaign.spec),
        seed=campaign.seed,
        meta={
            "campaign": campaign.name,
            "spec": dataclasses.asdict(campaign.spec),
        },
    )
    if record_path is not None:
        trace.dump_jsonl(record_path)

    rows = []
    for cls in report.metrics.class_names():
        metrics = report.metrics.for_class(cls)
        rows.append(
            [
                cls,
                metrics.total,
                metrics.goodput_fraction,
                metrics.difficulties.mean,
            ]
        )
    notes = [
        f"{report.requests} requests over {campaign.duration:g}s, "
        f"{len(trace)} decisions recorded",
        f"framework recipe hash {spec_hash(campaign.spec)}",
    ]
    if probe_outcome is not None:
        held = "defense held" if not probe_outcome.succeeded else "BREACHED"
        notes.append(
            f"protocol probe {probe_outcome.attack}: {held} — "
            f"{probe_outcome.detail}"
        )
    result = ExperimentResult(
        experiment_id=f"campaign:{campaign.name}",
        title=f"Campaign {campaign.name!r} - {campaign.description}",
        headers=["class", "requests", "goodput", "mean_difficulty"],
        rows=rows,
        notes=notes,
        extra={
            "requests": report.requests,
            "served": report.served,
            "decisions": len(trace),
            "probe_succeeded": (
                None if probe_outcome is None else probe_outcome.succeeded
            ),
        },
    )
    return CampaignRun(
        spec=campaign,
        trace=trace,
        result=result,
        probe_outcome=probe_outcome,
    )


# ----------------------------------------------------------------------
# Large-scale campaigns (vectorized engine)
# ----------------------------------------------------------------------
def _build_fires(campaign: CampaignSpec, population, rng):
    """Per-profile fire schedules merged into one SoA workload."""
    import numpy as np

    from repro.net.sim import patterns as pat

    scale = campaign.scale
    schedules = []
    offset = 0
    for (profile_name, count), profile in zip(
        campaign.populations, population.profiles
    ):
        agents = np.arange(offset, offset + count, dtype=np.int64)
        offset += count
        pattern = dict(scale.patterns.get(profile_name, {}))
        kind = pattern.get("kind", "poisson")
        rate = float(pattern.get("rate", profile.request_rate))
        if kind == "flash":
            waves, wave_gap, jitter = _flash_params(pattern)
            schedules.append(
                pat.flash_waves(
                    agents,
                    rng,
                    waves=waves,
                    wave_gap=wave_gap,
                    jitter=jitter,
                )
            )
        elif kind == "pulse":
            schedules.append(
                pat.pulse_fires(
                    agents,
                    rate,
                    campaign.duration,
                    rng,
                    on_seconds=float(pattern.get("on_seconds", 1.0)),
                    off_seconds=float(pattern.get("off_seconds", 4.0)),
                )
            )
        elif kind == "diurnal":
            schedules.append(
                pat.diurnal_fires(
                    agents,
                    rate,
                    campaign.duration,
                    rng,
                    trough=float(pattern.get("trough", 0.15)),
                )
            )
        elif kind == "ramp":
            schedules.append(
                pat.ramp_fires(agents, rate, campaign.duration, rng)
            )
        else:  # poisson
            schedules.append(
                pat.poisson_fires(agents, rate, campaign.duration, rng)
            )
    return pat.merge_schedules(*schedules)


def _run_mega_campaign(
    campaign: CampaignSpec, snapshot_path=None
) -> CampaignRun:
    """Run a ``scale`` campaign through the vectorized engine."""
    import numpy as np

    from repro.net.sim.agents import AgentPopulation
    from repro.net.sim.fastsim import FastFeedback, FastSimulation
    from repro.net.sim.simulation import ServerModel

    scale = campaign.scale
    population = AgentPopulation.make(
        [
            (_PROFILES[name], count)
            for name, count in campaign.populations
        ],
        seed=campaign.seed,
    )
    rng = np.random.default_rng(campaign.seed ^ 0x3AB)
    fire_times, fire_agents = _build_fires(campaign, population, rng)

    if scale.procs > 1:
        return _run_mega_parallel(
            campaign, population, fire_times, fire_agents,
            snapshot_path=snapshot_path,
        )

    framework = campaign.spec.build()
    solve_deciders = {
        profile_name: make_attacker(attacker_spec)
        for profile_name, attacker_spec in campaign.attackers.items()
    }
    server_model = (
        ServerModel(*scale.server) if scale.server is not None else None
    )
    links = None
    if scale.links:
        from repro.net.sim.links import LinkSet

        links = LinkSet(scale.links, seed=campaign.seed ^ 0x11AB)
    from repro.obs.registry import MetricsRegistry, PhaseTimer

    registry = MetricsRegistry()
    phase_timer = PhaseTimer()
    simulation = FastSimulation(
        framework,
        server_model=server_model,
        seed=campaign.seed ^ 0x5CE4,
        solve_deciders=solve_deciders,
        hash_rates={p.name: p.hash_rate for p in population.profiles},
        patiences={p.name: p.patience for p in population.profiles},
        tick=scale.tick,
        links=links,
        phase_timer=phase_timer,
    )
    feedback = (
        FastFeedback(len(population)) if scale.feedback else None
    )

    def _live_snapshot() -> dict:
        # The run mutates phase_timer and the link stats in place;
        # publishing them into a throwaway registry per snapshot gives
        # the writer monotone counters without double-counting the
        # run-end publish below.
        live = MetricsRegistry()
        phase_timer.publish(live)
        if simulation.link_stats is not None:
            simulation.link_stats.publish(live)
        return live.snapshot()

    writer = None
    if snapshot_path is not None:
        from repro.obs.http import SnapshotWriter

        writer = SnapshotWriter(snapshot_path, _live_snapshot).start()
    started = time.perf_counter()
    try:
        report = simulation.run_fires(
            population, fire_times, fire_agents, feedback=feedback
        )
    finally:
        wall = time.perf_counter() - started
        if writer is not None:
            writer.close()
    phase_timer.publish(registry)
    if report.link_stats is not None:
        report.link_stats.publish(registry)

    rows = _mega_rows(report)
    events_per_second = (
        report.events_processed / wall if wall > 0 else 0.0
    )
    notes = [
        f"{campaign.agents:,} agents, {report.requests:,} requests over "
        f"{campaign.duration:g}s simulated",
        f"vectorized engine: {wall:.2f}s wall, "
        f"{events_per_second:,.0f} events/s, "
        f"{simulation.arrival_batches} arrival cohorts "
        f"(largest {simulation.largest_arrival_batch:,}), "
        f"tick {scale.tick:g}s",
        f"framework recipe hash {spec_hash(campaign.spec)}",
        f"phase timing: {phase_timer.render()}",
    ]
    if report.link_stats is not None:
        notes.append(f"network: {report.link_stats.summary()}")
    if feedback is not None:
        farming = _farming_note(campaign, population, feedback.offset)
        if farming is not None:
            notes.append(farming)
    result = ExperimentResult(
        experiment_id=f"campaign:{campaign.name}",
        title=f"Campaign {campaign.name!r} - {campaign.description}",
        headers=["class", "requests", "goodput", "mean_difficulty"],
        rows=rows,
        notes=notes,
        extra={
            "agents": campaign.agents,
            "requests": report.requests,
            "served": report.served,
            "events": report.events_processed,
            "wall_seconds": wall,
            "events_per_second": events_per_second,
            "phase_timings": phase_timer.summary(),
            "metrics_snapshot": registry.snapshot(),
            **(
                {"link_stats": report.link_stats.as_dict()}
                if report.link_stats is not None
                else {}
            ),
        },
    )
    return CampaignRun(
        spec=campaign, trace=None, result=result, probe_outcome=None
    )


def _mega_rows(report) -> list[list]:
    """Per-class result rows shared by both scale-campaign engines."""
    rows = []
    for cls in report.metrics.class_names():
        metrics = report.metrics.for_class(cls)
        rows.append(
            [
                cls,
                metrics.total,
                metrics.goodput_fraction,
                metrics.difficulties.mean,
            ]
        )
    return rows


def _farming_note(campaign, population, offsets) -> str | None:
    """The feedback reward-farming summary line, or ``None``.

    "Farming" means the *attackers* earning reward offsets; benign
    clients accumulate them too simply by being served, so count only
    agents from attacker-backed profiles.
    """
    import numpy as np

    attacker_ids = [
        pid
        for pid, profile in enumerate(population.profiles)
        if profile.name in campaign.attackers
    ]
    attacker_mask = np.isin(population.profile_id, attacker_ids)
    attacker_offsets = offsets[attacker_mask]
    if not attacker_offsets.size:
        return None
    farmed = int(np.sum(attacker_offsets < -1e-12))
    return (
        f"feedback offsets farmed by {farmed:,} of "
        f"{attacker_offsets.size:,} attacking clients "
        f"(attacker mean offset {float(attacker_offsets.mean()):+.3f}, "
        f"population mean {float(offsets.mean()):+.3f})"
    )


def _run_mega_parallel(
    campaign: CampaignSpec,
    population,
    fire_times,
    fire_agents,
    snapshot_path=None,
) -> CampaignRun:
    """Run a ``scale`` campaign through the process-parallel driver."""
    from repro.net.sim.parsim import (
        ParallelSimulation,
        render_phase_summary,
    )

    scale = campaign.scale
    if snapshot_path is not None:
        raise ValueError(
            f"campaign {campaign.name!r} runs {scale.procs} worker "
            "processes: the periodic snapshot writer samples the "
            "in-process engine, which a parallel run never builds — "
            "use --procs 1 for live snapshots"
        )
    simulation = ParallelSimulation(
        campaign.spec,
        procs=scale.procs,
        seed=campaign.seed ^ 0x5CE4,
        server=scale.server,
        attacker_specs=campaign.attackers,
        hash_rates={p.name: p.hash_rate for p in population.profiles},
        patiences={p.name: p.patience for p in population.profiles},
        tick=scale.tick,
        links=scale.links,
        links_seed=campaign.seed ^ 0x11AB,
        feedback=scale.feedback,
    )
    started = time.perf_counter()
    outcome = simulation.run_fires(population, fire_times, fire_agents)
    wall = time.perf_counter() - started
    report = outcome.report

    rows = _mega_rows(report)
    events_per_second = (
        report.events_processed / wall if wall > 0 else 0.0
    )
    phase_timings = outcome.phase_summary()
    notes = [
        f"{campaign.agents:,} agents, {report.requests:,} requests over "
        f"{campaign.duration:g}s simulated",
        f"parallel engine: {wall:.2f}s wall, "
        f"{events_per_second:,.0f} events/s, "
        f"{scale.procs} workers x {outcome.epoch:g}s epochs, "
        f"{outcome.arrival_batches} arrival cohorts "
        f"(largest {outcome.largest_arrival_batch:,}), "
        f"tick {scale.tick:g}s",
        "shard requests: "
        + ", ".join(f"{n:,}" for n in outcome.shard_requests),
        f"framework recipe hash {spec_hash(campaign.spec)}",
        f"phase timing (all workers): "
        f"{render_phase_summary(phase_timings)}",
    ]
    if report.link_stats is not None:
        notes.append(f"network: {report.link_stats.summary()}")
    if outcome.feedback_offsets is not None:
        farming = _farming_note(
            campaign, population, outcome.feedback_offsets
        )
        if farming is not None:
            notes.append(farming)
    result = ExperimentResult(
        experiment_id=f"campaign:{campaign.name}",
        title=f"Campaign {campaign.name!r} - {campaign.description}",
        headers=["class", "requests", "goodput", "mean_difficulty"],
        rows=rows,
        notes=notes,
        extra={
            "agents": campaign.agents,
            "requests": report.requests,
            "served": report.served,
            "events": report.events_processed,
            "wall_seconds": wall,
            "events_per_second": events_per_second,
            "procs": scale.procs,
            "epoch": outcome.epoch,
            "shard_requests": list(outcome.shard_requests),
            "phase_timings": phase_timings,
            "metrics_snapshot": outcome.metrics_snapshot,
            **(
                {"link_stats": report.link_stats.as_dict()}
                if report.link_stats is not None
                else {}
            ),
        },
    )
    return CampaignRun(
        spec=campaign, trace=None, result=result, probe_outcome=None
    )


# ----------------------------------------------------------------------
# Protocol probes
# ----------------------------------------------------------------------
def _probe_request(features: Mapping, at: float) -> ClientRequest:
    return ClientRequest(
        client_ip=_PROBE_IP,
        resource="/probe",
        timestamp=at,
        features=features,
        request_id="",  # the recorder assigns rec-N ids
    )


def _run_probe(
    kind: str,
    framework: AIPoWFramework,
    *,
    features: Mapping,
    start: float,
) -> AttackOutcome:
    """Drive a protocol attack through the framework's own pipeline.

    Unlike :mod:`repro.attacks.protocol_attacks` (which attack a bare
    generator/verifier pair), the probes here go through
    ``challenge``/``redeem`` so every probe admission lands in the
    recorded trace too.
    """
    solver = HashSolver()
    if kind == "replay":
        challenge = framework.challenge(
            _probe_request(features, start), now=start
        )
        solution = solver.solve(challenge.puzzle, _PROBE_IP)
        first = framework.redeem(challenge, solution, now=start + 0.05)
        second = framework.redeem(challenge, solution, now=start + 0.10)
        if first.served and second.status.value == "replayed":
            return AttackOutcome(
                "replay",
                False,
                "second redemption rejected as replayed: cache held",
            )
        return AttackOutcome(
            "replay",
            second.served,
            f"first={first.status.value} second={second.status.value}",
        )

    # Pre-computation: observe issued seeds, extrapolate the next one,
    # then check the prediction against a real issuance.
    from repro.attacks.protocol_attacks import PrecomputationAttacker

    observed = []
    for index in range(3):
        challenge = framework.challenge(
            _probe_request(features, start + 0.1 * index),
            now=start + 0.1 * index,
        )
        observed.append(challenge.puzzle.seed)
    predicted = PrecomputationAttacker.predict_next_seed(observed)
    real = framework.challenge(
        _probe_request(features, start + 0.3), now=start + 0.3
    )
    if predicted == real.puzzle.seed:
        return AttackOutcome(
            "precomputation",
            True,
            "seed prediction succeeded: seeds are predictable",
        )
    return AttackOutcome(
        "precomputation",
        False,
        "seed prediction failed: unique unpredictable seeds defeat "
        "pre-computation",
    )
