"""Record/replay subsystem: traces as the primary regression instrument.

Three pieces turn live and simulated traffic into executable
regressions (DESIGN.md §1.4):

* :class:`TraceRecorder` captures every admission decision from any
  serving path (in-process, gateway, cluster worker, simulator) into a
  v2 :class:`~repro.traffic.trace.Trace`;
* :class:`TraceReplayer` feeds a recorded request stream back through a
  freshly built pipeline — in-process, gateway-batched, or sharded like
  the cluster — at recorded or accelerated pacing;
* :func:`diff_decisions` compares two decision streams field-by-field
  and renders a structured report.

:mod:`repro.replay.campaign` composes attackers and traffic profiles
into named scenario specs whose recorded runs are the golden traces
under ``tests/golden/``.
"""

from repro.replay.campaign import (
    CAMPAIGNS,
    CampaignRun,
    CampaignSpec,
    ScaleSpec,
    run_campaign,
)
from repro.replay.diff import DiffReport, FieldDiff, diff_decisions
from repro.replay.recorder import TraceRecorder, spec_hash
from repro.replay.replayer import (
    ReplayResult,
    TraceReplayer,
    feed_live,
    loopback_plan,
    parse_target,
    replay_live_gateway,
    spec_from_trace,
)

__all__ = [
    "CAMPAIGNS",
    "CampaignRun",
    "CampaignSpec",
    "DiffReport",
    "FieldDiff",
    "ReplayResult",
    "TraceRecorder",
    "TraceReplayer",
    "diff_decisions",
    "feed_live",
    "loopback_plan",
    "parse_target",
    "replay_live_gateway",
    "ScaleSpec",
    "run_campaign",
    "spec_from_trace",
    "spec_hash",
]
