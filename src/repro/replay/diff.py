"""Differential harness: compare two admission decision streams.

The regression instrument behind the golden traces: a recorded decision
stream and a replayed one (or the streams of two different serving
configurations) are compared field-by-field over the deterministic
decision fields (:meth:`DecisionRecord.canonical`), producing a
structured :class:`DiffReport` — identical/diverged verdict, per-field
mismatches with request ids, and ids present on only one side.

Streams are matched by ``request_id`` by default (replays preserve the
recorded ids).  Live replays, where the serving transport assigns fresh
ids, match by position instead and ignore the id field.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Iterable, Sequence

from repro.core.records import DecisionRecord

__all__ = ["FieldDiff", "DiffReport", "diff_decisions"]


@dataclasses.dataclass(frozen=True, slots=True)
class FieldDiff:
    """One field-level divergence between matched decisions."""

    request_id: str
    field: str
    left: object
    right: object

    def describe(self) -> str:
        return (
            f"{self.request_id or '<no id>'}: {self.field} "
            f"{self.left!r} -> {self.right!r}"
        )


@dataclasses.dataclass
class DiffReport:
    """Structured outcome of one decision-stream comparison."""

    left_total: int
    right_total: int
    matched: int
    field_diffs: list[FieldDiff] = dataclasses.field(default_factory=list)
    #: Request ids (or positions, as ``#N``) present only on the left.
    left_only: list[str] = dataclasses.field(default_factory=list)
    #: Request ids (or positions, as ``#N``) present only on the right.
    right_only: list[str] = dataclasses.field(default_factory=list)

    @property
    def identical(self) -> bool:
        """True when both streams agree on every compared field."""
        return (
            not self.field_diffs
            and not self.left_only
            and not self.right_only
        )

    @property
    def diverged_requests(self) -> int:
        """Number of matched decisions with at least one field diff."""
        return len({diff.request_id for diff in self.field_diffs})

    def render(self, limit: int = 20) -> str:
        """Human-readable report (truncated to ``limit`` field diffs)."""
        lines = [
            f"decision streams: left={self.left_total} "
            f"right={self.right_total} matched={self.matched}",
        ]
        if self.identical:
            lines.append("IDENTICAL: every compared field matches")
            return "\n".join(lines)
        lines.append(
            f"DIVERGED: {self.diverged_requests} decision(s) differ, "
            f"{len(self.left_only)} only-left, "
            f"{len(self.right_only)} only-right"
        )
        for diff in self.field_diffs[:limit]:
            lines.append(f"  {diff.describe()}")
        hidden = len(self.field_diffs) - limit
        if hidden > 0:
            lines.append(f"  ... {hidden} more field diff(s)")
        if self.left_only:
            lines.append(f"  only-left ids: {self.left_only[:10]}")
        if self.right_only:
            lines.append(f"  only-right ids: {self.right_only[:10]}")
        return "\n".join(lines)

    def to_mapping(self) -> dict:
        """JSON-safe mapping (the CI artifact format)."""
        return {
            "identical": self.identical,
            "left_total": self.left_total,
            "right_total": self.right_total,
            "matched": self.matched,
            "field_diffs": [
                {
                    "request_id": diff.request_id,
                    "field": diff.field,
                    "left": diff.left,
                    "right": diff.right,
                }
                for diff in self.field_diffs
            ],
            "left_only": list(self.left_only),
            "right_only": list(self.right_only),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_mapping(), indent=2, sort_keys=True)


def diff_decisions(
    left: Iterable[DecisionRecord],
    right: Iterable[DecisionRecord],
    *,
    match_by: str = "request_id",
    ignore: Iterable[str] = (),
) -> DiffReport:
    """Compare two decision streams field-by-field.

    Parameters
    ----------
    left / right:
        Decision streams (e.g. ``trace.decisions()`` vs a replay's).
    match_by:
        ``"request_id"`` pairs decisions by id (order-independent;
        duplicates on either side are a :class:`ValueError` — recorded
        traces guarantee uniqueness).  ``"position"`` pairs the n-th
        decision of each stream — for live replays whose transport
        assigned fresh ids (``request_id`` is then ignored).
    ignore:
        Additional canonical field names to exclude from comparison
        (e.g. ``{"score"}`` when diffing across different models on
        purpose).
    """
    left = list(left)
    right = list(right)
    skip = set(ignore)
    if match_by == "position":
        skip.add("request_id")
        pairs = list(zip(left, right))
        left_only = [f"#{i}" for i in range(len(right), len(left))]
        right_only = [f"#{i}" for i in range(len(left), len(right))]
    elif match_by == "request_id":
        left_ids = _index_by_id(left, "left")
        right_ids = _index_by_id(right, "right")
        pairs = [
            (record, right_ids[request_id])
            for request_id, record in left_ids.items()
            if request_id in right_ids
        ]
        left_only = [rid for rid in left_ids if rid not in right_ids]
        right_only = [rid for rid in right_ids if rid not in left_ids]
    else:
        raise ValueError(
            f"match_by must be 'request_id' or 'position', got {match_by!r}"
        )

    field_diffs: list[FieldDiff] = []
    for index, (a, b) in enumerate(pairs):
        canon_a, canon_b = a.canonical(), b.canonical()
        for field, value_a in canon_a.items():
            if field in skip:
                continue
            value_b = canon_b[field]
            if value_a != value_b:
                field_diffs.append(
                    FieldDiff(
                        request_id=a.request_id or f"#{index}",
                        field=field,
                        left=value_a,
                        right=value_b,
                    )
                )
    return DiffReport(
        left_total=len(left),
        right_total=len(right),
        matched=len(pairs),
        field_diffs=field_diffs,
        left_only=left_only,
        right_only=right_only,
    )


def _index_by_id(
    records: Sequence[DecisionRecord], side: str
) -> dict[str, DecisionRecord]:
    indexed: dict[str, DecisionRecord] = {}
    for record in records:
        if not record.request_id:
            raise ValueError(
                f"{side} stream has a decision without a request_id; "
                "use match_by='position'"
            )
        if record.request_id in indexed:
            raise ValueError(
                f"{side} stream repeats request_id {record.request_id!r}"
            )
        indexed[record.request_id] = record
    return indexed
