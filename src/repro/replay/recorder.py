"""Decision recorder: capture admitted traffic as a replayable v2 trace.

:class:`TraceRecorder` subscribes to a framework's
:class:`~repro.core.events.EventBus` and turns every admission outcome
into a :class:`~repro.traffic.trace.TraceEntry` carrying its
:class:`~repro.core.records.DecisionRecord`:

* ``PUZZLE_ISSUED``  → verdict ``"admit"`` with the score, difficulty,
  policy/model names and the issued puzzle's parameters;
* ``REQUEST_SHED``   → verdict ``"shed"`` with the shed reason.

Because it hangs off the event bus, the same recorder works against
every serving path — the in-process framework, the threaded
:class:`~repro.net.live.server.LiveServer`, the async
:class:`~repro.net.gateway.server.GatewayServer`, each worker of a
:class:`~repro.net.gateway.cluster.GatewayCluster`, and both
simulators — and costs nothing when not attached (the framework skips
event construction with no subscribers).

Requests that arrive without a ``request_id`` (the live transports
build them from raw sockets) are assigned a sequential ``rec-N`` id at
capture time, so the resulting trace satisfies the unique-id invariant
replay depends on.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Callable, Mapping

from repro.core.events import EventBus, EventKind, FrameworkEvent
from repro.core.records import ClientRequest, DecisionRecord
from repro.traffic.trace import Trace, TraceEntry, TraceHeader

__all__ = ["TraceRecorder", "spec_hash"]

#: Resolves a client IP to (profile name, true score) for trace entries.
SourceResolver = Callable[[str], tuple[str, float]]


def spec_hash(spec) -> str:
    """Stable hash of a framework recipe (:class:`FrameworkSpec`).

    The hash goes into the trace header; replayers compare it against
    the replay-side recipe so decisions recorded under one pipeline are
    never silently diffed against another.
    """
    if dataclasses.is_dataclass(spec) and not isinstance(spec, type):
        spec = dataclasses.asdict(spec)
    payload = json.dumps(spec, sort_keys=True, default=str).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


class TraceRecorder:
    """Accumulates (request, decision) pairs from a framework event bus.

    Parameters
    ----------
    sources:
        Optional mapping of client IP → ``(profile, true_score)`` used
        to stamp trace entries with their generating population's
        ground truth.  Unknown addresses record as
        ``(default_profile, 0.0)``.  :meth:`register_source` adds
        mappings incrementally (the simulators feed it as trace entries
        are submitted).
    default_profile:
        Profile label for addresses without a registered source —
        ``"live"`` fits gateway captures, where ground truth is unknown.
    id_prefix:
        Prefix for ids assigned to requests that arrive without one.
        Cluster workers use ``w<shard>`` so ids stay unique after the
        parent merges the per-shard partial traces.
    """

    def __init__(
        self,
        sources: Mapping[str, tuple[str, float]] | None = None,
        *,
        default_profile: str = "live",
        id_prefix: str = "rec",
    ) -> None:
        self._sources: dict[str, tuple[str, float]] = dict(sources or {})
        self.default_profile = default_profile
        self.id_prefix = id_prefix
        self.entries: list[TraceEntry] = []
        self._next_id = 1
        self._bus: EventBus | None = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, bus: EventBus) -> "TraceRecorder":
        """Subscribe to admission outcomes on ``bus``; returns self."""
        bus.subscribe(
            self._on_event,
            kinds=[EventKind.PUZZLE_ISSUED, EventKind.REQUEST_SHED],
        )
        self._bus = bus
        return self

    def detach(self) -> None:
        """Unsubscribe from the bus attached via :meth:`attach`."""
        if self._bus is not None:
            self._bus.unsubscribe(self._on_event)
            self._bus = None

    def register_source(
        self, client_ip: str, profile: str, true_score: float
    ) -> None:
        """Record the ground truth behind ``client_ip``'s traffic."""
        self._sources[client_ip] = (profile, true_score)

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    def _on_event(self, event: FrameworkEvent) -> None:
        if event.kind is EventKind.PUZZLE_ISSUED:
            decision = event.payload.get("decision")
            puzzle = event.payload.get("puzzle")
            if decision is None:
                return
            record = DecisionRecord(
                request_id="",  # assigned in _capture
                client_ip=decision.request.client_ip,
                verdict="admit",
                score=decision.reputation_score,
                difficulty=decision.difficulty,
                policy_name=decision.policy_name,
                model_name=decision.model_name,
                puzzle_algorithm=(
                    puzzle.algorithm if puzzle is not None else ""
                ),
                puzzle_seed=puzzle.seed if puzzle is not None else "",
            )
            self._capture(decision.request, record)
        elif event.kind is EventKind.REQUEST_SHED:
            request = event.payload.get("request")
            if request is None:
                return
            record = DecisionRecord(
                request_id="",
                client_ip=request.client_ip,
                verdict="shed",
                policy_name=str(event.payload.get("policy", "")),
                detail=str(event.payload.get("reason", "")),
            )
            self._capture(request, record)

    def _capture(self, request: ClientRequest, record: DecisionRecord) -> None:
        request_id = request.request_id
        if not request_id:
            request_id = f"{self.id_prefix}-{self._next_id}"
            self._next_id += 1
            request = dataclasses.replace(request, request_id=request_id)
        record = dataclasses.replace(record, request_id=request_id)
        profile, true_score = self._sources.get(
            request.client_ip, (self.default_profile, 0.0)
        )
        self.entries.append(
            TraceEntry(
                request=request,
                profile=profile,
                true_score=true_score,
                decision=record,
            )
        )

    def capture_error(self, request: ClientRequest, detail: str) -> None:
        """Record a failed admission (the framework emits no event)."""
        self._capture(
            request,
            DecisionRecord(
                request_id="",
                client_ip=request.client_ip,
                verdict="error",
                detail=detail,
            ),
        )

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def trace(
        self,
        *,
        config_hash: str = "",
        seed: int | None = None,
        meta: Mapping | None = None,
    ) -> Trace:
        """The captured entries as a v2 :class:`Trace`."""
        header = TraceHeader(
            config_hash=config_hash, seed=seed, meta=dict(meta or {})
        )
        return Trace(self.entries, header=header)

    def dump(
        self,
        path,
        *,
        config_hash: str = "",
        seed: int | None = None,
        meta: Mapping | None = None,
    ) -> Trace:
        """Write the captured trace to ``path``; returns it."""
        trace = self.trace(config_hash=config_hash, seed=seed, meta=meta)
        trace.dump_jsonl(path)
        return trace
