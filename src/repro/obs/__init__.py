"""Unified telemetry: metrics registry, request tracing, introspection.

Three layers, each usable alone:

* :mod:`repro.obs.registry` — a process-wide, thread-safe registry of
  labelled counters, gauges and histograms with a numpy ``observe_array``
  bulk path, JSON-safe snapshots that merge across worker processes, and
  Prometheus text exposition.
* :mod:`repro.obs.tracing` — 1-in-N sampled request spans following a
  request through gateway accept → accumulator flush → score → policy →
  puzzle issue → verify, dumped as JSONL and rendered by
  ``repro trace``.
* :mod:`repro.obs.http` — a stdlib-only introspection endpoint
  (``/metrics``, ``/healthz``, ``/summary``) plus a periodic snapshot
  writer for campaigns and soak runs.

The cost contract: with no registry, tracer, or timer attached, the hot
paths (framework batch admission, the vectorized simulator's cohort
loop) execute the identical instruction stream they did before this
package existed — instrumentation is pay-for-what-you-attach, enforced
by ``benchmarks/test_bench_obs.py``.
"""

from repro.obs.http import MetricsHTTPServer, SnapshotWriter
from repro.obs.registry import (
    METRIC_CATALOG,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PhaseTimer,
    merge_snapshots,
    render_prometheus,
    validate_exposition,
)
from repro.obs.tracing import (
    RequestTracer,
    load_spans,
    render_spans,
)

__all__ = [
    "METRIC_CATALOG",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsHTTPServer",
    "PhaseTimer",
    "RequestTracer",
    "SnapshotWriter",
    "load_spans",
    "merge_snapshots",
    "render_prometheus",
    "render_spans",
    "validate_exposition",
]
