"""Sampled request spans: per-request causality through the pipeline.

A :class:`RequestTracer` subscribes to a framework's
:class:`~repro.core.events.EventBus` and, for one request in every
``sample_every``, records a *span*: the ordered list of pipeline stages
the request passed through (gateway accept → accumulator flush → score
→ policy → puzzle issue → solution → verify → respond), each stamped
with the event's own timestamp *and* a monotonic offset measured at the
subscriber — so intra-batch stage costs are visible even when the
framework stamps a whole flush with one wall-clock instant.

Spans are plain dicts, dumped as JSONL (one header line, one span per
line) and rendered by ``repro trace``.  In cluster mode each
:class:`~repro.net.gateway.cluster.ShardWorker` runs its own tracer and
ships finished spans to the parent over the control channel at
shutdown; ``id_prefix`` keeps span ids unique across shards exactly
like the replay recorder's trace ids.

Cost contract: an unattached tracer costs nothing (the bus skips event
construction with no subscribers); an attached tracer costs one dict
lookup per event for unsampled requests.  The overhead benchmark pins
the 1-in-100 configuration within 10% of the uninstrumented gateway.
"""

from __future__ import annotations

import json
import time
from collections import OrderedDict
from typing import IO, Iterable

from repro.core.events import EventBus, EventKind, FrameworkEvent

__all__ = ["RequestTracer", "load_spans", "render_spans", "SPANS_FORMAT"]

SPANS_FORMAT = "repro-trace-spans/v1"

#: Event kind -> span stage name, in pipeline order.
STAGE_BY_KIND = {
    EventKind.REQUEST_RECEIVED: "flush",
    EventKind.SCORED: "score",
    EventKind.POLICY_APPLIED: "policy",
    EventKind.PUZZLE_ISSUED: "issue",
    EventKind.SOLUTION_RECEIVED: "solution",
    EventKind.SOLUTION_VERIFIED: "verify",
    EventKind.SOLUTION_REJECTED: "verify",
    EventKind.RESPONSE_SERVED: "respond",
    EventKind.REQUEST_SHED: "shed",
}

#: Stages a fully served request passes through, in order — the
#: reconstruction test asserts a cluster-recorded span contains these.
FULL_PATH = ("accept", "flush", "score", "policy", "issue",
             "solution", "verify", "respond")


def _request_of(event: FrameworkEvent):
    payload = event.payload
    request = payload.get("request")
    if request is not None:
        return request
    decision = payload.get("decision")
    if decision is not None:
        return decision.request
    response = payload.get("response")
    if response is not None:
        return response.decision.request
    return None


class RequestTracer:
    """Samples 1-in-N requests into structured spans.

    Parameters
    ----------
    sample_every:
        Sampling stride; 1 traces every request.  The decision is made
        at the first event that names a request (arrival at the
        framework, or a shed), and the whole span rides on it.
    id_prefix:
        Prepended to span ids (``"w3"`` → ``w3-0``, ``w3-1`` ...) so
        cluster shards produce globally unique ids.
    max_spans:
        Bound on *finished* spans retained (oldest dropped) and on
        concurrently open spans (oldest force-closed as ``unresolved``);
        keeps soak runs from accumulating unbounded span lists.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; when
        given, finished spans count into ``trace_spans_total`` by
        outcome.
    """

    KINDS = tuple(STAGE_BY_KIND)

    def __init__(
        self,
        sample_every: int = 100,
        *,
        id_prefix: str = "",
        max_spans: int = 10_000,
        registry=None,
    ) -> None:
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.sample_every = int(sample_every)
        self.id_prefix = id_prefix
        self.max_spans = int(max_spans)
        self._seen = 0
        self._next_id = 0
        self._active: OrderedDict[int, dict] = OrderedDict()
        self.spans: list[dict] = []
        self._counter = None
        if registry is not None:
            from repro.obs.registry import METRIC_CATALOG

            self._counter = registry.counter(
                "trace_spans_total",
                METRIC_CATALOG["trace_spans_total"],
                labels=("outcome",),
            )

    # -- wiring --------------------------------------------------------
    def attach(self, bus: EventBus) -> "RequestTracer":
        """Subscribe to every traced pipeline stage on ``bus``."""
        bus.subscribe(self._on_event, kinds=self.KINDS)
        return self

    def detach(self, bus: EventBus) -> None:
        bus.unsubscribe(self._on_event)

    # -- event handling ------------------------------------------------
    def _on_event(self, event: FrameworkEvent) -> None:
        request = _request_of(event)
        if request is None:
            return
        key = id(request)
        span = self._active.get(key)
        stage = STAGE_BY_KIND[event.kind]
        if span is None:
            # Only a request's first pipeline contact (framework arrival
            # or a pre-admission shed) can open a span; later stages of
            # unsampled requests fall through here and cost one lookup.
            if event.kind not in (
                EventKind.REQUEST_RECEIVED, EventKind.REQUEST_SHED
            ):
                return
            self._seen += 1
            if (self._seen - 1) % self.sample_every != 0:
                return
            span = self._open(request)
            self._active[key] = span
            if len(self._active) > self.max_spans:
                _, evicted = self._active.popitem(last=False)
                self._finish(evicted, outcome="unresolved")
        now = time.monotonic()
        record: dict = {
            "stage": stage,
            "at": event.timestamp,
            "offset_ms": (now - span["_mono0"]) * 1000.0,
        }
        payload = event.payload
        if event.kind is EventKind.SCORED:
            span["score"] = payload.get("score")
        elif event.kind is EventKind.POLICY_APPLIED:
            span["difficulty"] = payload.get("difficulty")
            span["policy"] = payload.get("policy")
        elif event.kind is EventKind.PUZZLE_ISSUED:
            decision = payload.get("decision")
            if decision is not None:
                span["score"] = decision.reputation_score
                span["difficulty"] = decision.difficulty
        elif event.kind is EventKind.SOLUTION_RECEIVED:
            solution = payload.get("solution")
            if solution is not None:
                record["attempts"] = solution.attempts
        elif event.kind is EventKind.SOLUTION_REJECTED:
            status = payload.get("status")
            record["status"] = getattr(status, "value", str(status))
        elif event.kind is EventKind.REQUEST_SHED:
            record["reason"] = payload.get("reason")
            record["queue_depth"] = payload.get("queue_depth")
        span["stages"].append(record)

        if event.kind is EventKind.REQUEST_SHED:
            self._close(key, span, outcome="shed")
        elif event.kind is EventKind.RESPONSE_SERVED:
            response = payload.get("response")
            status = getattr(response, "status", None)
            span["status"] = getattr(status, "value", None)
            span["latency_ms"] = (
                response.latency * 1000.0 if response is not None else None
            )
            outcome = (
                "served"
                if response is not None and response.served
                else "denied"
            )
            self._close(key, span, outcome=outcome)

    def _open(self, request) -> dict:
        span_id = f"{self.id_prefix}-{self._next_id}" if (
            self.id_prefix
        ) else str(self._next_id)
        self._next_id += 1
        mono0 = time.monotonic()
        return {
            "span_id": span_id,
            "client_ip": request.client_ip,
            "resource": request.resource,
            "accept_ts": request.timestamp,
            "sample_every": self.sample_every,
            # The accept stage is derived from the request's own
            # timestamp: the gateway stamps it at socket accept, before
            # the request waits in the admission queue.
            "stages": [{"stage": "accept", "at": request.timestamp,
                        "offset_ms": 0.0}],
            "_mono0": mono0,
        }

    def _close(self, key: int, span: dict, outcome: str) -> None:
        self._active.pop(key, None)
        self._finish(span, outcome)

    def _finish(self, span: dict, outcome: str) -> None:
        span.pop("_mono0", None)
        span["outcome"] = outcome
        self.spans.append(span)
        if len(self.spans) > self.max_spans:
            del self.spans[: len(self.spans) - self.max_spans]
        if self._counter is not None:
            self._counter.inc(outcome=outcome)

    # -- extraction ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def drain(self) -> list[dict]:
        """Finish any still-open spans and return every span recorded.

        Used at shutdown: a request whose client never returned a
        solution still yields a (truncated) span, marked
        ``unresolved``.
        """
        for key in list(self._active):
            span = self._active.pop(key)
            self._finish(span, outcome="unresolved")
        return list(self.spans)

    def dump(self, path, meta: dict | None = None) -> None:
        """Write spans as JSONL: a header line, then one span per line."""
        spans = self.drain()
        with open(path, "w", encoding="utf-8") as handle:
            write_spans(handle, spans, meta=meta)


def write_spans(
    handle: IO[str], spans: Iterable[dict], meta: dict | None = None
) -> int:
    """Write a span stream to an open text handle; returns span count."""
    header = {"format": SPANS_FORMAT, "meta": meta or {}}
    handle.write(json.dumps(header, separators=(",", ":")) + "\n")
    count = 0
    for span in spans:
        handle.write(json.dumps(span, separators=(",", ":")) + "\n")
        count += 1
    return count


def load_spans(path) -> tuple[dict, list[dict]]:
    """Read a span JSONL file; returns ``(header_meta, spans)``."""
    meta: dict = {}
    spans: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                document = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not JSON ({exc})"
                ) from None
            if lineno == 1 and document.get("format") == SPANS_FORMAT:
                meta = document.get("meta", {})
                continue
            if "stages" not in document:
                raise ValueError(
                    f"{path}:{lineno}: not a trace span (no stages)"
                )
            spans.append(document)
    return meta, spans


def render_spans(spans: Iterable[dict], limit: int | None = None) -> str:
    """Human-readable waterfall rendering for ``repro trace``."""
    lines: list[str] = []
    shown = 0
    total = 0
    for span in spans:
        total += 1
        if limit is not None and shown >= limit:
            continue
        shown += 1
        header = (
            f"span {span.get('span_id', '?')}  "
            f"{span.get('client_ip', '?')} {span.get('resource', '')}  "
            f"outcome={span.get('outcome', '?')}"
        )
        if span.get("status"):
            header += f" status={span['status']}"
        if span.get("latency_ms") is not None:
            header += f" latency={span['latency_ms']:.1f}ms"
        if span.get("difficulty") is not None:
            score = span.get("score")
            scored = f" score={score:.2f}" if score is not None else ""
            header += f"{scored} difficulty={span['difficulty']}"
        lines.append(header)
        previous = 0.0
        for record in span.get("stages", ()):
            offset = float(record.get("offset_ms", 0.0))
            delta = offset - previous
            previous = offset
            extras = "".join(
                f" {key}={record[key]}"
                for key in ("reason", "queue_depth", "attempts", "status")
                if record.get(key) is not None
            )
            lines.append(
                f"  {record['stage']:<9} +{delta:8.2f}ms "
                f"(t={offset:8.2f}ms){extras}"
            )
        lines.append("")
    if limit is not None and total > shown:
        lines.append(f"... {total - shown} more spans (use --limit)")
    return "\n".join(lines).rstrip("\n")
