"""Labelled metric instruments behind one process-wide registry.

The registry is the convergence point for the three previously
disconnected telemetry surfaces (:class:`~repro.metrics.collector.
GatewayMetrics`, shed counters, :class:`~repro.net.sim.links.LinkStats`):
each keeps its existing ``summary()`` API but records through registry
instruments, so one ``/metrics`` scrape or JSON snapshot sees them all.

Design points:

* **Instruments are cheap and thread-safe.**  Each metric guards its
  label→series map with one lock; scalar updates are a dict lookup plus
  an add under the lock.  The gateway's event-loop thread, the threaded
  live server's handler threads and a scraping HTTP thread can all
  touch the same registry.
* **Bulk observation.**  :meth:`Histogram.observe_array` folds a whole
  numpy cohort in O(1) numpy ops (``searchsorted`` + ``bincount``), so
  the vectorized simulator can record a million samples without a
  million Python calls.  Scalar ``observe`` and ``observe_array`` are
  aggregate-equivalent by construction (same bucketing, same float
  summation order is *not* guaranteed — exact-mode series retain the
  raw samples so summary statistics match bit-for-bit).
* **Snapshots cross process boundaries.**  :meth:`MetricsRegistry.
  snapshot` is JSON-safe; :func:`merge_snapshots` folds any number of
  per-worker snapshots into cluster totals (counters and histogram
  buckets sum, gauges merge by their declared aggregation); and
  :func:`render_prometheus` renders any snapshot — live or merged — as
  Prometheus text exposition format.
"""

from __future__ import annotations

import json
import re
import threading
import time
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.metrics.histogram import SampleSet

__all__ = [
    "METRIC_CATALOG",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSeries",
    "MetricsRegistry",
    "PhaseTimer",
    "merge_snapshots",
    "render_prometheus",
    "validate_exposition",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bucket upper bounds (requests, depths, seconds all
#: fit a rough log scale; callers with tighter needs pass their own).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 2.5, 5.0, 10.0,
    25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)

#: The documented metric names — DESIGN.md §1.7's table is tested
#: against this mapping, so renaming an instrument here without
#: updating the docs (or vice versa) fails the docs-consistency suite.
METRIC_CATALOG: dict[str, str] = {
    "gateway_admitted_total": (
        "Requests admitted through the micro-batcher (challenge issued)"
    ),
    "gateway_shed_total": (
        "Requests shed by the admission queue, labelled by reason"
    ),
    "gateway_flushes_total": "Admission batch flushes",
    "gateway_batch_size": "Achieved admission batch sizes",
    "gateway_queue_depth": "Admission queue depth at flush and shed",
    "pipeline_responses_total": (
        "Completed exchanges, labelled by terminal status"
    ),
    "link_crossings_total": "Link-layer crossings attempted",
    "link_lost_total": "Link crossings lost to random loss",
    "link_queue_dropped_total": "Link crossings dropped at a full queue",
    "link_retries_total": "Link retries scheduled after a loss",
    "link_request_give_ups_total": (
        "Requests abandoned after exhausting link retries"
    ),
    "link_solution_give_ups_total": (
        "Solutions abandoned after exhausting link retries"
    ),
    "sim_phase_seconds_total": (
        "Wall seconds the vectorized engine spent per phase"
    ),
    "sim_phase_cohorts_total": "Cohorts the vectorized engine processed per phase",
    "sim_phase_items_total": "Items (events) processed per engine phase",
    "trace_spans_total": "Completed trace spans, labelled by outcome",
    "netstore_server_requests_total": (
        "State-server requests handled, labelled by op"
    ),
    "netstore_client_requests_total": (
        "State-client requests issued, labelled by op"
    ),
    "netstore_client_retries_total": (
        "State-client retries after transport failures"
    ),
    "netstore_client_timeouts_total": (
        "State-client requests abandoned on timeout"
    ),
    "netstore_handoff_bytes_total": (
        "Snapshot bytes moved between nodes during resharding"
    ),
}


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _label_key(
    label_names: tuple[str, ...], labels: Mapping[str, object]
) -> tuple[str, ...]:
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {label_names}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in label_names)


class _Metric:
    """Shared bookkeeping for one named family of labelled series."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str, label_names: Sequence[str] = ()
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._series: dict[tuple[str, ...], object] = {}

    def _series_items(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            return list(self._series.items())

    def _labels_dict(self, key: tuple[str, ...]) -> dict[str, str]:
        return dict(zip(self.label_names, key))


class Counter(_Metric):
    """A monotonically increasing sum, optionally labelled."""

    kind = "counter"

    def inc(self, amount: int | float = 1, **labels: object) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: object) -> int | float:
        """Current value of one labelled series (0 when unseen)."""
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._series.get(key, 0)

    def total(self) -> int | float:
        """Sum across every labelled series."""
        with self._lock:
            return sum(self._series.values())

    def as_dict(self) -> dict[str, int | float]:
        """Label-joined view, e.g. ``{"queue full": 3}`` — for summaries."""
        with self._lock:
            return {
                ",".join(key) if key else "": value
                for key, value in self._series.items()
            }

    def _snapshot_series(self) -> list[dict]:
        return [
            {"labels": self._labels_dict(key), "value": value}
            for key, value in self._series_items()
        ]


class Gauge(_Metric):
    """A value that can go up and down.

    ``agg`` declares how per-worker snapshots of this gauge merge into
    cluster totals: ``"sum"`` (e.g. in-flight requests), ``"max"``
    (high-water marks) or ``"last"`` (configuration-style values).
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str] = (),
        agg: str = "sum",
    ) -> None:
        if agg not in ("sum", "max", "last"):
            raise ValueError(f"unknown gauge aggregation {agg!r}")
        super().__init__(name, help, label_names)
        self.agg = agg

    def set(self, value: int | float, **labels: object) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._series[key] = value

    def inc(self, amount: int | float = 1, **labels: object) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def dec(self, amount: int | float = 1, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> int | float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._series.get(key, 0)

    def _snapshot_series(self) -> list[dict]:
        return [
            {"labels": self._labels_dict(key), "value": value}
            for key, value in self._series_items()
        ]


class HistogramSeries:
    """One labelled histogram stream: buckets plus summary statistics.

    In *exact* mode the raw samples are retained in a
    :class:`~repro.metrics.histogram.SampleSet`, so ``mean``/``max``/
    quantiles are bit-identical to the sample-set code this registry
    replaced — the contract the GatewayMetrics migration is regression-
    tested against.  Without it, memory stays O(buckets) for unbounded
    streams and the mean is ``sum/count``.
    """

    __slots__ = (
        "_bounds", "counts", "sum", "count", "_min", "_max", "samples",
        "_lock",
    )

    def __init__(self, bounds: np.ndarray, exact: bool) -> None:
        self._bounds = bounds
        self.counts = np.zeros(bounds.size + 1, dtype=np.int64)
        self.sum = 0.0
        self.count = 0
        self._min: float | None = None
        self._max: float | None = None
        self.samples = SampleSet() if exact else None
        self._lock = threading.Lock()

    def observe(self, value: int | float) -> None:
        value = float(value)
        index = int(np.searchsorted(self._bounds, value, side="left"))
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            if self.samples is not None:
                self.samples.add(value)

    # SampleSet-compatible spelling, so migrated call sites keep working.
    add = observe

    def observe_array(self, values: np.ndarray) -> None:
        """Fold a whole cohort in O(1) numpy ops."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        indexes = np.searchsorted(self._bounds, values, side="left")
        binned = np.bincount(indexes, minlength=self.counts.size)
        total = float(values.sum())
        low = float(values.min())
        high = float(values.max())
        with self._lock:
            self.counts += binned
            self.sum += total
            self.count += int(values.size)
            if self._min is None or low < self._min:
                self._min = low
            if self._max is None or high > self._max:
                self._max = high
            if self.samples is not None:
                self.samples.extend_array(values)

    def __len__(self) -> int:
        return self.count

    def mean(self) -> float:
        if not self.count:
            raise ValueError("mean of an empty histogram series")
        if self.samples is not None:
            return self.samples.mean()
        return self.sum / self.count

    def min(self) -> float:
        if self._min is None:
            raise ValueError("min of an empty histogram series")
        return self._min

    def max(self) -> float:
        if self._max is None:
            raise ValueError("max of an empty histogram series")
        return self._max

    def quantile(self, q: float) -> float:
        if self.samples is None:
            raise ValueError("quantiles need an exact-mode histogram")
        return self.samples.quantile(q)


class Histogram(_Metric):
    """Bucketed distribution with sum/count/min/max per labelled series."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        exact: bool = False,
    ) -> None:
        super().__init__(name, help, label_names)
        bounds = np.asarray(sorted(float(b) for b in buckets))
        if bounds.size == 0:
            raise ValueError("histogram needs at least one bucket bound")
        if np.unique(bounds).size != bounds.size:
            raise ValueError(f"duplicate bucket bounds in {buckets}")
        self.bounds = bounds
        self.exact = exact

    def labels(self, **labels: object) -> HistogramSeries:
        """The (created-on-first-use) series for one label combination."""
        key = _label_key(self.label_names, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = HistogramSeries(self.bounds, self.exact)
                self._series[key] = series
            return series  # type: ignore[return-value]

    def observe(self, value: int | float, **labels: object) -> None:
        self.labels(**labels).observe(value)

    def observe_array(self, values: np.ndarray, **labels: object) -> None:
        self.labels(**labels).observe_array(values)

    def _snapshot_series(self) -> list[dict]:
        rows = []
        for key, series in self._series_items():
            with series._lock:  # type: ignore[union-attr]
                rows.append(
                    {
                        "labels": self._labels_dict(key),
                        "buckets": series.counts.tolist(),
                        "sum": series.sum,
                        "count": series.count,
                        "min": series._min,
                        "max": series._max,
                    }
                )
        return rows


class MetricsRegistry:
    """A named collection of instruments with one snapshot boundary.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same instrument (and raises if the
    second request disagrees on kind or labels), so independent
    components can share instruments without coordination.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, factory: Callable[[], _Metric]) -> _Metric:
        candidate = factory()
        with self._lock:
            existing = self._metrics.get(candidate.name)
            if existing is None:
                self._metrics[candidate.name] = candidate
                return candidate
            if type(existing) is not type(candidate) or (
                existing.label_names != candidate.label_names
            ):
                raise ValueError(
                    f"metric {candidate.name!r} already registered as "
                    f"{existing.kind} with labels {existing.label_names}"
                )
            return existing

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(  # type: ignore[return-value]
            lambda: Counter(name, help, labels)
        )

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        agg: str = "sum",
    ) -> Gauge:
        return self._get_or_create(  # type: ignore[return-value]
            lambda: Gauge(name, help, labels, agg=agg)
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        exact: bool = False,
    ) -> Histogram:
        return self._get_or_create(  # type: ignore[return-value]
            lambda: Histogram(name, help, labels, buckets=buckets, exact=exact)
        )

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._metrics))

    def snapshot(self) -> dict:
        """JSON-safe reduction of every instrument (shippable cross-process)."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        out = []
        for name, metric in metrics:
            entry: dict = {
                "name": name,
                "type": metric.kind,
                "help": metric.help,
                "label_names": list(metric.label_names),
                "series": metric._snapshot_series(),  # type: ignore[attr-defined]
            }
            if isinstance(metric, Histogram):
                entry["bounds"] = metric.bounds.tolist()
            if isinstance(metric, Gauge):
                entry["agg"] = metric.agg
            out.append(entry)
        return {"format": "repro-metrics/v1", "metrics": out}

    def render(self) -> str:
        """Prometheus text exposition of the live registry."""
        return render_prometheus(self.snapshot())


# ----------------------------------------------------------------------
# Snapshot algebra (merging worker snapshots, rendering exposition)
# ----------------------------------------------------------------------
def _series_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def merge_snapshots(snapshots: Iterable[Mapping]) -> dict:
    """Fold per-worker registry snapshots into one cluster snapshot.

    Counters and histogram buckets/sums/counts add; histogram min/max
    take the extremes; gauges merge by their declared ``agg``.  Metric
    families absent from some workers merge fine — a worker that never
    shed anything simply contributes nothing to ``gateway_shed_total``.
    """
    merged: dict[str, dict] = {}
    for snapshot in snapshots:
        for metric in snapshot.get("metrics", ()):
            name = metric["name"]
            target = merged.get(name)
            if target is None:
                target = {
                    key: value
                    for key, value in metric.items()
                    if key != "series"
                }
                target["series"] = {}
                merged[name] = target
            series_map = target["series"]
            for row in metric.get("series", ()):
                key = _series_key(row.get("labels", {}))
                existing = series_map.get(key)
                if existing is None:
                    series_map[key] = {
                        k: (list(v) if isinstance(v, list) else v)
                        for k, v in row.items()
                    }
                    continue
                if metric["type"] == "histogram":
                    existing["buckets"] = [
                        a + b
                        for a, b in zip(existing["buckets"], row["buckets"])
                    ]
                    existing["sum"] += row["sum"]
                    existing["count"] += row["count"]
                    for field, pick in (("min", min), ("max", max)):
                        ours, theirs = existing.get(field), row.get(field)
                        if ours is None:
                            existing[field] = theirs
                        elif theirs is not None:
                            existing[field] = pick(ours, theirs)
                elif metric["type"] == "gauge":
                    agg = metric.get("agg", "sum")
                    if agg == "sum":
                        existing["value"] += row["value"]
                    elif agg == "max":
                        existing["value"] = max(
                            existing["value"], row["value"]
                        )
                    else:  # last
                        existing["value"] = row["value"]
                else:  # counter
                    existing["value"] += row["value"]
    out = []
    for name in sorted(merged):
        entry = dict(merged[name])
        entry["series"] = [
            dict(row) for _, row in sorted(entry["series"].items())
        ]
        out.append(entry)
    return {"format": "repro-metrics/v1", "metrics": out}


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _format_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: int | float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(snapshot: Mapping) -> str:
    """Render a registry snapshot as Prometheus text exposition format.

    Works on live snapshots and :func:`merge_snapshots` output alike —
    the cluster parent renders worker aggregates through this exact
    function.
    """
    lines: list[str] = []
    for metric in snapshot.get("metrics", ()):
        name = metric["name"]
        help_text = (metric.get("help") or "").replace("\n", " ")
        lines.append(f"# HELP {name} {help_text}".rstrip())
        lines.append(f"# TYPE {name} {metric['type']}")
        if metric["type"] == "histogram":
            bounds = metric.get("bounds", [])
            for row in metric.get("series", ()):
                labels = row.get("labels", {})
                cumulative = 0
                for bound, count in zip(bounds, row["buckets"]):
                    cumulative += count
                    le = 'le="%g"' % bound
                    lines.append(
                        f"{name}_bucket{_format_labels(labels, le)} "
                        f"{cumulative}"
                    )
                cumulative += row["buckets"][len(bounds)]
                inf = 'le="+Inf"'
                lines.append(
                    f"{name}_bucket{_format_labels(labels, inf)} "
                    f"{cumulative}"
                )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(row['sum'])}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} {row['count']}"
                )
        else:
            for row in metric.get("series", ()):
                lines.append(
                    f"{name}{_format_labels(row.get('labels', {}))} "
                    f"{_format_value(row['value'])}"
                )
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(?:\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"
    r" [-+]?(?:[0-9.]+(?:e[-+]?[0-9]+)?|Inf|NaN)$",
    re.IGNORECASE,
)


def validate_exposition(text: str) -> list[str]:
    """Structural checks on Prometheus text exposition; returns problems.

    Shared by the smoke tools and the test suite: every sample line
    must parse, every samples' family must be TYPE-declared first, and
    histogram families must expose ``_bucket``/``_sum``/``_count``.
    """
    problems: list[str] = []
    typed: dict[str, str] = {}
    seen_samples: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) < 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                problems.append(f"line {lineno}: malformed TYPE line")
            else:
                typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        if not _SAMPLE_RE.match(line):
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        family = re.split(r"[{ ]", line, maxsplit=1)[0]
        base = re.sub(r"_(bucket|sum|count)$", "", family)
        if family not in typed and base not in typed:
            problems.append(f"line {lineno}: {family} has no TYPE")
        seen_samples.add(family)
    for name, kind in typed.items():
        if kind == "histogram" and f"{name}_count" in seen_samples:
            for suffix in ("_bucket", "_sum"):
                if f"{name}{suffix}" not in seen_samples:
                    problems.append(
                        f"histogram {name} missing {name}{suffix} samples"
                    )
    return problems


# ----------------------------------------------------------------------
# Per-phase engine timing
# ----------------------------------------------------------------------
class PhaseTimer:
    """Accumulates wall time, cohort counts and item counts per phase.

    The vectorized simulator calls :meth:`observe` once per cohort when
    a timer is attached; detached (the default) the engine pays one
    ``is None`` check per cohort, keeping the telemetry-off hot path
    unchanged.
    """

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.cohorts: dict[str, int] = {}
        self.items: dict[str, int] = {}

    def observe(self, phase: str, seconds: float, items: int = 0) -> None:
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        self.cohorts[phase] = self.cohorts.get(phase, 0) + 1
        self.items[phase] = self.items.get(phase, 0) + int(items)

    def summary(self) -> dict[str, dict]:
        """Per-phase totals plus derived rates, JSON-safe."""
        out: dict[str, dict] = {}
        for phase in sorted(self.seconds):
            seconds = self.seconds[phase]
            items = self.items.get(phase, 0)
            out[phase] = {
                "seconds": seconds,
                "cohorts": self.cohorts.get(phase, 0),
                "items": items,
                "items_per_second": items / seconds if seconds > 0 else 0.0,
            }
        return out

    def publish(self, registry: MetricsRegistry) -> None:
        """Fold the totals into ``sim_phase_*`` registry counters."""
        seconds = registry.counter(
            "sim_phase_seconds_total",
            METRIC_CATALOG["sim_phase_seconds_total"],
            labels=("phase",),
        )
        cohorts = registry.counter(
            "sim_phase_cohorts_total",
            METRIC_CATALOG["sim_phase_cohorts_total"],
            labels=("phase",),
        )
        items = registry.counter(
            "sim_phase_items_total",
            METRIC_CATALOG["sim_phase_items_total"],
            labels=("phase",),
        )
        for phase in self.seconds:
            seconds.inc(self.seconds[phase], phase=phase)
            cohorts.inc(self.cohorts.get(phase, 0), phase=phase)
            items.inc(self.items.get(phase, 0), phase=phase)

    def render(self) -> str:
        """One-line summary for campaign notes."""
        parts = []
        for phase, stats in self.summary().items():
            parts.append(
                f"{phase} {stats['seconds']:.2f}s"
                f"/{stats['cohorts']:,} cohorts"
            )
        return ", ".join(parts) if parts else "(no phases timed)"


def dump_snapshot_line(snapshot: Mapping, at: float | None = None) -> str:
    """One JSONL line for the periodic snapshot writer."""
    return json.dumps(
        {"t": time.time() if at is None else at, "snapshot": snapshot},
        separators=(",", ":"),
    )
