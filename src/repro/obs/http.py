"""Stdlib-only live introspection: /metrics, /healthz, /summary.

:class:`MetricsHTTPServer` runs a ``ThreadingHTTPServer`` on a daemon
thread and serves three read-only routes from caller-supplied
providers:

* ``/metrics`` — Prometheus text exposition rendered from the snapshot
  provider (a live registry's ``snapshot`` method, or the cluster
  parent's merged per-worker view);
* ``/healthz`` — JSON liveness (HTTP 503 when the health provider
  reports a non-ok status, so load balancers can act on it);
* ``/summary`` (and ``/``) — the raw JSON snapshot.

Providers are called per request on the serving thread, so they must be
thread-safe — registry snapshots are (every instrument locks), and the
cluster's provider reads an atomically swapped dict.

:class:`SnapshotWriter` is the offline sibling: a daemon thread
appending timestamped registry snapshots to a JSONL file on a fixed
interval, for campaigns and soak runs where nothing scrapes.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Mapping

from repro.obs.registry import dump_snapshot_line, render_prometheus

__all__ = ["MetricsHTTPServer", "SnapshotWriter"]

SnapshotProvider = Callable[[], Mapping]
HealthProvider = Callable[[], Mapping]


class _Handler(BaseHTTPRequestHandler):
    server: "_IntrospectionServer"

    def _reply(
        self, status: int, body: bytes, content_type: str
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                text = render_prometheus(self.server.snapshot_provider())
                self._reply(
                    200,
                    text.encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/healthz":
                health = dict(self.server.health_provider())
                status = 200 if health.get("status") == "ok" else 503
                self._reply(
                    status,
                    (json.dumps(health) + "\n").encode("utf-8"),
                    "application/json",
                )
            elif path in ("/", "/summary"):
                document = self.server.snapshot_provider()
                self._reply(
                    200,
                    (json.dumps(document) + "\n").encode("utf-8"),
                    "application/json",
                )
            else:
                self._reply(
                    404, b"not found\n", "text/plain; charset=utf-8"
                )
        except BrokenPipeError:  # pragma: no cover - peer went away
            pass
        except Exception as exc:  # noqa: BLE001 - introspection must not crash
            try:
                self._reply(
                    500,
                    f"error: {exc}\n".encode("utf-8"),
                    "text/plain; charset=utf-8",
                )
            except OSError:  # pragma: no cover
                pass

    def log_message(self, *_args) -> None:  # noqa: D102 - silence stderr
        pass


class _IntrospectionServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address,
        snapshot_provider: SnapshotProvider,
        health_provider: HealthProvider,
    ) -> None:
        super().__init__(address, _Handler)
        self.snapshot_provider = snapshot_provider
        self.health_provider = health_provider


class MetricsHTTPServer:
    """The introspection endpoint, started on a daemon thread.

    Parameters
    ----------
    snapshot_provider:
        Zero-arg callable returning a registry snapshot (see
        :meth:`~repro.obs.registry.MetricsRegistry.snapshot`); called
        once per scrape.
    host / port:
        Bind address; port 0 picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    health_provider:
        Zero-arg callable returning the ``/healthz`` document; any
        ``status`` other than ``"ok"`` turns the reply into HTTP 503.
        Defaults to a constant ok.
    """

    def __init__(
        self,
        snapshot_provider: SnapshotProvider,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        health_provider: HealthProvider | None = None,
    ) -> None:
        self._server = _IntrospectionServer(
            (host, port),
            snapshot_provider,
            health_provider or (lambda: {"status": "ok"}),
        )
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsHTTPServer":
        if self._thread is not None:
            raise RuntimeError("metrics server already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


class SnapshotWriter:
    """Appends timestamped registry snapshots to a JSONL file.

    One line per interval: ``{"t": <wall clock>, "snapshot": {...}}``.
    :meth:`close` writes one final line so short runs (a campaign that
    finishes inside the first interval) still produce a record.
    """

    def __init__(
        self,
        path,
        snapshot_provider: SnapshotProvider,
        interval: float = 1.0,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.path = path
        self.interval = interval
        self._provider = snapshot_provider
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._handle = open(path, "w", encoding="utf-8")
        self._lock = threading.Lock()
        self.lines = 0

    def _write_line(self) -> None:
        line = dump_snapshot_line(self._provider())
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")
            self._handle.flush()
            self.lines += 1

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self._write_line()
            except Exception:  # noqa: BLE001 - keep the soak run alive
                pass

    def start(self) -> "SnapshotWriter":
        if self._thread is not None:
            raise RuntimeError("snapshot writer already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-snapshots", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop the thread, write a final snapshot, close the file."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        try:
            self._write_line()
        finally:
            with self._lock:
                if not self._handle.closed:
                    self._handle.close()

    def __enter__(self) -> "SnapshotWriter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
