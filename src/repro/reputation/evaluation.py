"""Classifier and regression metrics for reputation models.

The paper reports DAbR at "an accuracy of 80 %" treating scoring as a
binary decision (malicious iff score ≥ threshold).  These helpers
compute that accuracy, its companion metrics, and the score error ε that
Policy 3 needs — all from a fitted model and a held-out corpus.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.interfaces import ReputationModel
from repro.reputation.dataset import ThreatIntelCorpus

__all__ = [
    "ConfusionMatrix",
    "EvaluationReport",
    "evaluate_model",
    "estimate_epsilon",
    "roc_auc",
]

#: Scores at or above this value classify an IP as malicious.
DEFAULT_THRESHOLD = 5.0


@dataclasses.dataclass(frozen=True, slots=True)
class ConfusionMatrix:
    """Binary confusion counts (positive class = malicious)."""

    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    @property
    def accuracy(self) -> float:
        return (self.tp + self.tn) / self.total if self.total else 0.0

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def false_positive_rate(self) -> float:
        denom = self.fp + self.tn
        return self.fp / denom if denom else 0.0


@dataclasses.dataclass(frozen=True, slots=True)
class EvaluationReport:
    """Full evaluation of one model on one corpus."""

    model_name: str
    threshold: float
    confusion: ConfusionMatrix
    epsilon: float
    """Mean absolute error between predicted and ground-truth scores."""
    epsilon_p90: float
    """90th percentile of the absolute score error."""
    auc: float
    """Area under the ROC curve of the score as a malicious detector."""

    @property
    def accuracy(self) -> float:
        return self.confusion.accuracy

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.model_name}: accuracy={self.accuracy:.1%} "
            f"precision={self.confusion.precision:.1%} "
            f"recall={self.confusion.recall:.1%} "
            f"auc={self.auc:.3f} eps={self.epsilon:.2f}"
        )


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """AUC via the rank-statistic (Mann–Whitney) formulation.

    Ties receive half credit, matching the standard definition.
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if scores.shape != labels.shape:
        raise ValueError("scores and labels must have the same shape")
    positives = scores[labels == 1]
    negatives = scores[labels == 0]
    if positives.size == 0 or negatives.size == 0:
        return 0.5
    greater = (positives[:, None] > negatives[None, :]).sum()
    ties = (positives[:, None] == negatives[None, :]).sum()
    return float((greater + 0.5 * ties) / (positives.size * negatives.size))


def evaluate_model(
    model: ReputationModel,
    corpus: ThreatIntelCorpus,
    threshold: float = DEFAULT_THRESHOLD,
) -> EvaluationReport:
    """Score every example in ``corpus`` and compute the full report.

    Uses the model's vectorised ``score_batch`` when available (one pass
    over the corpus feature matrix — identical scores to the scalar
    loop) and falls back to scoring example-by-example otherwise.
    """
    if len(corpus) == 0:
        raise ValueError("cannot evaluate on an empty corpus")
    batch = getattr(model, "score_batch", None)
    if batch is not None:
        scores = np.asarray(batch(corpus.feature_matrix()), dtype=np.float64)
    else:
        scores = np.array([model.score(e.features) for e in corpus])
    labels = corpus.labels()
    truth = corpus.true_scores()

    predicted_malicious = scores >= threshold
    actual_malicious = labels == 1
    confusion = ConfusionMatrix(
        tp=int(np.sum(predicted_malicious & actual_malicious)),
        fp=int(np.sum(predicted_malicious & ~actual_malicious)),
        tn=int(np.sum(~predicted_malicious & ~actual_malicious)),
        fn=int(np.sum(~predicted_malicious & actual_malicious)),
    )
    errors = np.abs(scores - truth)
    return EvaluationReport(
        model_name=model.name,
        threshold=threshold,
        confusion=confusion,
        epsilon=float(errors.mean()),
        epsilon_p90=float(np.percentile(errors, 90)),
        auc=roc_auc(scores, labels),
    )


def estimate_epsilon(
    model: ReputationModel, corpus: ThreatIntelCorpus
) -> float:
    """The DAbR error ε consumed by Policy 3: mean |predicted − truth|."""
    report = evaluate_model(model, corpus)
    return report.epsilon
