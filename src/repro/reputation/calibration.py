"""Hyper-parameter calibration for reputation models.

The paper's only hard requirement on the AI subsystem is its operating
point: ≈80 % accuracy with a quantified score error ε.  This module
provides a small deterministic grid search that tunes a DAbR model's
``scale_percentile`` and ``gamma`` toward a target accuracy on a
held-out corpus — the mechanism the `acc80` bench uses to pin the
paper's figure.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.reputation.dabr import DAbRModel
from repro.reputation.dataset import ThreatIntelCorpus
from repro.reputation.evaluation import evaluate_model

__all__ = ["CalibrationResult", "calibrate_dabr"]


@dataclasses.dataclass(frozen=True, slots=True)
class CalibrationResult:
    """Outcome of a calibration grid search."""

    scale_percentile: float
    gamma: float
    accuracy: float
    epsilon: float
    target_accuracy: float

    @property
    def accuracy_gap(self) -> float:
        """Absolute distance from the target accuracy."""
        return abs(self.accuracy - self.target_accuracy)


def calibrate_dabr(
    train: ThreatIntelCorpus,
    test: ThreatIntelCorpus,
    target_accuracy: float = 0.80,
    scale_percentiles: Sequence[float] = (70.0, 76.0, 82.0, 88.0, 94.0),
    gammas: Sequence[float] = (2.0, 2.6, 3.2, 4.0, 5.0),
) -> CalibrationResult:
    """Grid-search DAbR hyper-parameters toward ``target_accuracy``.

    Returns the grid point whose held-out accuracy is closest to the
    target (ties broken by smaller ε, then by grid order), along with
    the achieved metrics.  Deterministic: no randomness beyond the
    corpora themselves.
    """
    if not 0.0 < target_accuracy < 1.0:
        raise ValueError(
            f"target_accuracy must be in (0, 1), got {target_accuracy}"
        )
    if not scale_percentiles or not gammas:
        raise ValueError("grid must be non-empty")

    best: CalibrationResult | None = None
    for sp in scale_percentiles:
        for gamma in gammas:
            model = DAbRModel(
                schema=train.schema, scale_percentile=sp, gamma=gamma
            ).fit(train)
            report = evaluate_model(model, test)
            candidate = CalibrationResult(
                scale_percentile=sp,
                gamma=gamma,
                accuracy=report.accuracy,
                epsilon=report.epsilon,
                target_accuracy=target_accuracy,
            )
            if best is None or (
                candidate.accuracy_gap,
                candidate.epsilon,
            ) < (best.accuracy_gap, best.epsilon):
                best = candidate
    assert best is not None  # non-empty grid guarantees a winner
    return best
