"""Per-IP score caching: shaving the AI model off the hot path.

Scoring every request is wasteful when an address's threat-intelligence
attributes change on the scale of hours — and under a flood, the AI
model is itself a resource the attack consumes.  :class:`CachedModel`
wraps any reputation model with a TTL-bounded, capacity-bounded per-IP
cache keyed by the requesting address.

Note the deliberate asymmetry with
:class:`~repro.reputation.feedback.FeedbackReputationModel`: feedback
*wraps caching* (offset applied to the cached base score), never the
other way around — caching a feedback-adjusted score would freeze the
behavioural signal.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Mapping

from repro.core.interfaces import ReputationModel
from repro.core.records import ClientRequest

__all__ = ["CachedModel"]


class CachedModel:
    """TTL + LRU cache over an inner model's per-request scores."""

    def __init__(
        self,
        inner: ReputationModel,
        ttl: float = 3600.0,
        max_entries: int = 100_000,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        if max_entries <= 0:
            raise ValueError(f"max_entries must be > 0, got {max_entries}")
        self.inner = inner
        self.ttl = ttl
        self.max_entries = max_entries
        self._cache: OrderedDict[str, tuple[float, float]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def name(self) -> str:
        return f"cached({self.inner.name})"

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._cache)

    def score(self, features: Mapping[str, float]) -> float:
        """Feature-level scoring has no IP key: always delegates."""
        return self.inner.score(features)

    def score_request(self, request: ClientRequest) -> float:
        """Cached per-IP score, recomputed when the entry ages out."""
        now = request.timestamp
        entry = self._cache.get(request.client_ip)
        if entry is not None:
            cached_at, score = entry
            if now - cached_at <= self.ttl:
                self._cache.move_to_end(request.client_ip)
                self.hits += 1
                return score
            del self._cache[request.client_ip]

        self.misses += 1
        score = self.inner.score_request(request)
        self._cache[request.client_ip] = (now, score)
        self._cache.move_to_end(request.client_ip)
        while len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
        return score

    def invalidate(self, client_ip: str | None = None) -> None:
        """Drop one address's entry, or the whole cache when None."""
        if client_ip is None:
            self._cache.clear()
        else:
            self._cache.pop(client_ip, None)
