"""Per-IP score caching: shaving the AI model off the hot path.

Scoring every request is wasteful when an address's threat-intelligence
attributes change on the scale of hours — and under a flood, the AI
model is itself a resource the attack consumes.  :class:`CachedModel`
wraps any reputation model with a TTL-bounded, capacity-bounded per-IP
cache keyed by the requesting address.

Composition with
:class:`~repro.reputation.feedback.FeedbackReputationModel`: the
recommended order is still feedback *wrapping* caching (the offset is
applied on top of the cached base score, so behaviour reacts
instantly).  The reverse order — caching a feedback-adjusted score —
is now coherent too: the cache subscribes to the inner chain's offset
changes and invalidates the affected IP the moment a penalty or reward
lands, instead of serving the stale pre-feedback score until the TTL
expires.

Cache entries live in an :class:`~repro.state.AdmissionStateStore`
namespace (``score-cache``, entries ``ip -> [cached_at, score]``), so
a warmed cache snapshots/restores with the rest of the admission
state.  Hit/miss counters are process-local diagnostics, not state.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.interfaces import ReputationModel
from repro.core.records import ClientRequest
from repro.reputation.base import model_score_batch, model_score_requests
from repro.state import AdmissionStateStore, InMemoryStateStore

__all__ = ["CachedModel"]


class CachedModel:
    """TTL + LRU cache over an inner model's per-request scores.

    Parameters
    ----------
    inner:
        The wrapped reputation model.
    ttl:
        Seconds a cached score stays valid.
    max_entries:
        Capacity bound; least-recently-used entries are evicted.
    store:
        Admission state store holding the cache table; a private
        in-memory store is created when omitted.
    namespace:
        Store namespace name, for deployments running several caches
        over one store.
    """

    def __init__(
        self,
        inner: ReputationModel,
        ttl: float = 3600.0,
        max_entries: int = 100_000,
        *,
        store: AdmissionStateStore | None = None,
        namespace: str = "score-cache",
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        if max_entries <= 0:
            raise ValueError(f"max_entries must be > 0, got {max_entries}")
        self.inner = inner
        self.ttl = ttl
        self.max_entries = max_entries
        self.store = store if store is not None else InMemoryStateStore()
        self._cache = self.store.namespace(namespace)
        self.hits = 0
        self.misses = 0
        self._subscribe_offset_changes(inner)

    def _subscribe_offset_changes(self, inner) -> None:
        """Invalidate on feedback shifts anywhere in the inner chain.

        Walks ``inner`` through wrapper links (``.base`` / ``.inner``)
        and registers :meth:`invalidate` with every model that
        announces offset changes, keeping a cached feedback-adjusted
        score coherent with the behavioural signal beneath it.
        """
        seen: set[int] = set()
        node = inner
        while node is not None and id(node) not in seen:
            seen.add(id(node))
            subscribe = getattr(node, "subscribe_offset_changes", None)
            if callable(subscribe):
                subscribe(self.invalidate)
            node = getattr(node, "base", None) or getattr(node, "inner", None)

    @property
    def name(self) -> str:
        return f"cached({self.inner.name})"

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._cache)

    def score(self, features: Mapping[str, float]) -> float:
        """Feature-level scoring has no IP key: always delegates."""
        return self.inner.score(features)

    def score_request(self, request: ClientRequest) -> float:
        """Cached per-IP score, recomputed when the entry ages out."""
        now = request.timestamp
        entry = self._cache.get(request.client_ip)
        if entry is not None:
            cached_at, score = entry
            if now - cached_at <= self.ttl:
                self._cache.move_to_end(request.client_ip)
                self.hits += 1
                return score
            del self._cache[request.client_ip]

        self.misses += 1
        score = self.inner.score_request(request)
        self._cache[request.client_ip] = [now, score]
        self._cache.move_to_end(request.client_ip)
        while len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
        return score

    def score_batch(self, features: np.ndarray) -> np.ndarray:
        """Feature-level scoring has no IP key: always delegates."""
        return model_score_batch(self.inner, features)

    def score_requests(
        self, requests: Sequence[ClientRequest]
    ) -> np.ndarray:
        """Batch variant of :meth:`score_request` with one inner call.

        Walks the batch in arrival order resolving cache hits, then
        scores all misses through the inner model in a single batch and
        replays the insert/evict updates in the same order the scalar
        loop would have.  A repeated address later in the batch counts
        as a hit on the score its first occurrence is about to compute
        (matching the scalar loop, where the first occurrence has
        already populated the cache), unless the gap between their
        timestamps exceeds the TTL.

        Hits are resolved against pre-batch cache state, which only
        matches the scalar loop's interleaved inserts when no eviction
        can fire mid-batch; when the batch could overflow
        ``max_entries`` the method falls back to the scalar loop so the
        two paths stay exactly equivalent under cache pressure too.
        """
        if len(self._cache) + len(requests) > self.max_entries:
            return np.array(
                [self.score_request(request) for request in requests],
                dtype=np.float64,
            )
        scores = np.empty(len(requests), dtype=np.float64)
        miss_indices: list[int] = []
        miss_waiters: list[list[int]] = []
        # ip -> (timestamp of the latest pending miss, its waiter list)
        pending: dict[str, tuple[float, list[int]]] = {}
        for i, request in enumerate(requests):
            now = request.timestamp
            ip = request.client_ip
            waiting = pending.get(ip)
            if waiting is not None and now - waiting[0] <= self.ttl:
                self.hits += 1
                waiting[1].append(i)
                continue
            entry = self._cache.get(ip)
            if entry is not None:
                cached_at, score = entry
                if now - cached_at <= self.ttl:
                    self._cache.move_to_end(ip)
                    self.hits += 1
                    scores[i] = score
                    continue
                del self._cache[ip]
            self.misses += 1
            miss_indices.append(i)
            waiters: list[int] = []
            miss_waiters.append(waiters)
            pending[ip] = (now, waiters)
        if miss_indices:
            fresh = model_score_requests(
                self.inner, [requests[i] for i in miss_indices]
            )
            for i, waiters, value in zip(miss_indices, miss_waiters, fresh):
                request = requests[i]
                score = float(value)
                scores[i] = score
                self._cache[request.client_ip] = [request.timestamp, score]
                self._cache.move_to_end(request.client_ip)
                while len(self._cache) > self.max_entries:
                    self._cache.popitem(last=False)
                for j in waiters:
                    scores[j] = score
        return scores

    def invalidate(self, client_ip: str | None = None) -> None:
        """Drop one address's entry, or the whole cache when None."""
        if client_ip is None:
            self._cache.clear()
        else:
            self._cache.pop(client_ip, None)
