"""k-nearest-neighbour reputation model (alternative AI subsystem).

The framework treats the AI model as a swappable component; this k-NN
scorer is the first drop-in alternative to DAbR.  Unlike DAbR it is
*supervised* — it uses both benign and malicious examples — and scores an
IP by the distance-weighted malicious fraction among its ``k`` nearest
training neighbours, stretched onto the [0, 10] scale.
"""

from __future__ import annotations

import numpy as np

from repro.reputation.base import BaseReputationModel
from repro.reputation.dataset import ThreatIntelCorpus
from repro.reputation.features import FeatureSchema

__all__ = ["KNNReputationModel"]


class KNNReputationModel(BaseReputationModel):
    """Distance-weighted k-NN scorer over the normalised feature space.

    Parameters
    ----------
    k:
        Neighbourhood size.  Clamped to the training-set size at fit
        time.
    schema:
        Feature schema; defaults to the canonical schema.
    """

    model_name = "knn"

    def __init__(self, k: int = 15, schema: FeatureSchema | None = None) -> None:
        super().__init__(schema)
        if k <= 0:
            raise ValueError(f"k must be > 0, got {k}")
        self.k = k
        self._matrix: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    def _fit(self, corpus: ThreatIntelCorpus) -> None:
        self._matrix = self.schema.normalize(corpus.feature_matrix())
        self._labels = corpus.labels().astype(np.float64)

    def _score_vector(self, vector: np.ndarray) -> float:
        assert self._matrix is not None and self._labels is not None
        distances = np.linalg.norm(self._matrix - vector, axis=1)
        k = min(self.k, len(distances))
        nearest = np.argpartition(distances, k - 1)[:k]
        # Inverse-distance weights; the epsilon keeps exact matches finite.
        weights = 1.0 / (distances[nearest] + 1e-9)
        malicious_fraction = float(
            np.average(self._labels[nearest], weights=weights)
        )
        return 10.0 * malicious_fraction
