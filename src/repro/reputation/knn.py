"""k-nearest-neighbour reputation model (alternative AI subsystem).

The framework treats the AI model as a swappable component; this k-NN
scorer is the first drop-in alternative to DAbR.  Unlike DAbR it is
*supervised* — it uses both benign and malicious examples — and scores an
IP by the distance-weighted malicious fraction among its ``k`` nearest
training neighbours, stretched onto the [0, 10] scale.
"""

from __future__ import annotations

import numpy as np

from repro.reputation.base import BaseReputationModel
from repro.reputation.dataset import ThreatIntelCorpus
from repro.reputation.features import FeatureSchema

__all__ = ["KNNReputationModel"]


class KNNReputationModel(BaseReputationModel):
    """Distance-weighted k-NN scorer over the normalised feature space.

    Parameters
    ----------
    k:
        Neighbourhood size.  Clamped to the training-set size at fit
        time.
    schema:
        Feature schema; defaults to the canonical schema.
    """

    model_name = "knn"

    def __init__(self, k: int = 15, schema: FeatureSchema | None = None) -> None:
        super().__init__(schema)
        if k <= 0:
            raise ValueError(f"k must be > 0, got {k}")
        self.k = k
        self._matrix: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    #: Queries scored per inner block: bounds the (chunk, train, k)
    #: broadcast buffer to tens of MB at production batch sizes.
    _CHUNK = 128

    def _fit(self, corpus: ThreatIntelCorpus) -> None:
        self._matrix = self.schema.normalize(corpus.feature_matrix())
        self._labels = corpus.labels().astype(np.float64)

    def _score_matrix(self, matrix: np.ndarray) -> np.ndarray:
        # Chunked broadcast distances rather than a GEMM expansion: every
        # operation here reduces each query row independently, so a
        # query's score does not depend on its batch's size — the scalar
        # path (a one-row matrix through this same code) is bit-identical
        # to the batch path, which a BLAS matmul would not guarantee.
        assert self._matrix is not None and self._labels is not None
        train = self._matrix
        labels = self._labels
        k = min(self.k, train.shape[0])
        scores = np.empty(matrix.shape[0], dtype=np.float64)
        for start in range(0, matrix.shape[0], self._CHUNK):
            chunk = matrix[start : start + self._CHUNK]
            diff = chunk[:, np.newaxis, :] - train[np.newaxis, :, :]
            distances = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
            nearest = np.argpartition(distances, k - 1, axis=1)[:, :k]
            near_dist = np.take_along_axis(distances, nearest, axis=1)
            # Inverse-distance weights; epsilon keeps exact matches finite.
            weights = 1.0 / (near_dist + 1e-9)
            malicious_fraction = (labels[nearest] * weights).sum(
                axis=1
            ) / weights.sum(axis=1)
            scores[start : start + self._CHUNK] = 10.0 * malicious_fraction
        return scores
