"""Shared scaffolding for reputation models.

Concrete models (DAbR, k-NN, ensembles) share the same life-cycle:
construct → :meth:`fit` on a corpus → :meth:`score` feature mappings.
:class:`BaseReputationModel` centralises schema handling, the
fitted-state guard, and score clamping so each model only implements its
``_score_vector``.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.errors import ModelNotFittedError
from repro.core.records import ClientRequest
from repro.reputation.dataset import ThreatIntelCorpus
from repro.reputation.features import DEFAULT_SCHEMA, FeatureSchema

__all__ = ["BaseReputationModel", "clamp_score"]

#: Reputation scores are confined to the paper's [0, 10] scale.
SCORE_LOW = 0.0
SCORE_HIGH = 10.0


def clamp_score(score: float) -> float:
    """Clamp ``score`` into the canonical [0, 10] range."""
    return min(max(float(score), SCORE_LOW), SCORE_HIGH)


class BaseReputationModel:
    """Template base class for reputation scorers.

    Subclasses implement :meth:`_fit` (consume the corpus) and
    :meth:`_score_vector` (score one *normalised* feature vector); the
    base class handles vectorisation, normalisation, the not-fitted
    guard, and clamping to [0, 10].
    """

    #: Overridden by subclasses with a short registry-friendly name.
    model_name = "base"

    def __init__(self, schema: FeatureSchema | None = None) -> None:
        self.schema = schema or DEFAULT_SCHEMA
        self._fitted = False

    @property
    def name(self) -> str:
        """Registry-friendly model name."""
        return self.model_name

    @property
    def fitted(self) -> bool:
        """True once :meth:`fit` has completed."""
        return self._fitted

    def fit(self, corpus: ThreatIntelCorpus) -> "BaseReputationModel":
        """Train on ``corpus``; returns self for chaining."""
        if len(corpus) == 0:
            raise ValueError("cannot fit on an empty corpus")
        if corpus.schema.names != self.schema.names:
            raise ValueError(
                "corpus schema does not match model schema: "
                f"{corpus.schema.names} vs {self.schema.names}"
            )
        self._fit(corpus)
        self._fitted = True
        return self

    def score(self, features: Mapping[str, float]) -> float:
        """Score one feature mapping; result is clamped to [0, 10]."""
        if not self._fitted:
            raise ModelNotFittedError(
                f"{type(self).__name__} must be fit() before scoring"
            )
        vector = self.schema.normalize(self.schema.vectorize(features))[0]
        return clamp_score(self._score_vector(vector))

    def score_request(self, request: ClientRequest) -> float:
        """Score the features attached to a :class:`ClientRequest`."""
        return self.score(request.features)

    def score_many(self, rows) -> np.ndarray:
        """Vector of scores for an iterable of feature mappings."""
        return np.array([self.score(row) for row in rows])

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _fit(self, corpus: ThreatIntelCorpus) -> None:
        raise NotImplementedError

    def _score_vector(self, vector: np.ndarray) -> float:
        raise NotImplementedError
