"""Shared scaffolding for reputation models.

Concrete models (DAbR, k-NN, ensembles) share the same life-cycle:
construct → :meth:`fit` on a corpus → :meth:`score` feature mappings.
:class:`BaseReputationModel` centralises schema handling, the
fitted-state guard, and score clamping so each model only implements
one scoring hook: ``_score_vector`` (one normalised vector at a time)
or ``_score_matrix`` (a whole normalised matrix at once).

Implementing either hook makes both the scalar and the batch API work:
``_score_matrix`` falls back to looping ``_score_vector`` (so
third-party subclasses written against the original scalar hook keep
working), and ``_score_vector`` falls back to scoring a one-row matrix
(so the shipped vectorised models produce bit-identical scores on both
paths — the scalar path *is* the batch path with n = 1).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.errors import ModelNotFittedError
from repro.core.records import ClientRequest
from repro.reputation.dataset import ThreatIntelCorpus
from repro.reputation.features import DEFAULT_SCHEMA, FeatureSchema

__all__ = [
    "BaseReputationModel",
    "clamp_score",
    "model_score_batch",
    "model_score_requests",
]

#: Reputation scores are confined to the paper's [0, 10] scale.
SCORE_LOW = 0.0
SCORE_HIGH = 10.0


def clamp_score(score: float) -> float:
    """Clamp ``score`` into the canonical [0, 10] range."""
    return min(max(float(score), SCORE_LOW), SCORE_HIGH)


def model_score_batch(model, features: np.ndarray) -> np.ndarray:
    """Score a raw feature matrix through ``model``, batch if it can.

    Uses the model's ``score_batch`` when present; otherwise loops the
    scalar :meth:`score` over rows converted back to mappings via the
    model's schema (``DEFAULT_SCHEMA`` when it declares none).  Lets
    ensembles and wrappers compose third-party scalar-only models into
    the batch pipeline.
    """
    batch = getattr(model, "score_batch", None)
    if batch is not None:
        return np.asarray(batch(features), dtype=np.float64)
    schema = getattr(model, "schema", None) or DEFAULT_SCHEMA
    matrix = np.atleast_2d(np.asarray(features, dtype=np.float64))
    return np.array(
        [model.score(schema.to_mapping(row)) for row in matrix],
        dtype=np.float64,
    )


def model_score_requests(
    model, requests: Sequence[ClientRequest]
) -> np.ndarray:
    """Score requests through ``model``, batched when it supports it."""
    batch = getattr(model, "score_requests", None)
    if batch is not None:
        return np.asarray(batch(requests), dtype=np.float64)
    return np.array(
        [model.score_request(request) for request in requests],
        dtype=np.float64,
    )


class BaseReputationModel:
    """Template base class for reputation scorers.

    Subclasses implement :meth:`_fit` (consume the corpus) and one of
    :meth:`_score_vector` / :meth:`_score_matrix`; the base class
    handles vectorisation, normalisation, the not-fitted guard, and
    clamping to [0, 10] on both the scalar and the batch path.
    """

    #: Overridden by subclasses with a short registry-friendly name.
    model_name = "base"

    def __init__(self, schema: FeatureSchema | None = None) -> None:
        self.schema = schema or DEFAULT_SCHEMA
        self._fitted = False

    @property
    def name(self) -> str:
        """Registry-friendly model name."""
        return self.model_name

    @property
    def fitted(self) -> bool:
        """True once :meth:`fit` has completed."""
        return self._fitted

    def fit(self, corpus: ThreatIntelCorpus) -> "BaseReputationModel":
        """Train on ``corpus``; returns self for chaining."""
        if len(corpus) == 0:
            raise ValueError("cannot fit on an empty corpus")
        if corpus.schema.names != self.schema.names:
            raise ValueError(
                "corpus schema does not match model schema: "
                f"{corpus.schema.names} vs {self.schema.names}"
            )
        self._fit(corpus)
        self._fitted = True
        return self

    def score(self, features: Mapping[str, float]) -> float:
        """Score one feature mapping; result is clamped to [0, 10]."""
        if not self._fitted:
            raise ModelNotFittedError(
                f"{type(self).__name__} must be fit() before scoring"
            )
        vector = self.schema.normalize(self.schema.vectorize(features))[0]
        return clamp_score(self._score_vector(vector))

    def score_request(self, request: ClientRequest) -> float:
        """Score the features attached to a :class:`ClientRequest`."""
        return self.score(request.features)

    def score_batch(self, features: np.ndarray) -> np.ndarray:
        """Scores for a raw ``(n, k)`` feature matrix, clamped to [0, 10].

        ``features`` holds *unnormalised* feature rows in schema column
        order (what :meth:`FeatureSchema.vectorize_batch` produces).
        For the shipped models this is one vectorised pass — the hot
        path of :meth:`AIPoWFramework.challenge_batch`.
        """
        if not self._fitted:
            raise ModelNotFittedError(
                f"{type(self).__name__} must be fit() before scoring"
            )
        matrix = self.schema.normalize(features)
        return np.clip(self._score_matrix(matrix), SCORE_LOW, SCORE_HIGH)

    def score_requests(
        self, requests: Sequence[ClientRequest]
    ) -> np.ndarray:
        """Vector of scores for a sequence of :class:`ClientRequest`."""
        return self.score_batch(
            self.schema.vectorize_batch(
                [request.features for request in requests]
            )
        )

    def score_many(self, rows) -> np.ndarray:
        """Vector of scores for an iterable of feature mappings."""
        return self.score_batch(self.schema.vectorize_batch(rows))

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _fit(self, corpus: ThreatIntelCorpus) -> None:
        raise NotImplementedError

    def _score_vector(self, vector: np.ndarray) -> float:
        """Score one *normalised* vector; default defers to the matrix hook.

        Routing the scalar path through :meth:`_score_matrix` is what
        guarantees bit-identical scores between ``score`` and
        ``score_batch`` for models that implement the matrix hook.
        """
        if type(self)._score_matrix is BaseReputationModel._score_matrix:
            raise NotImplementedError(
                f"{type(self).__name__} must implement _score_vector "
                "or _score_matrix"
            )
        return float(self._score_matrix(vector[np.newaxis, :])[0])

    def _score_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Score each row of a *normalised* matrix; default loops rows."""
        if type(self)._score_vector is BaseReputationModel._score_vector:
            raise NotImplementedError(
                f"{type(self).__name__} must implement _score_vector "
                "or _score_matrix"
            )
        return np.array(
            [self._score_vector(row) for row in matrix], dtype=np.float64
        )
