"""Behavioural feedback: the *dynamic* half of Dynamic Attribute-based
Reputation.

The base DAbR score is computed from static threat-intelligence
attributes.  The original DAbR paper (and this paper's conclusion) point
toward scores that *react to observed behaviour*: a client that keeps
submitting bad solutions or abandoning puzzles should drift toward
untrustworthy; one with a long record of clean exchanges should earn
back trust.

:class:`FeedbackReputationModel` wraps any base model with a per-IP
behavioural offset:

* every rejected/replayed solution adds ``penalty_step`` to the
  client's offset (up to ``max_penalty``);
* every served response subtracts ``reward_step`` (down to
  ``-max_reward``);
* offsets decay exponentially with a half-life, so stale history fades.

The wrapper satisfies the :class:`~repro.core.interfaces.ReputationModel`
protocol and can observe outcomes automatically via the framework's
event bus (:meth:`attach`).

State lives in an :class:`~repro.state.AdmissionStateStore` namespace
(``feedback``, entries ``ip -> [offset, updated_at]``), so a warmed
reputation table can be snapshotted, restored, and sharded across
gateway workers.  Offset changes are announced to subscribers
(:meth:`subscribe_offset_changes`) so caching layers above this model
can invalidate the affected IP instead of serving a stale score.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.events import EventBus, EventKind, FrameworkEvent
from repro.core.interfaces import ReputationModel
from repro.core.records import ClientRequest, ResponseStatus, ServedResponse
from repro.reputation.base import clamp_score, model_score_requests
from repro.state import AdmissionStateStore, InMemoryStateStore

__all__ = ["FeedbackConfig", "FeedbackReputationModel"]


@dataclasses.dataclass(frozen=True, slots=True)
class FeedbackConfig:
    """Tuning of the behavioural feedback loop.

    Parameters
    ----------
    penalty_step:
        Score points added per bad outcome (rejected/replayed).
    reward_step:
        Score points subtracted per clean served exchange.
    max_penalty / max_reward:
        Clamps on the accumulated offset in either direction.
    half_life:
        Seconds for an offset to decay to half; ``inf`` disables decay.
    """

    penalty_step: float = 1.0
    reward_step: float = 0.1
    max_penalty: float = 5.0
    max_reward: float = 2.0
    half_life: float = 600.0

    def __post_init__(self) -> None:
        if self.penalty_step < 0 or self.reward_step < 0:
            raise ValueError("steps must be >= 0")
        if self.max_penalty < 0 or self.max_reward < 0:
            raise ValueError("clamps must be >= 0")
        if self.half_life <= 0:
            raise ValueError(f"half_life must be > 0, got {self.half_life}")


# Per-IP state is a JSON-safe two-slot list, mutated in place:
_OFFSET, _UPDATED_AT = 0, 1


class FeedbackReputationModel:
    """Per-IP behavioural offset on top of a base reputation model.

    Parameters
    ----------
    base:
        The wrapped reputation model.
    config:
        Feedback tuning; defaults to :class:`FeedbackConfig`.
    max_tracked_ips:
        Capacity bound on the offset table.
    store:
        Admission state store holding the offset table; a private
        in-memory store is created when omitted.
    namespace:
        Store namespace name, for deployments running several feedback
        models over one store.
    """

    #: Outcomes that count as hostile behaviour.
    _BAD = (ResponseStatus.REJECTED, ResponseStatus.REPLAYED)

    #: Scores drift as offsets move mid-run, so batch consumers that
    #: pre-score clients (the vectorized simulator's array admission)
    #: must route requests through the framework path instead.
    scoring_is_stateful = True

    def __init__(
        self,
        base: ReputationModel,
        config: FeedbackConfig | None = None,
        max_tracked_ips: int = 100_000,
        *,
        store: AdmissionStateStore | None = None,
        namespace: str = "feedback",
    ) -> None:
        if max_tracked_ips <= 0:
            raise ValueError(
                f"max_tracked_ips must be > 0, got {max_tracked_ips}"
            )
        self.base = base
        self.config = config or FeedbackConfig()
        self.max_tracked_ips = max_tracked_ips
        self.store = store if store is not None else InMemoryStateStore()
        self._states = self.store.namespace(namespace)
        self._listeners: list[Callable[[str], None]] = []

    @property
    def name(self) -> str:
        return f"feedback({self.base.name})"

    @property
    def tracked_ips(self) -> int:
        """Number of IPs with a live behavioural offset."""
        return len(self._states)

    # ------------------------------------------------------------------
    # ReputationModel protocol
    # ------------------------------------------------------------------
    def score(self, features: Mapping[str, float]) -> float:
        """Base score only — feature-level scoring has no IP context."""
        return self.base.score(features)

    def score_request(self, request: ClientRequest) -> float:
        """Base score plus the client's decayed behavioural offset."""
        base = self.base.score_request(request)
        offset = self.offset_for(request.client_ip, now=request.timestamp)
        return clamp_score(base + offset)

    def score_requests(
        self, requests: Sequence[ClientRequest]
    ) -> np.ndarray:
        """Batch variant: base scores batched, offsets applied per IP."""
        base = model_score_requests(self.base, requests)
        scores = np.empty(len(base), dtype=np.float64)
        for i, (request, value) in enumerate(zip(requests, base)):
            offset = self.offset_for(
                request.client_ip, now=request.timestamp
            )
            scores[i] = clamp_score(float(value) + offset)
        return scores

    # ------------------------------------------------------------------
    # Feedback plumbing
    # ------------------------------------------------------------------
    def offset_for(self, client_ip: str, now: float) -> float:
        """The client's current offset, after decay (read-only)."""
        state = self._states.get(client_ip)
        if state is None:
            return 0.0
        return self._decayed(state, now)

    def _decayed(self, state: list, now: float) -> float:
        elapsed = max(0.0, now - state[_UPDATED_AT])
        if math.isinf(self.config.half_life):
            return state[_OFFSET]
        return state[_OFFSET] * 0.5 ** (elapsed / self.config.half_life)

    def observe(self, response: ServedResponse, now: float | None = None) -> None:
        """Fold one terminal outcome into the client's offset."""
        ip = response.decision.request.client_ip
        when = response.decision.request.timestamp if now is None else now
        state = self._states.get(ip)
        if state is None:
            if len(self._states) >= self.max_tracked_ips:
                self._evict_smallest()
            state = self._states.setdefault(ip, [0.0, when])
        current = self._decayed(state, when)
        changed = True

        if response.status in self._BAD:
            current = min(
                current + self.config.penalty_step, self.config.max_penalty
            )
        elif response.status is ResponseStatus.SERVED:
            current = max(
                current - self.config.reward_step, -self.config.max_reward
            )
        else:
            # ABANDONED / EXPIRED are ambiguous (patience, network) — neutral.
            changed = False

        # Explicit write-back instead of in-place list mutation: a remote
        # namespace hands out deserialized copies, so mutating ``state``
        # would silently update nothing.  ``__setitem__`` on an existing
        # key keeps its position, so local behaviour is unchanged.
        self._states[ip] = [current, when]
        if changed:
            for listener in self._listeners:
                listener(ip)

    def subscribe_offset_changes(
        self, listener: Callable[[str], None]
    ) -> None:
        """Call ``listener(client_ip)`` whenever an offset shifts.

        Cache layers above this model subscribe their ``invalidate`` so
        a penalty or reward is reflected by the very next score instead
        of after the cached entry's TTL.
        """
        self._listeners.append(listener)

    def _evict_smallest(self) -> None:
        """Drop the IP with the smallest |offset| (least information)."""
        # One pass over items() rather than a per-key lookup: against a
        # networked store the latter would cost a round trip per IP.
        victim = min(
            self._states.items(), key=lambda entry: abs(entry[1][_OFFSET])
        )[0]
        del self._states[victim]

    def attach(self, bus: EventBus) -> "FeedbackReputationModel":
        """Observe outcomes automatically from a framework's bus."""
        bus.subscribe(self._on_event, kinds=[EventKind.RESPONSE_SERVED])
        return self

    def _on_event(self, event: FrameworkEvent) -> None:
        response = event.payload.get("response")
        if isinstance(response, ServedResponse):
            self.observe(response, now=event.timestamp)
