"""Logistic-regression reputation model (trained from scratch).

A third interchangeable AI subsystem: supervised logistic regression
over the normalised feature space, fitted by full-batch gradient
descent with L2 regularisation — no external ML dependency, which keeps
the reproduction self-contained.  The score is the predicted
probability of maliciousness stretched to the paper's [0, 10] scale.

Included because the framework's modularity claim deserves more than
one model *family*: DAbR is unsupervised-distance, k-NN is local
memorisation, and this is a global parametric boundary.  The `acc80`
context table in EXPERIMENTS.md compares all three.
"""

from __future__ import annotations

import numpy as np

from repro.reputation.base import BaseReputationModel
from repro.reputation.dataset import ThreatIntelCorpus
from repro.reputation.features import FeatureSchema

__all__ = ["LogisticReputationModel"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Clip to keep exp() in range; gradients are unaffected in practice.
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


class LogisticReputationModel(BaseReputationModel):
    """L2-regularised logistic regression via gradient descent.

    Parameters
    ----------
    learning_rate:
        Gradient step size.
    iterations:
        Full-batch gradient steps.
    l2:
        Ridge penalty on the weights (not the bias).
    """

    model_name = "logistic"

    def __init__(
        self,
        schema: FeatureSchema | None = None,
        learning_rate: float = 0.5,
        iterations: int = 400,
        l2: float = 1e-3,
    ) -> None:
        super().__init__(schema)
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {learning_rate}")
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        if l2 < 0:
            raise ValueError(f"l2 must be >= 0, got {l2}")
        self.learning_rate = learning_rate
        self.iterations = iterations
        self.l2 = l2
        self._weights: np.ndarray | None = None
        self._bias: float = 0.0
        self.loss_history: list[float] = []

    @property
    def weights(self) -> np.ndarray:
        """Learned weights in normalised feature space."""
        if self._weights is None:
            raise AttributeError("model is not fitted")
        return self._weights.copy()

    def _fit(self, corpus: ThreatIntelCorpus) -> None:
        matrix = self.schema.normalize(corpus.feature_matrix())
        labels = corpus.labels().astype(np.float64)
        if labels.min() == labels.max():
            raise ValueError(
                "logistic regression needs both classes in the corpus"
            )
        n, k = matrix.shape
        weights = np.zeros(k)
        bias = 0.0
        self.loss_history = []
        for _ in range(self.iterations):
            predictions = _sigmoid(matrix @ weights + bias)
            error = predictions - labels
            grad_w = matrix.T @ error / n + self.l2 * weights
            grad_b = float(error.mean())
            weights -= self.learning_rate * grad_w
            bias -= self.learning_rate * grad_b
            # Cross-entropy (clipped) for convergence diagnostics.
            eps = 1e-12
            loss = float(
                -np.mean(
                    labels * np.log(predictions + eps)
                    + (1 - labels) * np.log(1 - predictions + eps)
                )
                + 0.5 * self.l2 * float(weights @ weights)
            )
            self.loss_history.append(loss)
        self._weights = weights
        self._bias = bias

    def _score_matrix(self, matrix: np.ndarray) -> np.ndarray:
        # einsum (not @) keeps the per-row reduction order independent of
        # the batch size, so the scalar path — a one-row matrix through
        # this same code — is bit-identical to any batch containing it.
        assert self._weights is not None
        logits = np.einsum("ij,j->i", matrix, self._weights) + self._bias
        return 10.0 * _sigmoid(logits)
