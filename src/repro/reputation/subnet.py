"""Subnet-aggregate scoring: guilt by network association.

Botnets concentrate in address space — compromised hosting ranges, open
resolvers in one AS.  DAbR-style per-address scoring misses a *fresh*
bot from a known-bad /24 until intel catches up.
:class:`SubnetAggregateModel` closes that gap: it tracks a running mean
score per enclosing subnet and scores each request as::

    max(base_score, blend * subnet_mean)

so a new address inherits (part of) its neighbourhood's reputation
while genuinely clean subnets are unaffected.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.interfaces import ReputationModel
from repro.core.records import ClientRequest
from repro.metrics.stats import StreamingStats
from repro.reputation.base import clamp_score, model_score_requests
from repro.traffic.ipaddr import subnet_of

__all__ = ["SubnetAggregateModel"]


class SubnetAggregateModel:
    """Blends per-address scores with their subnet's running mean.

    Parameters
    ----------
    inner:
        The per-address model.
    prefix:
        Aggregation prefix length (24 = /24 neighbourhoods).
    blend:
        Fraction of the subnet mean an address can inherit, in [0, 1].
    min_observations:
        Subnet means based on fewer addresses than this are ignored
        (one bad apple should not condemn a /24 by itself).
    """

    def __init__(
        self,
        inner: ReputationModel,
        prefix: int = 24,
        blend: float = 0.8,
        min_observations: int = 3,
    ) -> None:
        if not 0 <= prefix <= 32:
            raise ValueError(f"prefix must be in [0, 32], got {prefix}")
        if not 0.0 <= blend <= 1.0:
            raise ValueError(f"blend must be in [0, 1], got {blend}")
        if min_observations < 1:
            raise ValueError(
                f"min_observations must be >= 1, got {min_observations}"
            )
        self.inner = inner
        self.prefix = prefix
        self.blend = blend
        self.min_observations = min_observations
        self._aggregates: dict[str, StreamingStats] = {}
        self._seen_ips: dict[str, set[str]] = {}

    @property
    def name(self) -> str:
        return f"subnet(/{self.prefix},{self.inner.name})"

    def subnet_mean(self, client_ip: str) -> float | None:
        """The usable aggregate for ``client_ip``'s subnet, if any."""
        subnet = subnet_of(client_ip, self.prefix)
        stats = self._aggregates.get(subnet)
        if stats is None:
            return None
        if len(self._seen_ips.get(subnet, ())) < self.min_observations:
            return None
        return stats.mean

    def score(self, features: Mapping[str, float]) -> float:
        """Feature-level scoring has no address: delegates unchanged."""
        return self.inner.score(features)

    def score_request(self, request: ClientRequest) -> float:
        base = self.inner.score_request(request)
        subnet = subnet_of(request.client_ip, self.prefix)

        aggregate = self.subnet_mean(request.client_ip)
        score = base
        if aggregate is not None:
            score = max(base, self.blend * aggregate)

        # Update the neighbourhood with this address's own evidence.
        stats = self._aggregates.setdefault(subnet, StreamingStats())
        stats.add(base)
        self._seen_ips.setdefault(subnet, set()).add(request.client_ip)
        return clamp_score(score)

    def score_requests(
        self, requests: Sequence[ClientRequest]
    ) -> np.ndarray:
        """Batch variant: inner scores batched, aggregates updated in order.

        The neighbourhood statistics are folded in request order, so the
        result is identical to looping :meth:`score_request` (a repeated
        subnet later in the batch sees the evidence its earlier members
        contributed).
        """
        base = model_score_requests(self.inner, requests)
        scores = np.empty(len(base), dtype=np.float64)
        for i, (request, value) in enumerate(zip(requests, base)):
            value = float(value)
            subnet = subnet_of(request.client_ip, self.prefix)
            aggregate = self.subnet_mean(request.client_ip)
            score = value
            if aggregate is not None:
                score = max(value, self.blend * aggregate)
            stats = self._aggregates.setdefault(subnet, StreamingStats())
            stats.add(value)
            self._seen_ips.setdefault(subnet, set()).add(request.client_ip)
            scores[i] = clamp_score(score)
        return scores

    def tracked_subnets(self) -> int:
        """Number of subnets with at least one observation."""
        return len(self._aggregates)
