"""DAbR: Dynamic Attribute-based Reputation scoring (paper §II.1).

DAbR (Renjan et al., ISI 2018) is "a Euclidean distance-based technique
that generates a reputation score for an IP address by learning from
previously known malicious IP addresses and their attributes".  This
implementation follows that recipe:

1. **Learning** — vectorise the *malicious* training examples, normalise
   each attribute into [0, 1], and summarise the malicious population by
   its centroid plus a distance scale (a high percentile of in-cluster
   distances).
2. **Scoring** — for an incoming IP's attribute vector, compute the
   Euclidean distance to the malicious centroid and map it smoothly onto
   the paper's [0, 10] scale, with 10 at the centroid (most
   untrustworthy) falling off as the vector moves away:

   ``score(x) = 10 / (1 + (dist(x) / scale) ** gamma)``

   ``scale`` makes the score 5 exactly at the learned cluster boundary;
   ``gamma`` controls how sharp that boundary is.

The mapping is monotone in distance, so the model's ordering of clients
is exactly the ordering by similarity to known-malicious traffic — the
property the adaptive issuer relies on.
"""

from __future__ import annotations

import numpy as np

from repro.reputation.base import BaseReputationModel
from repro.reputation.dataset import ThreatIntelCorpus
from repro.reputation.features import FeatureSchema

__all__ = ["DAbRModel"]


class DAbRModel(BaseReputationModel):
    """Euclidean-distance reputation scorer learned from malicious IPs.

    Parameters
    ----------
    schema:
        Feature schema; defaults to the canonical ten-attribute schema.
    scale_percentile:
        Percentile of malicious-to-centroid distances used as the
        score-5 boundary.  Higher values are more forgiving to
        borderline-malicious traffic.
    gamma:
        Sharpness of the distance → score fall-off (> 0).
    """

    model_name = "dabr"

    def __init__(
        self,
        schema: FeatureSchema | None = None,
        scale_percentile: float = 82.0,
        gamma: float = 3.2,
    ) -> None:
        super().__init__(schema)
        if not 0.0 < scale_percentile <= 100.0:
            raise ValueError(
                f"scale_percentile must be in (0, 100], got {scale_percentile}"
            )
        if gamma <= 0:
            raise ValueError(f"gamma must be > 0, got {gamma}")
        self.scale_percentile = scale_percentile
        self.gamma = gamma
        self._centroid: np.ndarray | None = None
        self._scale: float = 1.0

    # ------------------------------------------------------------------
    # Fitted state introspection (used by tests and calibration)
    # ------------------------------------------------------------------
    @property
    def centroid(self) -> np.ndarray:
        """The learned malicious centroid in normalised feature space."""
        if self._centroid is None:
            raise AttributeError("model is not fitted")
        return self._centroid.copy()

    @property
    def scale(self) -> float:
        """Distance at which the score crosses 5.0."""
        return self._scale

    # ------------------------------------------------------------------
    # BaseReputationModel hooks
    # ------------------------------------------------------------------
    def _fit(self, corpus: ThreatIntelCorpus) -> None:
        malicious = corpus.malicious
        if not malicious:
            raise ValueError(
                "DAbR learns from known-malicious IPs; corpus has none"
            )
        matrix = self.schema.normalize(
            self.schema.vectorize_many(e.features for e in malicious)
        )
        self._centroid = matrix.mean(axis=0)
        distances = np.linalg.norm(matrix - self._centroid, axis=1)
        scale = float(np.percentile(distances, self.scale_percentile))
        # A degenerate single-point cluster still needs a usable scale.
        self._scale = max(scale, 1e-6)

    def _score_matrix(self, matrix: np.ndarray) -> np.ndarray:
        # One vectorised pass; the scalar path scores a one-row matrix
        # through this same code, so both paths are bit-identical.
        assert self._centroid is not None  # guarded by BaseReputationModel
        diff = matrix - self._centroid
        distance = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        return 10.0 / (1.0 + (distance / self._scale) ** self.gamma)

    def distance(self, features) -> float:
        """Euclidean distance of ``features`` to the malicious centroid.

        Exposed for analysis and tests; scoring is a monotone transform
        of this value.
        """
        if self._centroid is None:
            from repro.core.errors import ModelNotFittedError

            raise ModelNotFittedError("DAbRModel must be fit() first")
        vector = self.schema.normalize(self.schema.vectorize(features))[0]
        return float(np.linalg.norm(vector - self._centroid))
