"""Ensembling and post-processing wrappers for reputation models.

Production reputation pipelines rarely trust a single signal.  These
wrappers compose models while preserving the :class:`ReputationModel`
protocol, so the framework can consume an ensemble exactly like DAbR:

* :class:`AverageEnsemble` — weighted mean of member scores;
* :class:`MaxEnsemble` — most-pessimistic member wins (fail-closed);
* :class:`NoisyModel` — adds bounded noise to a base model, used by the
  benches to study how policy choice copes with AI-model error (the
  motivation for the paper's Policy 3).

All wrappers also implement the batch scoring API (``score_batch`` for
raw feature matrices, ``score_requests`` for request sequences) by
batching through each member when it supports it and looping otherwise,
so ensembles slot into :meth:`AIPoWFramework.challenge_batch` without
losing the vectorised members' speed.
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

import numpy as np

from repro.core.interfaces import ReputationModel
from repro.core.records import ClientRequest
from repro.reputation.base import (
    SCORE_HIGH,
    SCORE_LOW,
    clamp_score,
    model_score_batch,
    model_score_requests,
)

__all__ = ["AverageEnsemble", "MaxEnsemble", "NoisyModel", "ConstantModel"]


def _batch_length(features: np.ndarray) -> int:
    """Row count of a raw feature matrix (a lone vector counts as 1)."""
    features = np.asarray(features)
    return features.shape[0] if features.ndim > 1 else 1


class ConstantModel:
    """Scores every request the same — the "no AI" baseline.

    With score 0 and a linear policy this degenerates the framework to
    classic uniform PoW (every client gets the same puzzle), which is
    exactly the state of the art the paper improves upon.
    """

    def __init__(self, value: float = 0.0) -> None:
        self.value = clamp_score(value)

    @property
    def name(self) -> str:
        return f"constant({self.value:g})"

    def score(self, features: Mapping[str, float]) -> float:
        return self.value

    def score_request(self, request: ClientRequest) -> float:
        return self.value

    def score_batch(self, features: np.ndarray) -> np.ndarray:
        return np.full(_batch_length(features), self.value)

    def score_requests(
        self, requests: Sequence[ClientRequest]
    ) -> np.ndarray:
        return np.full(len(requests), self.value)


class AverageEnsemble:
    """Weighted-average ensemble over fitted reputation models."""

    def __init__(
        self,
        members: Sequence[ReputationModel],
        weights: Sequence[float] | None = None,
    ) -> None:
        if not members:
            raise ValueError("ensemble needs at least one member")
        if weights is None:
            weights = [1.0] * len(members)
        if len(weights) != len(members):
            raise ValueError(
                f"got {len(weights)} weights for {len(members)} members"
            )
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError("weights must be non-negative with positive sum")
        self._members = tuple(members)
        self._weights = tuple(float(w) for w in weights)

    @property
    def name(self) -> str:
        inner = "+".join(m.name for m in self._members)
        return f"avg({inner})"

    def score(self, features: Mapping[str, float]) -> float:
        total = sum(
            w * m.score(features)
            for m, w in zip(self._members, self._weights)
        )
        return clamp_score(total / sum(self._weights))

    def score_request(self, request: ClientRequest) -> float:
        return self.score(request.features)

    def score_batch(self, features: np.ndarray) -> np.ndarray:
        total = sum(
            w * model_score_batch(m, features)
            for m, w in zip(self._members, self._weights)
        )
        return np.clip(total / sum(self._weights), SCORE_LOW, SCORE_HIGH)

    def score_requests(
        self, requests: Sequence[ClientRequest]
    ) -> np.ndarray:
        total = sum(
            w * model_score_requests(m, requests)
            for m, w in zip(self._members, self._weights)
        )
        return np.clip(total / sum(self._weights), SCORE_LOW, SCORE_HIGH)


class MaxEnsemble:
    """Fail-closed ensemble: the highest (worst) member score wins."""

    def __init__(self, members: Sequence[ReputationModel]) -> None:
        if not members:
            raise ValueError("ensemble needs at least one member")
        self._members = tuple(members)

    @property
    def name(self) -> str:
        inner = "+".join(m.name for m in self._members)
        return f"max({inner})"

    def score(self, features: Mapping[str, float]) -> float:
        return clamp_score(max(m.score(features) for m in self._members))

    def score_request(self, request: ClientRequest) -> float:
        return self.score(request.features)

    def score_batch(self, features: np.ndarray) -> np.ndarray:
        stacked = np.maximum.reduce(
            [model_score_batch(m, features) for m in self._members]
        )
        return np.clip(stacked, SCORE_LOW, SCORE_HIGH)

    def score_requests(
        self, requests: Sequence[ClientRequest]
    ) -> np.ndarray:
        stacked = np.maximum.reduce(
            [model_score_requests(m, requests) for m in self._members]
        )
        return np.clip(stacked, SCORE_LOW, SCORE_HIGH)


class NoisyModel:
    """Wraps a model and perturbs its scores with uniform noise ±ε.

    Models the scoring error the DAbR paper reports; Policy 3's
    error-range mapping exists precisely to absorb this.  Noise is drawn
    from the provided RNG so experiments stay reproducible; the batch
    path draws one value per row in row order, consuming the RNG exactly
    like the equivalent scalar loop.
    """

    def __init__(
        self,
        inner: ReputationModel,
        epsilon: float,
        rng: random.Random | None = None,
    ) -> None:
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        self._inner = inner
        self.epsilon = epsilon
        self._rng = rng or random.Random(0x0E44)

    @property
    def name(self) -> str:
        return f"noisy({self._inner.name},eps={self.epsilon:g})"

    def _noise(self, count: int) -> np.ndarray:
        uniform = self._rng.uniform
        return np.array(
            [uniform(-self.epsilon, self.epsilon) for _ in range(count)]
        )

    def score(self, features: Mapping[str, float]) -> float:
        noise = self._rng.uniform(-self.epsilon, self.epsilon)
        return clamp_score(self._inner.score(features) + noise)

    def score_request(self, request: ClientRequest) -> float:
        return self.score(request.features)

    def score_batch(self, features: np.ndarray) -> np.ndarray:
        base = model_score_batch(self._inner, features)
        return np.clip(base + self._noise(len(base)), SCORE_LOW, SCORE_HIGH)

    def score_requests(
        self, requests: Sequence[ClientRequest]
    ) -> np.ndarray:
        base = model_score_requests(self._inner, requests)
        return np.clip(base + self._noise(len(base)), SCORE_LOW, SCORE_HIGH)
