"""Model persistence: fit once, deploy everywhere.

Serialises fitted reputation models to JSON documents (no pickle — the
artifacts are auditable text, safe to load from config management).
Supports the parametric models whose fitted state is small:
:class:`DAbRModel` (centroid + scale) and
:class:`LogisticReputationModel` (weights + bias).  Memorising models
(k-NN) are deliberately unsupported: persisting the training set is a
data-governance decision, not a serialisation default.

The document embeds the feature schema's names so loading against a
mismatched schema fails loudly instead of scoring garbage.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.core.errors import ReputationError
from repro.reputation.dabr import DAbRModel
from repro.reputation.features import DEFAULT_SCHEMA, FeatureSchema
from repro.reputation.logistic import LogisticReputationModel

__all__ = ["dump_model", "load_model", "save_model_file", "load_model_file"]

_FORMAT_VERSION = 1


def dump_model(model) -> str:
    """Serialise a fitted model to a JSON document."""
    if isinstance(model, DAbRModel):
        if not model.fitted:
            raise ReputationError("cannot persist an unfitted model")
        payload: dict[str, Any] = {
            "format": _FORMAT_VERSION,
            "type": "dabr",
            "schema": list(model.schema.names),
            "centroid": model.centroid.tolist(),
            "scale": model.scale,
            "scale_percentile": model.scale_percentile,
            "gamma": model.gamma,
        }
    elif isinstance(model, LogisticReputationModel):
        if not model.fitted:
            raise ReputationError("cannot persist an unfitted model")
        payload = {
            "format": _FORMAT_VERSION,
            "type": "logistic",
            "schema": list(model.schema.names),
            "weights": model.weights.tolist(),
            "bias": model._bias,
            "learning_rate": model.learning_rate,
            "iterations": model.iterations,
            "l2": model.l2,
        }
    else:
        raise ReputationError(
            f"cannot persist model of type {type(model).__name__}; "
            "supported: DAbRModel, LogisticReputationModel"
        )
    return json.dumps(payload, indent=2)


def load_model(document: str, schema: FeatureSchema | None = None):
    """Reconstruct a fitted model from :func:`dump_model` output."""
    schema = schema or DEFAULT_SCHEMA
    try:
        payload = json.loads(document)
    except json.JSONDecodeError as exc:
        raise ReputationError(f"invalid model JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ReputationError("model document must be a JSON object")
    if payload.get("format") != _FORMAT_VERSION:
        raise ReputationError(
            f"unsupported model format {payload.get('format')!r}"
        )
    stored_schema = payload.get("schema")
    if tuple(stored_schema or ()) != schema.names:
        raise ReputationError(
            "schema mismatch: document was fitted on "
            f"{stored_schema}, loading against {list(schema.names)}"
        )

    kind = payload.get("type")
    if kind == "dabr":
        model = DAbRModel(
            schema=schema,
            scale_percentile=float(payload["scale_percentile"]),
            gamma=float(payload["gamma"]),
        )
        model._centroid = np.asarray(payload["centroid"], dtype=np.float64)
        model._scale = float(payload["scale"])
        model._fitted = True
        return model
    if kind == "logistic":
        model = LogisticReputationModel(
            schema=schema,
            learning_rate=float(payload["learning_rate"]),
            iterations=int(payload["iterations"]),
            l2=float(payload["l2"]),
        )
        model._weights = np.asarray(payload["weights"], dtype=np.float64)
        model._bias = float(payload["bias"])
        model._fitted = True
        return model
    raise ReputationError(f"unknown model type {kind!r}")


def save_model_file(model, path) -> None:
    """Write :func:`dump_model` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_model(model))


def load_model_file(path, schema: FeatureSchema | None = None):
    """Load a model written by :func:`save_model_file`."""
    with open(path, encoding="utf-8") as handle:
        return load_model(handle.read(), schema=schema)
