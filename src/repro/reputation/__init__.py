"""AI subsystem: reputation scoring of incoming IP traffic.

The canonical model is :class:`DAbRModel` — the Euclidean-distance
scorer the paper uses — trained on a synthetic threat-intelligence
corpus that substitutes for the proprietary feed (DESIGN.md §2):

>>> from repro.reputation import DAbRModel, generate_corpus
>>> corpus = generate_corpus(size=3000, seed=7)
>>> train, test = corpus.split()
>>> model = DAbRModel().fit(train)
>>> 0.0 <= model.score(test[0].features) <= 10.0
True
"""

from repro.reputation.base import BaseReputationModel, clamp_score
from repro.reputation.calibration import CalibrationResult, calibrate_dabr
from repro.reputation.dabr import DAbRModel
from repro.reputation.dataset import (
    CorpusParams,
    LabeledExample,
    ThreatIntelCorpus,
    generate_corpus,
)
from repro.reputation.dataset import synthesize_features
from repro.reputation.ensemble import (
    AverageEnsemble,
    ConstantModel,
    MaxEnsemble,
    NoisyModel,
)
from repro.reputation.evaluation import (
    ConfusionMatrix,
    EvaluationReport,
    estimate_epsilon,
    evaluate_model,
    roc_auc,
)
from repro.reputation.features import (
    DEFAULT_SCHEMA,
    FEATURE_NAMES,
    FeatureSchema,
    FeatureSpec,
)
from repro.reputation.caching import CachedModel
from repro.reputation.feedback import FeedbackConfig, FeedbackReputationModel
from repro.reputation.knn import KNNReputationModel
from repro.reputation.logistic import LogisticReputationModel
from repro.reputation.persistence import (
    dump_model,
    load_model,
    load_model_file,
    save_model_file,
)
from repro.reputation.subnet import SubnetAggregateModel

__all__ = [
    "DAbRModel",
    "KNNReputationModel",
    "LogisticReputationModel",
    "FeedbackReputationModel",
    "FeedbackConfig",
    "CachedModel",
    "SubnetAggregateModel",
    "dump_model",
    "load_model",
    "save_model_file",
    "load_model_file",
    "BaseReputationModel",
    "clamp_score",
    "AverageEnsemble",
    "MaxEnsemble",
    "NoisyModel",
    "ConstantModel",
    "synthesize_features",
    "ThreatIntelCorpus",
    "LabeledExample",
    "CorpusParams",
    "generate_corpus",
    "FeatureSchema",
    "FeatureSpec",
    "DEFAULT_SCHEMA",
    "FEATURE_NAMES",
    "ConfusionMatrix",
    "EvaluationReport",
    "evaluate_model",
    "estimate_epsilon",
    "roc_auc",
    "CalibrationResult",
    "calibrate_dabr",
]
