"""Synthetic threat-intelligence corpus (the DAbR training substitute).

DAbR was trained on attributes of previously-known malicious IPs from a
commercial threat-intelligence feed — data we cannot redistribute.  This
module generates a *structurally faithful* substitute (DESIGN.md §2):

* each example models one IP address with a latent **maliciousness
  intensity** in [0, 1] (benign addresses cluster near 0, malicious near
  1, with genuine overlap);
* every schema feature tracks the intensity linearly, scaled by a fixed
  per-feature weight and perturbed by Gaussian noise, then clipped to the
  feature's valid range;
* the ground-truth reputation score of an example is ``10 * intensity``,
  which lets us measure both classification accuracy (the paper's 80 %
  figure) and the score error ε that Policy 3 consumes.

Generation is fully deterministic given a seed.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Iterator, Sequence

import numpy as np

from repro.reputation.features import DEFAULT_SCHEMA, FeatureSchema

__all__ = [
    "LabeledExample",
    "CorpusParams",
    "ThreatIntelCorpus",
    "feature_weights",
    "generate_corpus",
    "synthesize_features",
    "synthesize_feature_matrix",
]


@dataclasses.dataclass(frozen=True, slots=True)
class LabeledExample:
    """One labelled IP observation.

    ``true_score`` is the latent ground-truth reputation (``10 *
    intensity``); ``malicious`` is the binary label derived from which
    population the example was drawn from.
    """

    ip: str
    features: dict[str, float]
    malicious: bool
    true_score: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.true_score <= 10.0:
            raise ValueError(
                f"true_score must be in [0, 10], got {self.true_score}"
            )


@dataclasses.dataclass(frozen=True, slots=True)
class CorpusParams:
    """Knobs controlling the synthetic population.

    The defaults are calibrated so that the DAbR scorer achieves ≈80 %
    accuracy at threshold 5.0 (the paper's reported figure); the `acc80`
    bench pins this.

    Parameters
    ----------
    malicious_fraction:
        Share of malicious examples in the corpus.
    benign_alpha / benign_beta:
        Beta parameters of benign intensity (skewed toward 0).
    malicious_alpha / malicious_beta:
        Beta parameters of malicious intensity (skewed toward 1).
    noise_sd:
        Gaussian feature noise, in feature units; the main overlap knob.
    """

    malicious_fraction: float = 0.5
    benign_alpha: float = 2.0
    benign_beta: float = 6.0
    malicious_alpha: float = 6.0
    malicious_beta: float = 2.0
    noise_sd: float = 3.4

    def __post_init__(self) -> None:
        if not 0.0 < self.malicious_fraction < 1.0:
            raise ValueError(
                "malicious_fraction must be in (0, 1), got "
                f"{self.malicious_fraction}"
            )
        for name in (
            "benign_alpha",
            "benign_beta",
            "malicious_alpha",
            "malicious_beta",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0")
        if self.noise_sd < 0:
            raise ValueError(f"noise_sd must be >= 0, got {self.noise_sd}")


#: Per-feature sensitivity to the latent intensity.  Fixed (not random)
#: so corpora with different seeds describe the same "world".
_FEATURE_WEIGHTS: dict[str, float] = {
    "blacklist_score": 1.00,
    "spam_volume": 0.90,
    "scan_activity": 0.85,
    "malware_hosting": 0.80,
    "botnet_affinity": 0.95,
    "geo_risk": 0.55,
    "asn_reputation": 0.65,
    "conn_rate": 0.60,
    "failed_auth_rate": 0.75,
    "payload_entropy": 0.45,
}


def synthesize_features(
    intensity: float,
    rng: random.Random,
    noise_sd: float = 3.4,
    schema: FeatureSchema | None = None,
) -> dict[str, float]:
    """Feature vector for a client of the given latent ``intensity``.

    Shared by the corpus generator and the live traffic generator, so
    the model is evaluated on the same feature process it was trained
    on — the property that makes the synthetic substitution sound.
    """
    if not 0.0 <= intensity <= 1.0:
        raise ValueError(f"intensity must be in [0, 1], got {intensity}")
    if noise_sd < 0:
        raise ValueError(f"noise_sd must be >= 0, got {noise_sd}")
    schema = schema or DEFAULT_SCHEMA
    features: dict[str, float] = {}
    for spec in schema.specs:
        weight = _FEATURE_WEIGHTS.get(spec.name, 0.7)
        mean = spec.low + weight * intensity * spec.span
        value = rng.gauss(mean, noise_sd)
        features[spec.name] = min(max(value, spec.low), spec.high)
    return features


def feature_weights(schema: FeatureSchema | None = None) -> np.ndarray:
    """Per-feature intensity weights in ``schema`` column order.

    The vectorised counterpart of the lookup inside
    :func:`synthesize_features`; unknown features use the same 0.7
    default, so matrix synthesis describes the same world.
    """
    schema = schema or DEFAULT_SCHEMA
    return np.array(
        [_FEATURE_WEIGHTS.get(name, 0.7) for name in schema.names],
        dtype=np.float64,
    )


def synthesize_feature_matrix(
    intensities: np.ndarray,
    rng: np.random.Generator,
    noise_sd: float = 3.4,
    schema: FeatureSchema | None = None,
) -> np.ndarray:
    """Feature rows for many clients in one vectorised pass.

    The matrix sibling of :func:`synthesize_features`: row ``i`` is
    drawn from the same per-feature Gaussian (mean
    ``low + weight * intensity * span``, clipped to the valid range)
    as the scalar path, but the whole ``(n, k)`` block is produced by
    numpy — what lets the large-scale simulator mint a million agents
    in well under a second.  Draws come from the *numpy* generator, so
    matrices are deterministic per seed but not bit-identical to the
    ``random.Random`` scalar stream.
    """
    intensities = np.asarray(intensities, dtype=np.float64)
    if intensities.ndim != 1:
        raise ValueError("intensities must be a 1-d array")
    if intensities.size and (
        intensities.min() < 0.0 or intensities.max() > 1.0
    ):
        raise ValueError("intensities must lie in [0, 1]")
    if noise_sd < 0:
        raise ValueError(f"noise_sd must be >= 0, got {noise_sd}")
    schema = schema or DEFAULT_SCHEMA
    lows = np.array([s.low for s in schema.specs])
    spans = np.array([s.span for s in schema.specs])
    highs = np.array([s.high for s in schema.specs])
    weights = feature_weights(schema)
    means = lows + np.outer(intensities, weights * spans)
    matrix = rng.normal(means, noise_sd)
    np.clip(matrix, lows, highs, out=matrix)
    return matrix


def _random_ip(rng: random.Random, malicious: bool) -> str:
    """A plausible IPv4 literal; populations use disjoint leading octets.

    Disjoint prefixes are a convenience for readable traces and for the
    traffic generator's per-subnet bookkeeping — the models never look
    at the address itself.
    """
    first = rng.randint(100, 126) if malicious else rng.randint(11, 99)
    return (
        f"{first}.{rng.randint(0, 255)}."
        f"{rng.randint(0, 255)}.{rng.randint(1, 254)}"
    )


class ThreatIntelCorpus:
    """A generated corpus with train/test split helpers."""

    def __init__(
        self,
        examples: Sequence[LabeledExample],
        schema: FeatureSchema,
        params: CorpusParams,
        seed: int,
    ) -> None:
        self._examples = tuple(examples)
        self.schema = schema
        self.params = params
        self.seed = seed

    def __len__(self) -> int:
        return len(self._examples)

    def __iter__(self) -> Iterator[LabeledExample]:
        return iter(self._examples)

    def __getitem__(self, index: int) -> LabeledExample:
        return self._examples[index]

    @property
    def examples(self) -> tuple[LabeledExample, ...]:
        return self._examples

    @property
    def malicious(self) -> tuple[LabeledExample, ...]:
        """Only the malicious examples (DAbR trains on these)."""
        return tuple(e for e in self._examples if e.malicious)

    @property
    def benign(self) -> tuple[LabeledExample, ...]:
        return tuple(e for e in self._examples if not e.malicious)

    def split(self, train_fraction: float = 2 / 3) -> tuple[
        "ThreatIntelCorpus", "ThreatIntelCorpus"
    ]:
        """Deterministic train/test split preserving generation order."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(
                f"train_fraction must be in (0, 1), got {train_fraction}"
            )
        cut = int(round(len(self._examples) * train_fraction))
        cut = min(max(cut, 1), len(self._examples) - 1)
        make = lambda rows: ThreatIntelCorpus(  # noqa: E731 - local helper
            rows, self.schema, self.params, self.seed
        )
        return make(self._examples[:cut]), make(self._examples[cut:])

    def feature_matrix(self) -> np.ndarray:
        """All examples vectorised per the schema, one row each."""
        return self.schema.vectorize_many(e.features for e in self._examples)

    def labels(self) -> np.ndarray:
        """Binary labels as an int array (1 = malicious)."""
        return np.array([int(e.malicious) for e in self._examples])

    def true_scores(self) -> np.ndarray:
        """Ground-truth scores as a float array."""
        return np.array([e.true_score for e in self._examples])


def generate_corpus(
    size: int,
    seed: int = 7,
    params: CorpusParams | None = None,
    schema: FeatureSchema | None = None,
) -> ThreatIntelCorpus:
    """Generate ``size`` labelled examples, deterministically from ``seed``."""
    if size <= 0:
        raise ValueError(f"size must be > 0, got {size}")
    params = params or CorpusParams()
    schema = schema or DEFAULT_SCHEMA
    rng = random.Random(seed)

    examples: list[LabeledExample] = []
    for _ in range(size):
        malicious = rng.random() < params.malicious_fraction
        if malicious:
            intensity = rng.betavariate(
                params.malicious_alpha, params.malicious_beta
            )
        else:
            intensity = rng.betavariate(params.benign_alpha, params.benign_beta)

        features = synthesize_features(
            intensity, rng, noise_sd=params.noise_sd, schema=schema
        )
        examples.append(
            LabeledExample(
                ip=_random_ip(rng, malicious),
                features=features,
                malicious=malicious,
                true_score=10.0 * intensity,
            )
        )
    return ThreatIntelCorpus(examples, schema, params, seed)
