"""The IP-traffic feature schema consumed by reputation models.

DAbR (Renjan et al., ISI 2018) scores an IP from threat-intelligence
*attributes* of the address — not packet payloads.  The original system
drew those attributes from a commercial feed; this reproduction defines a
synthetic but structurally faithful schema (see DESIGN.md §2): ten
numeric attributes capturing the signals the DAbR paper describes
(blacklist presence, spam volume, scanning behaviour, hosting reputation,
traffic shape).

A :class:`FeatureSchema` validates and vectorises feature mappings; the
canonical schema instance is :data:`DEFAULT_SCHEMA`.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Mapping

import numpy as np

from repro.core.errors import FeatureSchemaError

__all__ = ["FeatureSpec", "FeatureSchema", "DEFAULT_SCHEMA", "FEATURE_NAMES"]


@dataclasses.dataclass(frozen=True, slots=True)
class FeatureSpec:
    """One named numeric feature with an inclusive valid range."""

    name: str
    low: float
    high: float
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("feature name must be non-empty")
        if not self.low < self.high:
            raise ValueError(
                f"feature {self.name!r}: low {self.low} must be < high {self.high}"
            )

    def validate(self, value: float) -> float:
        """Return ``value`` as float; raise if outside the valid range."""
        value = float(value)
        if not np.isfinite(value):
            raise FeatureSchemaError(
                f"feature {self.name!r} must be finite, got {value!r}"
            )
        if not self.low <= value <= self.high:
            raise FeatureSchemaError(
                f"feature {self.name!r} value {value} outside "
                f"[{self.low}, {self.high}]"
            )
        return value

    @property
    def span(self) -> float:
        """Width of the valid range, used for normalisation."""
        return self.high - self.low


class FeatureSchema:
    """An ordered collection of :class:`FeatureSpec`.

    The ordering fixes the layout of vectorised features, so models can
    persist centroids/weights as plain arrays.
    """

    def __init__(self, specs: Iterable[FeatureSpec]) -> None:
        specs = tuple(specs)
        if not specs:
            raise ValueError("schema needs at least one feature")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate feature names in schema: {names}")
        self._specs = specs
        self._index = {spec.name: i for i, spec in enumerate(specs)}
        self._lows = np.array([s.low for s in specs], dtype=np.float64)
        self._highs = np.array([s.high for s in specs], dtype=np.float64)
        self._spans = np.array([s.span for s in specs], dtype=np.float64)

    @property
    def names(self) -> tuple[str, ...]:
        """Feature names in vector order."""
        return tuple(spec.name for spec in self._specs)

    @property
    def specs(self) -> tuple[FeatureSpec, ...]:
        return self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def spec(self, name: str) -> FeatureSpec:
        """The spec registered under ``name``."""
        try:
            return self._specs[self._index[name]]
        except KeyError:
            raise FeatureSchemaError(f"unknown feature {name!r}") from None

    def vectorize(self, features: Mapping[str, float]) -> np.ndarray:
        """Validate ``features`` and return them as a float array.

        Every schema feature must be present; unknown keys are rejected
        (silently dropping data is how scoring bugs hide).
        """
        unknown = set(features) - set(self._index)
        if unknown:
            raise FeatureSchemaError(f"unknown features: {sorted(unknown)}")
        missing = set(self._index) - set(features)
        if missing:
            raise FeatureSchemaError(f"missing features: {sorted(missing)}")
        out = np.empty(len(self._specs), dtype=np.float64)
        for i, spec in enumerate(self._specs):
            out[i] = spec.validate(features[spec.name])
        return out

    def vectorize_many(
        self, rows: Iterable[Mapping[str, float]]
    ) -> np.ndarray:
        """Vectorise an iterable of feature mappings into a 2-D array."""
        vectors = [self.vectorize(row) for row in rows]
        if not vectors:
            return np.empty((0, len(self._specs)), dtype=np.float64)
        return np.stack(vectors)

    def vectorize_batch(self, rows) -> np.ndarray:
        """Vectorise many feature mappings in one pass.

        Semantically identical to :meth:`vectorize_many` — same result,
        same :class:`FeatureSchemaError` conditions — but validation is
        amortised over the whole batch instead of paid per element,
        which is what makes the framework's batch admission path cheap.
        Any row that fails the fast checks is re-validated through
        :meth:`vectorize` so error messages stay exact.
        """
        rows = list(rows)
        if not rows:
            return np.empty((0, len(self._specs)), dtype=np.float64)
        names = self.names
        width = len(names)
        try:
            out = np.array(
                [[row[name] for name in names] for row in rows],
                dtype=np.float64,
            )
        except (KeyError, TypeError, ValueError):
            return self.vectorize_many(rows)  # raises the precise error
        if (
            any(len(row) != width for row in rows)
            or not np.isfinite(out).all()
            or ((out < self._lows) | (out > self._highs)).any()
        ):
            return self.vectorize_many(rows)  # raises the precise error
        return out

    def normalize(self, matrix: np.ndarray) -> np.ndarray:
        """Scale columns into [0, 1] using each spec's declared range.

        Range-based (not data-based) normalisation keeps scoring stable
        under distribution shift — the ranges are part of the contract.
        """
        matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
        if matrix.shape[1] != len(self._specs):
            raise FeatureSchemaError(
                f"expected {len(self._specs)} columns, got {matrix.shape[1]}"
            )
        return (matrix - self._lows) / self._spans

    def to_mapping(self, vector: np.ndarray) -> dict[str, float]:
        """Inverse of :meth:`vectorize` for one row."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (len(self._specs),):
            raise FeatureSchemaError(
                f"expected shape ({len(self._specs)},), got {vector.shape}"
            )
        return {spec.name: float(v) for spec, v in zip(self._specs, vector)}


#: Canonical feature set for the synthetic threat-intelligence corpus.
#: Names follow the attribute categories described in the DAbR paper.
DEFAULT_SCHEMA = FeatureSchema(
    [
        FeatureSpec("blacklist_score", 0.0, 10.0, "aggregated DNSBL presence"),
        FeatureSpec("spam_volume", 0.0, 10.0, "observed spam emission rate"),
        FeatureSpec("scan_activity", 0.0, 10.0, "port/address scanning rate"),
        FeatureSpec("malware_hosting", 0.0, 10.0, "malware distribution score"),
        FeatureSpec("botnet_affinity", 0.0, 10.0, "C2/botnet association"),
        FeatureSpec("geo_risk", 0.0, 10.0, "geolocation risk index"),
        FeatureSpec("asn_reputation", 0.0, 10.0, "origin-AS badness index"),
        FeatureSpec("conn_rate", 0.0, 10.0, "normalised connection rate"),
        FeatureSpec("failed_auth_rate", 0.0, 10.0, "failed-login intensity"),
        FeatureSpec("payload_entropy", 0.0, 10.0, "request payload entropy"),
    ]
)

#: Convenience tuple of the canonical feature names.
FEATURE_NAMES = DEFAULT_SCHEMA.names
