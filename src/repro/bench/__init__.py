"""Benchmark harness: regenerates every table and figure in the paper."""

from repro.bench.ablations import (
    run_attacker_economics,
    run_base_offset_ablation,
    run_epsilon_ablation,
    run_granularity_ablation,
)
from repro.bench.onset import OnsetConfig, run_onset
from repro.bench.accuracy import AccuracyConfig, run_accuracy
from repro.bench.calibration import (
    CalibrationConfig,
    fit_timing_config,
    measure_hash_rate,
    run_calibration,
)
from repro.bench.figure2 import (
    Figure2Config,
    Figure2Result,
    check_shape,
    run_figure2,
)
from repro.bench.results import ExperimentResult
from repro.bench.runner import EXPERIMENTS, run_all, run_experiment
from repro.bench.throttling import ThrottlingConfig, run_throttling

__all__ = [
    "ExperimentResult",
    "Figure2Config",
    "Figure2Result",
    "run_figure2",
    "check_shape",
    "CalibrationConfig",
    "run_calibration",
    "measure_hash_rate",
    "fit_timing_config",
    "AccuracyConfig",
    "run_accuracy",
    "ThrottlingConfig",
    "run_throttling",
    "run_base_offset_ablation",
    "run_epsilon_ablation",
    "run_attacker_economics",
    "run_granularity_ablation",
    "OnsetConfig",
    "run_onset",
    "EXPERIMENTS",
    "run_experiment",
    "run_all",
]
