"""Experiment `thr-netshard`: the networked state store under admission load.

`thr-shard` proved that sharding workers is invisible to decisions.
This experiment proves the same for sharding *state across the
network*, plus the two operational properties the networked store
exists for, in three phases:

* **parity** — the same stateful challenge/redeem campaign (feedback
  penalties and rewards included) through a framework backed by the
  one-box :class:`~repro.state.sharded.ShardedStateStore` and by a
  :class:`~repro.state.net.MultiNodeStateStore` over N live
  :class:`~repro.state.net.StateServer` processes-worth of TCP.  The
  decision streams must be bit-identical — the network must buy
  durability without buying drift.
* **restart** — a snapshot-backed server is stopped and rebound on the
  same port *while a client keeps writing*; the client's idempotent
  retries bridge the outage and every entry must survive (the restart
  path behind ``repro state serve --snapshot``).
* **reshard** — a live N -> N+1 topology change over a populated
  cluster; only the ring-delta keyspace may move, nothing may be lost
  and every key must sit exactly on its new ring owner (the path
  behind ``repro state topology --add``).

The throughput columns are loopback-TCP numbers — they report what one
store round trip costs relative to in-process dict access, not an
end-to-end serving claim (that is `thr-shard`'s job).
"""

from __future__ import annotations

import dataclasses
import threading
import time

from repro.bench.results import ExperimentResult
from repro.core.records import ClientRequest
from repro.core.spec import FrameworkSpec
from repro.pow.puzzle import Solution
from repro.pow.solver import HashSolver
from repro.reputation.dataset import generate_corpus
from repro.state import (
    MultiNodeStateStore,
    RemoteStateStore,
    ShardedStateStore,
    StateServer,
)

__all__ = [
    "NetstoreConfig",
    "run_netstore_throughput",
    "run_parity_campaign",
    "run_restart_drill",
    "run_reshard_drill",
]


@dataclasses.dataclass(frozen=True, slots=True)
class NetstoreConfig:
    """Parameters of the networked-state acceptance run."""

    nodes: int = 3
    clients: int = 6
    rounds: int = 4
    restart_entries: int = 300
    reshard_entries: int = 600
    policy: str = "policy-1"
    corpus_size: int = 1200
    corpus_seed: int = 7

    def __post_init__(self) -> None:
        if self.nodes < 2:
            raise ValueError(f"nodes must be >= 2, got {self.nodes}")
        if self.clients < 1 or self.rounds < 1:
            raise ValueError("clients and rounds must be >= 1")
        if self.restart_entries < 2 or self.reshard_entries < 1:
            raise ValueError("entry counts too small to measure anything")

    def spec(self) -> FrameworkSpec:
        # Frozen offsets: parity must not depend on wall-clock decay.
        return FrameworkSpec(
            policy=self.policy,
            corpus_size=self.corpus_size,
            feedback_half_life=float("inf"),
        )


def _campaign_trace(config: NetstoreConfig):
    """(ip, features, honest) exchanges that actually move feedback."""
    _, test = generate_corpus(
        size=config.corpus_size, seed=config.corpus_seed
    ).split()
    ranked = sorted(test, key=lambda example: example.true_score)
    examples = ranked[:: max(1, len(ranked) // 8)][: config.clients]
    trace = []
    for round_index in range(config.rounds):
        for client, example in enumerate(examples):
            ip = f"10.77.0.{client + 1}"
            honest = (client + round_index) % 3 != 0
            trace.append((ip, example.features, honest))
    return trace


def _hostile_solution(challenge) -> Solution:
    """Deterministically rejected: names the wrong puzzle seed."""
    wrong_seed = "00" * (len(challenge.puzzle.seed) // 2)
    if wrong_seed == challenge.puzzle.seed:  # pragma: no cover
        wrong_seed = "ff" * (len(challenge.puzzle.seed) // 2)
    return Solution(
        puzzle_seed=wrong_seed, nonce=0, attempts=1, elapsed=0.0
    )


def _drive(framework, trace):
    """Replay the campaign; return ((score, difficulty) list, elapsed)."""
    solver = HashSolver()
    decisions = []
    started = time.perf_counter()
    for index, (ip, features, honest) in enumerate(trace):
        request = ClientRequest(
            client_ip=ip,
            resource="/index.html",
            timestamp=1_000.0 + index,
            features=features,
        )
        challenge = framework.challenge(request, now=request.timestamp)
        decision = challenge.decision
        decisions.append((decision.reputation_score, decision.difficulty))
        if honest and challenge.puzzle.difficulty <= 12:
            solution = solver.solve(challenge.puzzle, ip)
        else:
            solution = _hostile_solution(challenge)
        framework.redeem(challenge, solution, now=request.timestamp + 0.5)
    return decisions, time.perf_counter() - started


def run_parity_campaign(config: NetstoreConfig) -> dict:
    """Phase 1: networked state must be invisible to decisions."""
    trace = _campaign_trace(config)
    spec = config.spec()

    local = spec.build(store=ShardedStateStore(config.nodes))
    local_decisions, local_elapsed = _drive(local, trace)

    servers = [StateServer().start() for _ in range(config.nodes)]
    store = MultiNodeStateStore([srv.address for srv in servers])
    try:
        remote = spec.build(store=store)
        remote_decisions, remote_elapsed = _drive(remote, trace)
    finally:
        store.close()
        for server in servers:
            server.stop()

    return {
        "requests": len(trace),
        "identical": remote_decisions == local_decisions,
        "local_elapsed": local_elapsed,
        "remote_elapsed": remote_elapsed,
        "local_rps": len(trace) / local_elapsed,
        "remote_rps": len(trace) / remote_elapsed,
    }


def run_restart_drill(config: NetstoreConfig, tmp_dir) -> dict:
    """Phase 2: a snapshot-backed restart mid-load loses nothing."""
    import pathlib

    snapshot_path = pathlib.Path(tmp_dir) / "netstore-restart.json"
    server = StateServer(snapshot_path=snapshot_path).start()
    address = server.address  # rebind the same port after the restart
    client = RemoteStateStore(
        address, retries=6, retry_base=0.02, retry_cap=0.2
    )
    table = client.namespace("feedback")
    holder = {"server": server}
    restart_at = config.restart_entries // 2
    downtime = {"seconds": 0.0}

    def restart() -> None:
        stopped = time.perf_counter()
        holder["server"].stop()
        holder["server"] = StateServer(
            address=address, snapshot_path=snapshot_path
        ).start()
        downtime["seconds"] = time.perf_counter() - stopped

    started = time.perf_counter()
    restarter = None
    try:
        for i in range(config.restart_entries):
            if i == restart_at:
                # Concurrent restart: the in-flight puts see the dead
                # socket and must bridge it with idempotent retries.
                restarter = threading.Thread(target=restart)
                restarter.start()
            table[f"10.88.0.{i}"] = [float(i), 0.0]
        if restarter is not None:
            restarter.join()
        elapsed = time.perf_counter() - started
        survived = sum(
            1
            for i in range(config.restart_entries)
            if table.get(f"10.88.0.{i}") == [float(i), 0.0]
        )
    finally:
        client.close()
        holder["server"].stop()
    return {
        "entries": config.restart_entries,
        "survived": survived,
        "lost": config.restart_entries - survived,
        "downtime": downtime["seconds"],
        "elapsed": elapsed,
        "rps": config.restart_entries / elapsed,
    }


def run_reshard_drill(config: NetstoreConfig) -> dict:
    """Phase 3: growing N -> N+1 moves only the ring-delta keyspace."""
    servers = [StateServer().start() for _ in range(config.nodes)]
    extra = StateServer().start()
    store = MultiNodeStateStore([srv.address for srv in servers])
    keys = [f"10.99.{i // 250}.{i % 250}" for i in range(config.reshard_entries)]
    try:
        table = store.namespace("feedback")
        for i, key in enumerate(keys):
            table[key] = [float(i), 0.0]
        before = {key: store.ring.shard_for(key) for key in keys}

        started = time.perf_counter()
        report = store.apply_topology(
            list(store.addresses) + [extra.address]
        )
        elapsed = time.perf_counter() - started

        after = {key: store.ring.shard_for(key) for key in keys}
        ring_delta = sum(
            1 for key in keys if before[key] != after[key]
        )
        stores = [srv.store for srv in servers] + [extra.store]
        lost = misrouted = 0
        for i, key in enumerate(keys):
            if table.get(key) != [float(i), 0.0]:
                lost += 1
            for index, backend in enumerate(stores):
                present = backend.get("feedback", key) is not None
                if present != (index == after[key]):
                    misrouted += 1
    finally:
        store.close()
        for server in servers + [extra]:
            server.stop()
    return {
        "entries": config.reshard_entries,
        "moved": report.moved_entries,
        "ring_delta": ring_delta,
        "moved_fraction": report.moved_entries / config.reshard_entries,
        "moved_bytes": report.moved_bytes,
        "lost": lost,
        "misrouted": misrouted,
        "epoch": report.epoch,
        "elapsed": elapsed,
    }


def run_netstore_throughput(
    config: NetstoreConfig | None = None,
) -> ExperimentResult:
    """All three phases, folded into one result table."""
    import tempfile

    config = config or NetstoreConfig()
    parity = run_parity_campaign(config)
    with tempfile.TemporaryDirectory() as tmp_dir:
        restart = run_restart_drill(config, tmp_dir)
    reshard = run_reshard_drill(config)

    ideal = 1.0 / (config.nodes + 1)
    return ExperimentResult(
        experiment_id="thr-netshard",
        title=(
            "Networked admission state - parity, restart survival, "
            f"live reshard over {config.nodes} nodes"
        ),
        headers=["phase", "ops", "elapsed_s", "ops_per_s", "verdict"],
        rows=[
            [
                "parity",
                parity["requests"],
                round(parity["remote_elapsed"], 4),
                round(parity["remote_rps"], 1),
                "identical" if parity["identical"] else "DIVERGED",
            ],
            [
                "restart",
                restart["entries"],
                round(restart["elapsed"], 4),
                round(restart["rps"], 1),
                f"{restart['lost']} lost",
            ],
            [
                "reshard",
                reshard["entries"],
                round(reshard["elapsed"], 4),
                round(reshard["entries"] / reshard["elapsed"], 1),
                f"moved {reshard['moved_fraction']:.2f} "
                f"(ideal {ideal:.2f}), {reshard['lost']} lost, "
                f"{reshard['misrouted']} misrouted",
            ],
        ],
        notes=[
            f"parity campaign: {config.clients} clients x "
            f"{config.rounds} rounds, honest and hostile exchanges, "
            f"in-process sharded {parity['local_rps']:.0f} rps vs "
            f"networked {parity['remote_rps']:.0f} rps over loopback TCP",
            f"restart drill: server stopped and rebound mid-load "
            f"({restart['downtime'] * 1000:.0f} ms down), idempotent "
            "retries bridged the outage",
            f"reshard drill: epoch {reshard['epoch']}, "
            f"{reshard['moved_bytes']} snapshot bytes shipped; only "
            "keys whose ring owner changed moved",
        ],
        extra={
            "parity_identical": float(parity["identical"]),
            "parity_requests": float(parity["requests"]),
            "remote_rps": parity["remote_rps"],
            "local_rps": parity["local_rps"],
            "restart_lost": float(restart["lost"]),
            "restart_downtime_s": restart["downtime"],
            "reshard_moved_fraction": reshard["moved_fraction"],
            "reshard_ring_delta_fraction": (
                reshard["ring_delta"] / reshard["entries"]
            ),
            "reshard_lost": float(reshard["lost"]),
            "reshard_misrouted": float(reshard["misrouted"]),
            "ideal_moved_fraction": ideal,
        },
    )
