"""Experiment `megasim`: vectorized vs callback simulation throughput.

The tentpole gate of the million-agent simulation core: the *identical*
100k-agent workload (steady benign Poisson traffic plus a pulsing
botnet) is driven through the callback
:class:`~repro.net.sim.simulation.Simulation` and through the
vectorized :class:`~repro.net.sim.fastsim.FastSimulation`, and the
experiment reports each engine's request and event throughput plus the
speedup.

Both engines make the *same admission decisions* — the DAbR scores and
policy difficulties are pure functions of the per-agent features, so
the experiment asserts the decision aggregates (request counts, served
counts, mean/extreme difficulty) match exactly.  Timing randomness
(solve-attempt draws) comes from different RNG streams, so latency
distributions agree statistically rather than bit for bit — the
decision-stream bit-parity claim is gated separately, per golden-trace
scenario, by ``tests/replay/test_fastsim_parity.py``.

``benchmarks/test_bench_megasim.py`` enforces the ≥25x floor in the
tier-1 suite; locally the ratio lands well above it.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.bench.results import ExperimentResult
from repro.core.framework import AIPoWFramework
from repro.net.sim import patterns
from repro.net.sim.agents import AgentPopulation
from repro.net.sim.fastsim import FastSimulation
from repro.net.sim.simulation import Simulation
from repro.policies.linear import policy_2
from repro.reputation.dabr import DAbRModel
from repro.reputation.dataset import generate_corpus
from repro.traffic.profiles import BENIGN_PROFILE, MALICIOUS_PROFILE

__all__ = ["MegasimConfig", "run_megasim_throughput", "build_workload"]


@dataclasses.dataclass(frozen=True, slots=True)
class MegasimConfig:
    """Parameters of the megasim throughput experiment.

    The default is the acceptance-gate shape: 100k agents, one second
    of simulated traffic, ~100k requests.  ``benign_rate`` and the
    botnet pulse keep arrival instants scattered, so the callback
    engine sees realistic batch sizes (mostly 1) while the calendar
    queue quantizes the same instants into thousand-agent cohorts —
    the structural difference being measured.
    """

    agents: int = 100_000
    benign_fraction: float = 0.8
    benign_rate: float = 0.5
    bot_rate: float = 3.0
    duration: float = 1.0
    tick: float = 0.01
    max_difficulty: int = 16
    seed: int = 0xF457
    corpus_size: int = 4000
    corpus_seed: int = 7

    def __post_init__(self) -> None:
        if self.agents < 2:
            raise ValueError(f"agents must be >= 2, got {self.agents}")
        if not 0.0 < self.benign_fraction < 1.0:
            raise ValueError(
                f"benign_fraction must be in (0, 1), got {self.benign_fraction}"
            )
        if self.duration <= 0 or self.tick <= 0:
            raise ValueError("duration and tick must be > 0")

    @property
    def benign_agents(self) -> int:
        return int(self.agents * self.benign_fraction)

    @property
    def bot_agents(self) -> int:
        return self.agents - self.benign_agents


def build_workload(config: MegasimConfig):
    """Population + fire schedule + deciders shared by both engines."""
    from repro.attacks import BotnetAttacker

    population = AgentPopulation.make(
        [
            (BENIGN_PROFILE, config.benign_agents),
            (MALICIOUS_PROFILE, config.bot_agents),
        ],
        seed=config.seed,
    )
    rng = np.random.default_rng(config.seed ^ 0x9E37)
    benign = np.arange(config.benign_agents, dtype=np.int64)
    bots = np.arange(config.benign_agents, config.agents, dtype=np.int64)
    fire_times, fire_agents = patterns.merge_schedules(
        patterns.poisson_fires(
            benign, config.benign_rate, config.duration, rng
        ),
        patterns.pulse_fires(
            bots,
            config.bot_rate,
            config.duration,
            rng,
            on_seconds=0.4,
            off_seconds=0.4,
        ),
    )
    deciders = {
        MALICIOUS_PROFILE.name: BotnetAttacker(
            max_difficulty=config.max_difficulty
        )
    }
    return population, fire_times, fire_agents, deciders


def _framework(config: MegasimConfig) -> AIPoWFramework:
    train, _ = generate_corpus(
        size=config.corpus_size, seed=config.corpus_seed
    ).split()
    return AIPoWFramework(DAbRModel().fit(train), policy_2())


def _decision_fingerprint(report) -> dict:
    """Engine-independent decision aggregates."""
    overall = report.metrics.overall
    return {
        "requests": overall.total,
        "difficulty_mean": overall.difficulties.mean,
        "difficulty_min": overall.difficulties.min,
        "difficulty_max": overall.difficulties.max,
        "score_mean": overall.scores.mean,
    }


def _fingerprints_agree(left: dict, right: dict) -> bool:
    """Counts and extremes exactly; means within accumulation noise.

    The engines fold identical decision values through different
    accumulation orders (sequential Welford vs numpy block merges), so
    means agree to ~1e-12, not bit for bit.
    """
    import math

    return (
        left["requests"] == right["requests"]
        and left["difficulty_min"] == right["difficulty_min"]
        and left["difficulty_max"] == right["difficulty_max"]
        and math.isclose(
            left["difficulty_mean"], right["difficulty_mean"], rel_tol=1e-9
        )
        and math.isclose(
            left["score_mean"], right["score_mean"], rel_tol=1e-9
        )
    )


def run_megasim_throughput(
    config: MegasimConfig | None = None,
) -> ExperimentResult:
    """Measure callback vs vectorized engine throughput; tabulate both."""
    config = config or MegasimConfig()
    population, fire_times, fire_agents, deciders = build_workload(config)
    patiences = {p.name: p.patience for p in population.profiles}
    hash_rates = {p.name: p.hash_rate for p in population.profiles}

    fast = FastSimulation(
        _framework(config),
        seed=config.seed,
        solve_deciders=deciders,
        hash_rates=hash_rates,
        patiences=patiences,
        tick=config.tick,
    )
    started = time.perf_counter()
    fast_report = fast.run_fires(population, fire_times, fire_agents)
    fast_wall = time.perf_counter() - started

    trace = population.to_trace(fire_times, fire_agents)
    callback = Simulation(
        _framework(config),
        seed=config.seed,
        solve_deciders={
            name: decider.should_solve for name, decider in deciders.items()
        },
        hash_rates=hash_rates,
        patiences=patiences,
    )
    started = time.perf_counter()
    callback_report = callback.run(trace)
    callback_wall = time.perf_counter() - started

    fingerprints = (
        _decision_fingerprint(callback_report),
        _decision_fingerprint(fast_report),
    )
    if not _fingerprints_agree(*fingerprints):
        raise AssertionError(
            "engines disagree on admission decisions: "
            f"{fingerprints[0]} vs {fingerprints[1]}"
        )

    requests = fast_report.requests
    speedup = callback_wall / fast_wall if fast_wall > 0 else float("inf")
    rows = [
        [
            "callback",
            requests,
            callback_wall,
            requests / callback_wall,
            callback_report.events_processed / callback_wall,
        ],
        [
            "fastsim",
            requests,
            fast_wall,
            requests / fast_wall,
            fast_report.events_processed / fast_wall,
        ],
    ]
    return ExperimentResult(
        experiment_id="megasim",
        title=(
            "Vectorized simulation core - callback engine vs "
            "SoA/calendar-queue fastsim"
        ),
        headers=["engine", "requests", "wall_s", "requests_per_s", "events_per_s"],
        rows=rows,
        notes=[
            f"{config.agents:,} agents ({config.benign_agents:,} benign "
            f"poisson + {config.bot_agents:,} pulsing bots), identical "
            "workload on both engines",
            "admission decisions agree exactly "
            f"(mean difficulty {fingerprints[0]['difficulty_mean']:.3f}); "
            "latency draws come from different RNG streams",
            f"fastsim speedup: {speedup:.1f}x "
            f"(cohorts up to {fast.largest_arrival_batch:,} requests, "
            f"tick {config.tick:g}s)",
        ],
        extra={
            "speedup": speedup,
            "fast_wall": fast_wall,
            "callback_wall": callback_wall,
            "fast_events_per_s": fast_report.events_processed / fast_wall,
            "decision_fingerprint": fingerprints[0],
        },
    )
