"""Experiment `parsim`: process-parallel vs single-process fastsim.

The tentpole gate of the multi-core lever: one large agent workload
(the megasim shape, scaled up) is driven once through a single-process
:class:`~repro.net.sim.fastsim.FastSimulation` and once through the
hash-sharded :class:`~repro.net.sim.parsim.ParallelSimulation`, and the
experiment reports each driver's throughput plus the speedup.

Correctness rides along: each shard runs its own FIFO server, so the
*timing* side (latencies, status mix) legitimately differs from the
one-server single-process run — but under the deterministic default
policy the admission decisions are timing-independent, so the
decision-aggregate fingerprint (request count, difficulty mean and
extremes, score mean) must match the single-process run exactly in
counts/extremes and to accumulation noise in means.  The experiment
asserts exactly that, reusing the megasim fingerprint helpers.  The
stronger per-shard bitwise claim is gated by
``benchmarks/test_bench_parsim.py``.

``benchmarks/test_bench_parsim.py`` also enforces the ≥2.5x floor at
four workers on hosts with at least four cores.
"""

from __future__ import annotations

import dataclasses
import time

from repro.bench.megasim import (
    MegasimConfig,
    _decision_fingerprint,
    _fingerprints_agree,
    build_workload,
)
from repro.bench.results import ExperimentResult
from repro.core.spec import FrameworkSpec
from repro.net.sim.fastsim import FastSimulation
from repro.net.sim.parsim import ParallelSimulation
from repro.traffic.profiles import MALICIOUS_PROFILE

__all__ = ["ParsimConfig", "run_parsim_throughput"]


@dataclasses.dataclass(frozen=True, slots=True)
class ParsimConfig:
    """Parameters of the parallel-throughput experiment.

    ``workload`` is the shared population/fire-schedule recipe (the
    megasim shape); ``procs`` the worker count; ``epoch`` the simulated
    seconds per lock-step window.
    """

    workload: MegasimConfig = MegasimConfig(
        agents=1_000_000, duration=1.0, tick=0.02, seed=0xBA11
    )
    procs: int = 4
    epoch: float = 0.25

    def __post_init__(self) -> None:
        if self.procs < 1:
            raise ValueError(f"procs must be >= 1, got {self.procs}")
        if self.epoch <= 0:
            raise ValueError(f"epoch must be > 0, got {self.epoch}")

    def spec(self) -> FrameworkSpec:
        """The picklable framework recipe both drivers build from."""
        return FrameworkSpec(
            policy="policy-2",
            corpus_size=self.workload.corpus_size,
            corpus_seed=self.workload.corpus_seed,
            feedback=False,
        )

    def attacker_specs(self) -> dict:
        return {
            MALICIOUS_PROFILE.name: {
                "kind": "botnet",
                "max_difficulty": self.workload.max_difficulty,
            }
        }


def run_parsim_throughput(
    config: ParsimConfig | None = None,
) -> ExperimentResult:
    """Measure single-process vs parallel driver; tabulate both."""
    config = config or ParsimConfig()
    workload = config.workload
    population, fire_times, fire_agents, _ = build_workload(workload)
    patiences = {p.name: p.patience for p in population.profiles}
    hash_rates = {p.name: p.hash_rate for p in population.profiles}
    spec = config.spec()
    attacker_specs = config.attacker_specs()

    from repro.attacks import make_attacker

    single = FastSimulation(
        spec.build(),
        seed=workload.seed,
        solve_deciders={
            name: make_attacker(attacker_spec)
            for name, attacker_spec in attacker_specs.items()
        },
        hash_rates=hash_rates,
        patiences=patiences,
        tick=workload.tick,
    )
    started = time.perf_counter()
    single_report = single.run_fires(population, fire_times, fire_agents)
    single_wall = time.perf_counter() - started

    parallel = ParallelSimulation(
        spec,
        procs=config.procs,
        epoch=config.epoch,
        seed=workload.seed,
        attacker_specs=attacker_specs,
        hash_rates=hash_rates,
        patiences=patiences,
        tick=workload.tick,
    )
    started = time.perf_counter()
    outcome = parallel.run_fires(population, fire_times, fire_agents)
    parallel_wall = time.perf_counter() - started

    fingerprints = (
        _decision_fingerprint(single_report),
        _decision_fingerprint(outcome.report),
    )
    if not _fingerprints_agree(*fingerprints):
        raise AssertionError(
            "drivers disagree on admission decisions: "
            f"{fingerprints[0]} vs {fingerprints[1]}"
        )

    requests = single_report.requests
    speedup = (
        single_wall / parallel_wall if parallel_wall > 0 else float("inf")
    )
    rows = [
        [
            "fastsim x1",
            requests,
            single_wall,
            requests / single_wall,
            single_report.events_processed / single_wall,
        ],
        [
            f"parsim x{config.procs}",
            requests,
            parallel_wall,
            requests / parallel_wall,
            outcome.report.events_processed / parallel_wall,
        ],
    ]
    return ExperimentResult(
        experiment_id="parsim",
        title=(
            "Process-parallel fastsim - hash-sharded shared-memory "
            "workers vs one process"
        ),
        headers=["driver", "requests", "wall_s", "requests_per_s", "events_per_s"],
        rows=rows,
        notes=[
            f"{workload.agents:,} agents, identical workload on both "
            f"drivers; shards of "
            + "/".join(f"{n:,}" for n in outcome.shard_requests)
            + " requests",
            "admission decisions agree with the single-process run "
            f"(mean difficulty {fingerprints[0]['difficulty_mean']:.3f}); "
            "per-shard timing differs (each shard owns a FIFO server, "
            "DESIGN.md §1.8)",
            f"parallel speedup: {speedup:.2f}x at {config.procs} workers, "
            f"epoch {config.epoch:g}s, tick {workload.tick:g}s",
        ],
        extra={
            "speedup": speedup,
            "procs": config.procs,
            "single_wall": single_wall,
            "parallel_wall": parallel_wall,
            "parallel_events_per_s": (
                outcome.report.events_processed / parallel_wall
            ),
            "decision_fingerprint": fingerprints[0],
        },
    )
