"""Experiment `fig2`: reproduce the paper's Figure 2.

Figure 2 plots end-to-end latency (milliseconds) against reputation
score 0..10 for Policies 1, 2 and 3, reporting the **median of 30
trials** per score.  This harness regenerates those three series.

Two measurement modes are provided:

* ``modeled`` (default) — latency from the calibrated timing model:
  fixed network/framework overhead plus geometrically-sampled attempts
  at the calibrated hash rate.  Deterministic given the seed; this is
  what the bench suite runs.
* ``grind`` — real :class:`~repro.pow.solver.HashSolver` wall-clock
  solves (no synthetic overhead beyond the configured constant).  Slower
  but hardware-honest; used by the pytest-benchmark variant.

The paper's qualitative claims, which :func:`check_shape` verifies:

1. latency increases with reputation score under every policy;
2. Policy 1 grows slowly ("does not grow significantly");
3. Policy 2 is markedly more punishing at high scores;
4. Policy 3's growth rate lies between Policies 1 and 2.
"""

from __future__ import annotations

import dataclasses
import random
import time
from typing import Sequence

import numpy as np

from repro.core.config import TimingConfig
from repro.core.interfaces import Policy
from repro.metrics.histogram import SampleSet
from repro.metrics.reporting import ascii_chart, render_series
from repro.bench.results import ExperimentResult
from repro.policies import paper_policies
from repro.pow.generator import PuzzleGenerator
from repro.pow.solver import HashSolver, sample_attempts

__all__ = ["Figure2Config", "Figure2Result", "run_figure2", "check_shape"]


@dataclasses.dataclass(frozen=True, slots=True)
class Figure2Config:
    """Parameters of the Figure 2 reproduction.

    Defaults mirror the paper: integer scores 0..10, 30 trials, median
    statistic, ε = 2 for Policy 3.
    """

    scores: Sequence[int] = tuple(range(11))
    trials: int = 30
    epsilon: float = 2.5
    seed: int = 0xF162
    timing: TimingConfig = dataclasses.field(default_factory=TimingConfig)
    mode: str = "modeled"

    def __post_init__(self) -> None:
        if not self.scores:
            raise ValueError("scores must be non-empty")
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        if self.epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {self.epsilon}")
        if self.mode not in ("modeled", "grind"):
            raise ValueError(f"mode must be 'modeled' or 'grind', got {self.mode}")


@dataclasses.dataclass
class Figure2Result:
    """The three regenerated latency series."""

    config: Figure2Config
    medians_ms: dict[str, list[float]]
    """Median latency (ms) per policy name, indexed like config.scores."""
    samples: dict[tuple[str, int], SampleSet]
    """Raw per-(policy, score) latency samples in seconds."""

    def series_for(self, policy_name: str) -> list[float]:
        return self.medians_ms[policy_name]

    def to_experiment_result(self) -> ExperimentResult:
        rows = [
            [score] + [self.medians_ms[name][i] for name in self.medians_ms]
            for i, score in enumerate(self.config.scores)
        ]
        timing = self.config.timing
        return ExperimentResult(
            experiment_id="fig2",
            title=(
                "Figure 2 - median latency (ms) vs reputation score, "
                f"median of {self.config.trials} trials"
            ),
            headers=["score"] + list(self.medians_ms),
            rows=rows,
            notes=[
                f"mode={self.config.mode}, epsilon={self.config.epsilon}, "
                f"seed={self.config.seed}",
                f"calibration: overhead={timing.network_overhead * 1000:.1f}ms, "
                f"hash={timing.seconds_per_attempt * 1e6:.1f}us/attempt",
                "paper shape: P1 grows slowly, P2 steeply, P3 in between",
            ],
            extra={"medians_ms": self.medians_ms},
        )

    def render_chart(self, width: int = 50) -> str:
        return ascii_chart(
            list(self.config.scores),
            self.medians_ms,
            width=width,
            title="Figure 2 (ASCII): median latency (ms) vs reputation score",
        )

    def render_table(self) -> str:
        return render_series(
            "score",
            list(self.config.scores),
            self.medians_ms,
            title="Figure 2 series (median ms)",
        )


def _one_latency_modeled(
    difficulty: int, timing: TimingConfig, rng: random.Random
) -> float:
    attempts = sample_attempts(difficulty, rng)
    return (
        timing.network_overhead
        + timing.server_processing
        + attempts * timing.seconds_per_attempt
    )


def _one_latency_grind(
    difficulty: int, timing: TimingConfig, generator: PuzzleGenerator,
    solver: HashSolver, trial: int,
) -> float:
    puzzle = generator.issue("198.51.100.7", difficulty, now=float(trial))
    started = time.perf_counter()
    solver.solve(puzzle, "198.51.100.7")
    solve_seconds = time.perf_counter() - started
    return timing.network_overhead + timing.server_processing + solve_seconds


def run_figure2(
    config: Figure2Config | None = None,
    policies: Sequence[Policy] | None = None,
) -> Figure2Result:
    """Regenerate the Figure 2 series.

    ``policies`` defaults to the paper's three; pass others to chart
    custom mappings with the same protocol.

    Each score's trials are drained through the policy's batch path, so
    the shared RNG is consumed difficulties-first per score (not
    interleaved difficulty/latency as earlier versions did) — results
    are deterministic per seed but differ from pre-batching streams.
    """
    config = config or Figure2Config()
    if policies is None:
        policies = paper_policies(epsilon=config.epsilon)
    rng = random.Random(config.seed)
    generator = PuzzleGenerator()
    solver = HashSolver()

    medians: dict[str, list[float]] = {}
    samples: dict[tuple[str, int], SampleSet] = {}
    for policy in policies:
        series: list[float] = []
        batch = getattr(policy, "difficulty_batch", None)
        for score in config.scores:
            # The `trials` same-score requests are one same-timestep
            # batch: drain them through the policy's vectorised path
            # when it has one (custom protocol-only policies loop).
            if batch is not None:
                difficulties = [
                    int(d)
                    for d in batch(
                        np.full(config.trials, float(score)), rng
                    )
                ]
            else:
                difficulties = [
                    policy.difficulty_for(float(score), rng)
                    for _ in range(config.trials)
                ]
            sample_set = SampleSet()
            for trial, difficulty in enumerate(difficulties):
                if config.mode == "modeled":
                    latency = _one_latency_modeled(
                        difficulty, config.timing, rng
                    )
                else:
                    latency = _one_latency_grind(
                        difficulty, config.timing, generator, solver, trial
                    )
                sample_set.add(latency)
            samples[(policy.name, int(score))] = sample_set
            series.append(sample_set.median() * 1000.0)
        medians[policy.name] = series
    return Figure2Result(config=config, medians_ms=medians, samples=samples)


def check_shape(result: Figure2Result) -> list[str]:
    """Verify the paper's qualitative claims; returns violation messages.

    An empty list means the regenerated figure matches the published
    shape.  Monotonicity of the *reported* (median) series is checked on
    a 3-point moving smoothing, since medians of 30 geometric draws
    wobble; the between-ness of Policy 3's growth rate is checked on the
    per-score *means*, the statistic that separates the policies with
    statistical confidence (the error interval's upper tail dominates
    the mean: analytically Policy 3's mean growth is ~2.6x Policy 1's
    for ε = 2.5, against Policy 2's 16x).
    """
    problems: list[str] = []
    names = list(result.medians_ms)
    if len(names) < 3:
        return ["need the three paper policies to check the shape"]
    p1, p2, p3 = (result.medians_ms[n] for n in names[:3])

    def smooth(series: list[float]) -> list[float]:
        out = []
        for i in range(len(series)):
            lo = max(0, i - 1)
            window = series[lo : i + 2]
            out.append(sum(window) / len(window))
        return out

    for name, series in zip(names[:3], (p1, p2, p3)):
        s = smooth(series)
        if not all(b >= a * 0.98 for a, b in zip(s, s[1:])):
            problems.append(f"{name}: smoothed latency is not increasing: {s}")

    if not p2[-1] > 2.0 * p1[-1]:
        problems.append(
            f"policy-2 at score 10 ({p2[-1]:.0f}ms) should dominate "
            f"policy-1 ({p1[-1]:.0f}ms) by > 2x"
        )

    def mean_growth(name: str) -> float:
        scores = list(result.config.scores)
        first = result.samples[(name, int(scores[0]))].mean()
        last = result.samples[(name, int(scores[-1]))].mean()
        return (last - first) * 1000.0

    growth1 = mean_growth(names[0])
    growth2 = mean_growth(names[1])
    growth3 = mean_growth(names[2])
    if not growth1 <= growth3 <= growth2:
        problems.append(
            "policy-3 mean growth should sit between policies 1 and 2: "
            f"{growth1:.0f} <= {growth3:.0f} <= {growth2:.0f} fails"
        )
    return problems
